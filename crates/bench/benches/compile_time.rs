//! Table 2 — compilation time of the analysis pass.
//!
//! The paper reports wall-clock compile times with and without its analysis
//! (Table 2); gcc is the slowest because of its complex control flow. This
//! bench measures our pass over the benchmark analogues and prints the
//! Table 2 analogue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sdiq_compiler::{CompilerPass, PassConfig};
use sdiq_core::Experiment;
use sdiq_workloads::Benchmark;
use std::hint::black_box;

fn compile_time(c: &mut Criterion) {
    // Print the Table 2 analogue once.
    let experiment = Experiment {
        scale: 0.25,
        ..Experiment::paper()
    };
    println!("\n== Table 2 (analogue): compile time without / with the analysis pass ==");
    for (benchmark, baseline, limited) in experiment.compile_times(&Benchmark::ALL) {
        println!(
            "  {:10} baseline {:>10.3?}   with pass {:>10.3?}",
            benchmark.name(),
            baseline,
            limited
        );
    }

    // Criterion measurements of the pass itself on representative programs.
    let mut group = c.benchmark_group("compiler_pass");
    for benchmark in [Benchmark::Gzip, Benchmark::Gcc, Benchmark::Vortex] {
        let program = benchmark.build();
        group.bench_with_input(
            BenchmarkId::new("noop_insertion", benchmark.name()),
            &program,
            |b, program| {
                b.iter(|| black_box(CompilerPass::new(PassConfig::noop_insertion()).run(program)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("improved", benchmark.name()),
            &program,
            |b, program| {
                b.iter(|| black_box(CompilerPass::new(PassConfig::improved()).run(program)))
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = compile_time
}
criterion_main!(benches);
