//! Figure 10 — normalised IPC loss of the Extension and Improved techniques
//! (with the NOOP scheme and `abella` for comparison).

use criterion::{criterion_group, criterion_main, Criterion};
use sdiq_core::{experiments, Experiment, Technique};
use sdiq_workloads::Benchmark;
use std::hint::black_box;

fn figure10(c: &mut Criterion) {
    let experiment = Experiment {
        scale: 0.08,
        ..Experiment::paper()
    };
    let suite = experiment.run_matrix(
        &Benchmark::ALL,
        &[
            Technique::Baseline,
            Technique::Noop,
            Technique::Extension,
            Technique::Improved,
            Technique::Abella,
        ],
    );

    println!("\n== Figure 10 (reduced scale): normalised IPC loss (%) ==");
    for series in experiments::figure10(&suite) {
        print!("{}", series.render());
    }

    c.bench_function("figure10/series_from_suite", |b| {
        b.iter(|| black_box(experiments::figure10(black_box(&suite))))
    });
    c.bench_function("figure10/improved_run_vortex", |b| {
        b.iter(|| black_box(experiment.run(Benchmark::Vortex, Technique::Improved)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = figure10
}
criterion_main!(benches);
