//! Figure 11 — issue-queue power savings (Extension and Improved).
//! Running this bench regenerates the figure's data series at a reduced
//! workload scale and measures the cost of producing it.

use criterion::{criterion_group, criterion_main, Criterion};
use sdiq_core::{experiments, Experiment, Technique};
use sdiq_workloads::Benchmark;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let experiment = Experiment {
        scale: 0.08,
        ..Experiment::paper()
    };
    let suite = experiment.run_matrix(&Benchmark::ALL, &TECHNIQUES);

    let figure = experiments::figure11(&suite);
    println!("\n== Figure 11 (reduced scale): issue-queue dynamic power savings (%) ==");
    for series in &figure.dynamic {
        print!("{}", series.render());
    }
    println!("== Figure 11 (reduced scale): issue-queue static power savings (%) ==");
    for series in &figure.static_ {
        print!("{}", series.render());
    }

    c.bench_function("figure11/series_from_suite", |b| {
        b.iter(|| black_box(experiments::figure11(black_box(&suite))))
    });
    c.bench_function("figure11/end_to_end_run", |b| {
        b.iter(|| black_box(experiment.run(Benchmark::Bzip2, Technique::Extension)))
    });
}

const TECHNIQUES: [Technique; 3] = [
    Technique::Baseline,
    Technique::Extension,
    Technique::Improved,
];

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
