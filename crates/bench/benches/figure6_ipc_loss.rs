//! Figure 6 — normalised IPC loss of the NOOP technique vs the `abella`
//! comparator. Running this bench regenerates the figure's data series (at a
//! reduced workload scale) and measures the cost of producing it.

use criterion::{criterion_group, criterion_main, Criterion};
use sdiq_core::{experiments, Experiment, Technique};
use sdiq_workloads::Benchmark;
use std::hint::black_box;

fn figure6(c: &mut Criterion) {
    let experiment = Experiment {
        scale: 0.08,
        ..Experiment::paper()
    };
    let suite = experiment.run_matrix(
        &Benchmark::ALL,
        &[Technique::Baseline, Technique::Noop, Technique::Abella],
    );

    println!("\n== Figure 6 (reduced scale): normalised IPC loss (%) ==");
    for series in experiments::figure6(&suite) {
        print!("{}", series.render());
    }

    c.bench_function("figure6/series_from_suite", |b| {
        b.iter(|| black_box(experiments::figure6(black_box(&suite))))
    });
    c.bench_function("figure6/noop_run_gzip", |b| {
        b.iter(|| black_box(experiment.run(Benchmark::Gzip, Technique::Noop)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = figure6
}
criterion_main!(benches);
