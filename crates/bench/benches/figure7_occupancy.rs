//! Figure 7 — issue-queue occupancy reduction under the NOOP technique.

use criterion::{criterion_group, criterion_main, Criterion};
use sdiq_core::{experiments, Experiment, Technique};
use sdiq_workloads::Benchmark;
use std::hint::black_box;

fn figure7(c: &mut Criterion) {
    let experiment = Experiment {
        scale: 0.08,
        ..Experiment::paper()
    };
    let suite = experiment.run_matrix(&Benchmark::ALL, &[Technique::Baseline, Technique::Noop]);

    println!("\n== Figure 7 (reduced scale): IQ occupancy reduction (%) ==");
    print!("{}", experiments::figure7(&suite).render());

    c.bench_function("figure7/series_from_suite", |b| {
        b.iter(|| black_box(experiments::figure7(black_box(&suite))))
    });
    c.bench_function("figure7/baseline_run_vpr", |b| {
        b.iter(|| black_box(experiment.run(Benchmark::Vpr, Technique::Baseline)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = figure7
}
criterion_main!(benches);
