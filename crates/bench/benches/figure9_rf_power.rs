//! Figure 9 — integer register-file power savings (NOOP vs abella).
//! Running this bench regenerates the figure's data series at a reduced
//! workload scale and measures the cost of producing it.

use criterion::{criterion_group, criterion_main, Criterion};
use sdiq_core::{experiments, Experiment, Technique};
use sdiq_workloads::Benchmark;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let experiment = Experiment {
        scale: 0.08,
        ..Experiment::paper()
    };
    let suite = experiment.run_matrix(&Benchmark::ALL, &TECHNIQUES);

    let figure = experiments::figure9(&suite);
    println!("\n== Figure 9 (reduced scale): integer register-file dynamic power savings (%) ==");
    for series in &figure.dynamic {
        print!("{}", series.render());
    }
    println!("== Figure 9 (reduced scale): integer register-file static power savings (%) ==");
    for series in &figure.static_ {
        print!("{}", series.render());
    }

    c.bench_function("figure9/series_from_suite", |b| {
        b.iter(|| black_box(experiments::figure9(black_box(&suite))))
    });
    c.bench_function("figure9/end_to_end_run", |b| {
        b.iter(|| black_box(experiment.run(Benchmark::Parser, Technique::Abella)))
    });
}

const TECHNIQUES: [Technique; 3] = [Technique::Baseline, Technique::Noop, Technique::Abella];

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
