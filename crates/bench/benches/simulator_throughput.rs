//! Simulator throughput: simulated instructions per second of wall-clock
//! time for the cycle-level model, under each resize policy. Not a paper
//! figure, but the number that determines how large an experiment the
//! harness can afford.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sdiq_isa::Executor;
use sdiq_sim::{AdaptiveConfig, ResizePolicy, SimConfig, Simulator};
use sdiq_workloads::Benchmark;
use std::hint::black_box;

fn simulator_throughput(c: &mut Criterion) {
    let program = Benchmark::Gzip.build_scaled(0.2);
    let trace = Executor::new(&program).run(2_000_000).expect("executes");

    let mut group = c.benchmark_group("simulator");
    group.throughput(Throughput::Elements(trace.len() as u64));
    for (name, policy) in [
        ("fixed", ResizePolicy::Fixed),
        ("software_hint", ResizePolicy::SoftwareHint),
        (
            "adaptive",
            ResizePolicy::Adaptive(AdaptiveConfig::iqrob64()),
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("policy", name), &policy, |b, &policy| {
            b.iter(|| {
                black_box(
                    Simulator::new(SimConfig::hpca2005(), &program, &trace, policy)
                        .run()
                        .expect("simulation completes"),
                )
            })
        });
    }
    group.finish();

    let mut exec_group = c.benchmark_group("functional_executor");
    exec_group.throughput(Throughput::Elements(trace.len() as u64));
    exec_group.bench_function("gzip_scaled", |b| {
        b.iter(|| black_box(Executor::new(&program).run(2_000_000).expect("executes")))
    });
    exec_group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = simulator_throughput
}
criterion_main!(benches);
