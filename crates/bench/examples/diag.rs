//! Diagnostic dump of raw simulator statistics for a few representative
//! benchmarks and techniques. Useful when tuning the machine model or the
//! workload generator: prints IPC, cycle counts, issue-queue / ROB /
//! register-file occupancies, bank activity and stall counters side by side.
//!
//! ```text
//! cargo run --release -p sdiq-bench --example diag
//! ```

use sdiq_core::{Experiment, Technique};
use sdiq_workloads::Benchmark;

fn main() {
    let exp = Experiment {
        scale: 0.5,
        ..Experiment::paper()
    };
    for b in [
        Benchmark::Gzip,
        Benchmark::Crafty,
        Benchmark::Mcf,
        Benchmark::Vortex,
    ] {
        for t in [
            Technique::Baseline,
            Technique::Noop,
            Technique::Extension,
            Technique::Abella,
        ] {
            let r = exp.run(b, t);
            println!(
                "{:8} {:10} ipc={:5.2} cyc={:7} occ={:5.1} banks_on={:4.1} rob_occ={:5.1} rf_occ={:5.1} rf_banks={:4.1} disp_stall={:6} hints={:5} resz={}",
                b.name(),
                t.name(),
                r.stats.ipc(),
                r.stats.cycles,
                r.stats.avg_iq_occupancy(),
                r.stats.avg_iq_banks_on(),
                r.stats.avg_rob_occupancy(),
                r.stats.avg_int_rf_occupancy(),
                r.stats.avg_int_rf_banks_on(),
                r.stats.dispatch_limit_stall_cycles,
                r.stats.committed_hints,
                r.adaptive_resizes
            );
        }
    }
}
