//! Dumps the full `ActivityStats` of a deterministic matrix of
//! (program × policy) simulations as stable text.
//!
//! Used to verify that simulator refactors keep every activity counter
//! bit-identical: capture the output before and after a change and diff.
//!
//! ```text
//! cargo run --release -p sdiq-bench --example stats_dump > stats.txt
//! ```

use sdiq_compiler::{CompilerPass, PassConfig};
use sdiq_isa::builder::ProgramBuilder;
use sdiq_isa::reg::int_reg;
use sdiq_isa::{Executor, Program};
use sdiq_sim::{AdaptiveConfig, ExecPlan, PlanSimulator, ResizePolicy, SimConfig, Simulator};
use sdiq_workloads::Benchmark;

/// The pipeline unit-test loop program (mirrors `pipeline.rs` tests).
fn loop_program(trips: i64, ilp: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let main = b.procedure("main");
    {
        let p = b.proc_mut(main);
        let entry = p.block();
        let body = p.block();
        let exit = p.block();
        p.with_block(entry, |bb| {
            bb.li(int_reg(1), 0);
            bb.li(int_reg(2), 1000);
            bb.jump(body);
        });
        p.with_block(body, |bb| {
            for k in 0..ilp {
                bb.addi(int_reg(3 + (k % 6) as u8), int_reg(2), k as i64);
            }
            bb.load(int_reg(10), int_reg(2), 0);
            bb.addi(int_reg(11), int_reg(10), 1);
            bb.addi(int_reg(1), int_reg(1), 1);
            bb.blt(int_reg(1), trips, body, exit);
        });
        p.with_block(exit, |bb| {
            bb.ret();
        });
        p.set_entry(entry);
    }
    b.finish(main).unwrap()
}

fn dump(label: &str, program: &Program) {
    let trace = Executor::new(program).run(400_000).expect("trace executes");
    let config = SimConfig::hpca2005();
    // One plan per cell shape, shared across every policy — exactly how the
    // artifact cache reuses it in production.
    let plan = ExecPlan::build(config, program, &trace);
    for (policy_name, policy) in [
        ("fixed", ResizePolicy::Fixed),
        ("software_hint", ResizePolicy::SoftwareHint),
        (
            "adaptive",
            ResizePolicy::Adaptive(AdaptiveConfig::iqrob64()),
        ),
    ] {
        let result = Simulator::new(config, program, &trace, policy)
            .run()
            .expect("simulation completes");
        // The compiled backend must agree on every counter; the dump text
        // stays interpreter-shaped so captures diff cleanly across changes.
        let compiled = PlanSimulator::new(&plan, policy)
            .run()
            .expect("compiled replay completes");
        assert_eq!(
            compiled, result,
            "compiled backend diverged from the interpreter on {label}/{policy_name}"
        );
        println!("== {label} / {policy_name}");
        println!("{:#?}", result.stats);
        println!("adaptive_resizes: {}", result.adaptive_resizes);
    }
}

fn main() {
    dump("loop_200x4", &loop_program(200, 4));
    dump("loop_300x6", &loop_program(300, 6));
    dump("loop_4000x2", &loop_program(4000, 2));

    // Hinted variant: run the paper's compiler pass so SoftwareHint actually
    // exercises `apply_hint` / `new_head` region accounting.
    let hinted = CompilerPass::new(PassConfig::noop_insertion())
        .run(&loop_program(500, 5))
        .program;
    dump("loop_500x5_noop_hints", &hinted);

    // A real workload analogue for broader coverage (branchy + memory).
    dump("gzip_scaled_0.05", &Benchmark::Gzip.build_scaled(0.05));
}
