//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--scale <f64>] [--table1] [--table2] [--figure6] [--figure7]
//!       [--figure8] [--figure9] [--figure10] [--figure11] [--figure12]
//!       [--overall] [--summary] [--all]
//! ```
//!
//! With no selection flags, `--all` is assumed. `--scale` shrinks or grows
//! every workload's outer loop (1.0 = the default reproduction scale).

use sdiq_core::{experiments, Experiment, Suite, Technique};
use sdiq_sim::SimConfig;
use sdiq_workloads::Benchmark;
use std::collections::BTreeSet;

#[derive(Debug, Default)]
struct Options {
    scale: Option<f64>,
    selections: BTreeSet<String>,
}

fn parse_args() -> Options {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .unwrap_or(1.0);
                options.scale = Some(value);
            }
            "--help" | "-h" => {
                println!(
                    "repro [--scale <f>] [--table1] [--table2] [--figure6..12] [--overall] [--summary] [--all]"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => {
                options
                    .selections
                    .insert(flag.trim_start_matches("--").to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if options.selections.is_empty() {
        options.selections.insert("all".to_string());
    }
    options
}

fn wants(options: &Options, what: &str) -> bool {
    options.selections.contains("all") || options.selections.contains(what)
}

fn print_power_figure(title: &str, figure: &experiments::PowerFigure) {
    println!("{title} — dynamic power savings (%)");
    for series in &figure.dynamic {
        print!("{}", series.render());
    }
    println!("{title} — static power savings (%)");
    for series in &figure.static_ {
        print!("{}", series.render());
    }
}

fn main() {
    let options = parse_args();
    let mut experiment = Experiment::paper();
    if let Some(scale) = options.scale {
        experiment.scale = scale;
    }

    if wants(&options, "table1") {
        println!("== Table 1: processor configuration ==");
        print!("{}", experiments::table1(&SimConfig::hpca2005()));
        println!();
    }

    if wants(&options, "table2") {
        println!("== Table 2: compilation time (baseline vs with analysis pass) ==");
        for (benchmark, baseline, limited) in experiment.compile_times(&Benchmark::ALL) {
            println!(
                "  {:10} baseline {:>10.3?}   with pass {:>10.3?}   growth {:>5.2}x",
                benchmark.name(),
                baseline,
                limited,
                if baseline.as_secs_f64() > 0.0 {
                    limited.as_secs_f64() / baseline.as_secs_f64()
                } else {
                    f64::NAN
                }
            );
        }
        println!();
    }

    let needs_suite = [
        "figure6", "figure7", "figure8", "figure9", "figure10", "figure11", "figure12", "overall",
        "summary", "all",
    ]
    .iter()
    .any(|f| options.selections.contains(*f))
        || options.selections.contains("all");

    let suite: Option<Suite> = if needs_suite {
        eprintln!(
            "running {} benchmarks x {} techniques at scale {} ...",
            Benchmark::ALL.len(),
            Technique::ALL.len(),
            experiment.scale
        );
        Some(experiment.run_matrix(&Benchmark::ALL, &Technique::ALL))
    } else {
        None
    };

    if let Some(suite) = &suite {
        if wants(&options, "figure6") {
            println!("== Figure 6: normalised IPC loss, NOOP technique (%) ==");
            for series in experiments::figure6(suite) {
                print!("{}", series.render());
            }
            println!();
        }
        if wants(&options, "figure7") {
            println!("== Figure 7: issue-queue occupancy reduction, NOOP technique (%) ==");
            print!("{}", experiments::figure7(suite).render());
            println!();
        }
        if wants(&options, "figure8") {
            print_power_figure(
                "== Figure 8: issue-queue power savings, NOOP technique ==",
                &experiments::figure8(suite),
            );
            println!();
        }
        if wants(&options, "figure9") {
            print_power_figure(
                "== Figure 9: integer register-file power savings, NOOP technique ==",
                &experiments::figure9(suite),
            );
            println!();
        }
        if wants(&options, "figure10") {
            println!("== Figure 10: normalised IPC loss, Extension and Improved (%) ==");
            for series in experiments::figure10(suite) {
                print!("{}", series.render());
            }
            println!();
        }
        if wants(&options, "figure11") {
            print_power_figure(
                "== Figure 11: issue-queue power savings, Extension and Improved ==",
                &experiments::figure11(suite),
            );
            println!();
        }
        if wants(&options, "figure12") {
            print_power_figure(
                "== Figure 12: integer register-file power savings, Extension and Improved ==",
                &experiments::figure12(suite),
            );
            println!();
        }
        if wants(&options, "overall") {
            println!("== §6: overall processor dynamic power savings ==");
            for technique in [Technique::Noop, Technique::Extension, Technique::Improved] {
                let overall = experiments::overall_processor_savings(suite, technique, 0.22, 0.11);
                println!(
                    "  {:10} {overall:5.1}% (IQ at 22%, int RF at 11% of processor power)",
                    technique.name()
                );
            }
            println!();
        }
        if wants(&options, "summary") {
            println!("== Suite-average summary (paper headline numbers) ==");
            println!(
                "  {:10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                "technique", "IPC loss", "IQ occ-", "IQ dyn", "IQ stat", "RF dyn", "RF stat"
            );
            for technique in Technique::EVALUATED {
                let s = experiments::summarise(suite, technique);
                println!(
                    "  {:10} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
                    technique.name(),
                    s.ipc_loss_pct,
                    s.iq_occupancy_reduction_pct,
                    s.iq_dynamic_pct,
                    s.iq_static_pct,
                    s.rf_dynamic_pct,
                    s.rf_static_pct
                );
            }
            println!();
        }
    }
}
