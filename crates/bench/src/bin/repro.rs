//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro [--scale <f64>] [--jobs <n>] [--sweep <axis>=<v1,v2,...>]
//!       [--backend compiled|interpreted]
//!       [--benchmarks <b1,b2,...>] [--techniques <t1,t2,...>]
//!       [--save <path>] [--load <path>]... [--checkpoint <path>]
//!       [--shard <k>/<n>] [--shards <n>] [--workers <host:port,...>]
//!       [--listen-workers <host:port> --expect <n>] [--retry-budget <n>]
//!       [--connect-timeout <secs>] [--heartbeat-deadline <secs>] [--no-speculate]
//!       [--wire binary|json] [--pipeline-window <n>] [--auth-key <key>]
//!       [--trace <path>] [--progress] [--stats]
//!       [--table1] [--table2] [--figure6] [--figure7] [--figure8]
//!       [--figure9] [--figure10] [--figure11] [--figure12]
//!       [--overall] [--summary] [--sweep-summary] [--all]
//!       [--verify | --no-verify]
//! repro serve [--listen <host:port> | --register <host:port>] [--jobs <n>]
//!             [--fail-after <n>] [--stall-after <n>] [--heartbeat-deadline <secs>]
//!             [--wire binary|json] [--auth-key <key>]
//! repro lint [--scale <f64>] [--sweep <axis>=<v1,v2,...>]
//!            [--benchmarks <b1,b2,...>] [--techniques <t1,t2,...>]
//! ```
//!
//! With no selection flags, `--all` is assumed. `--scale` shrinks or grows
//! every workload's outer loop (1.0 = the default reproduction scale).
//! `--backend` picks the simulator backend: `compiled` (the default —
//! cells are lowered once into cached execution plans) or `interpreted`
//! (the original cycle loop, for debugging); the two are bit-identical,
//! so the flag never changes results, only speed.
//!
//! The matrix runs on the job engine (`sdiq_core::Matrix`): `--jobs` fixes
//! the worker-pool size (default: one worker per hardware thread), and
//! `--sweep` adds a configuration axis on top of the base machine —
//! `--sweep iq=64,48,32` sweeps the issue-queue capacity,
//! `--sweep bank=4,16` the bank size and `--sweep scale=0.5,1.0` the
//! workload scale (repeatable; each adds variants next to `base`).
//! Swept runs print a Figure-10-style sensitivity table after the base
//! figures. `--benchmarks`/`--techniques` restrict the other two axes by
//! name.
//!
//! `--save` writes every computed cell as JSON keyed by its cell cache
//! key; `--load` (repeatable — later files win on key collisions) seeds a
//! later run from save *or* checkpoint files so only missing cells (new
//! benchmarks, techniques or configurations) are re-run.
//!
//! Scaling beyond one process (see EXPERIMENTS.md for the protocol):
//!
//! * `--checkpoint <path>` appends every completed cell to a JSONL
//!   checkpoint the moment it finishes and *seeds itself from that file*
//!   on start — a killed run re-invoked with the same flags resumes,
//!   recomputing only the cells that were still missing.
//! * `--shard k/n` (worker mode) computes exactly the cells the stable
//!   key partition assigns to shard `k` of `n`, writes them via
//!   `--save`/`--checkpoint`, and prints no figures.
//! * `--shards n` (coordinator mode) spawns `n` worker subprocesses of
//!   this same binary, one per shard, merges their partial suites and
//!   proceeds exactly like a serial run — the merged output is
//!   bit-identical to one.
//! * `repro serve` turns this binary into a networked worker daemon
//!   (`sdiq-remote`): it listens for a coordinator (or, with
//!   `--register host:port`, dials a rendezvous coordinator itself —
//!   for fleets behind NAT), advertises `--jobs` as its capacity and
//!   streams computed cells back per cell. `--fail-after n` (die) and
//!   `--stall-after n` (hang silently, socket open) are the
//!   fault-injection hooks the failover tests and CI smoke use to
//!   simulate the two shapes of worker death.
//! * `--workers host:port,...` (remote coordinator mode) distributes the
//!   missing cells over those daemons instead of computing locally;
//!   `--listen-workers addr --expect n` additionally (or instead) waits
//!   for `n` self-registering daemons. A worker that dies — or goes
//!   silent past `--heartbeat-deadline` (default 30 s) — has its cells
//!   re-queued onto the survivors under `--retry-budget` (default 3),
//!   idle workers speculatively double-issue straggler cells (first
//!   result wins; `--no-speculate` disables), and the assembled suite is
//!   still byte-for-byte identical to a serial run. Dials are bounded by
//!   `--connect-timeout` (default 10 s). Composes with `--checkpoint` (a
//!   killed coordinator resumes by re-running the identical command) and
//!   `--save`.
//! * Wire tuning (both sides must only agree on `--auth-key`; the rest
//!   negotiates): `--wire binary` (default) lets peers negotiate the
//!   compact `bin1` frame codec, `--wire json` pins JSON frames (for
//!   debugging, old peers interoperate either way);
//!   `--pipeline-window n` keeps up to `n` cells outstanding per worker
//!   connection (default 2× the worker's capacity) so daemons never
//!   idle a round-trip between batches; `--auth-key <key>` requires the
//!   HMAC handshake on every connection — a peer with a wrong or
//!   missing key gets a clean protocol error, never a hang.
//!
//! Observability (`sdiq-obs`, see the EXPERIMENTS.md span-and-metric
//! taxonomy) — strictly out-of-band: none of these flags ever change a
//! computed number or a persisted byte, only what gets reported:
//!
//! * `--trace <path>` records structured spans (cell runs, cache
//!   builds/compiles, checkpoint appends, scheduler verdicts) and writes
//!   a Chrome trace-event JSON on exit — load it in Perfetto or
//!   `chrome://tracing`. In remote mode the workers' spans are shipped
//!   back and merged, one `pid` lane per worker.
//! * `--progress` streams a rate-limited `progress:` line to **stderr**
//!   (cells done/total, throughput, ETA; in remote mode also per-worker
//!   rates from the heartbeat metrics).
//! * `--stats` prints the process metrics registry after the figures.
//! * Both `--trace` and `--progress` are coordinator-side flags:
//!   `repro serve` refuses them (exit 2) — daemons are observed *by*
//!   their coordinator, which negotiates the `obs1` capability.
//!
//! Static verification (`sdiq-verify`, see EXPERIMENTS.md for the
//! diagnostic-code table):
//!
//! * `--verify` / `--no-verify` override the artifact cache's default
//!   (on in debug builds, off in release): with verification on, every
//!   compile runs through the pass manager's inter-pass checker and
//!   every cached artifact is statically verified once when first
//!   built — a finding aborts the run. The two flags are mutually
//!   exclusive; coordinators forward the choice to `--shards` workers.
//! * `repro lint` runs the full checker suite — structural program
//!   verification, annotation legality, the soundness envelope and the
//!   execution-plan lint — over every artifact of the selected
//!   (variant × benchmark × technique) space, *collecting* structured
//!   diagnostics instead of aborting. Exit 0 = clean, 1 = findings,
//!   2 = flag error. A purely local, read-only checker: it refuses
//!   `--workers`/`--shards`/`--shard`.

use sdiq_compiler::CompilerPass;
use sdiq_core::{
    experiments, persist, ArtifactCache, Backend, CompileKey, Experiment, MatrixSpec, PlanKey,
    PlanSource, ProgramKey, SimBackend, SubprocessSpec, Suite, Technique,
};
use sdiq_isa::{Executor, Program};
use sdiq_sim::{ExecPlan, SimConfig};
use sdiq_verify::StandardVerifier;
use sdiq_workloads::Benchmark;
use std::collections::{BTreeSet, HashMap, HashSet};
use std::time::Duration;

#[derive(Debug, Default)]
struct Options {
    scale: Option<f64>,
    jobs: Option<usize>,
    sweeps: Vec<(String, Vec<f64>)>,
    benchmarks: Option<Vec<Benchmark>>,
    techniques: Option<Vec<Technique>>,
    save: Option<String>,
    loads: Vec<String>,
    checkpoint: Option<String>,
    /// Worker mode: `(index, count)`, zero-based index.
    shard: Option<(usize, usize)>,
    /// Coordinator mode: number of worker subprocesses to spawn.
    shards: Option<usize>,
    /// Remote coordinator mode: worker daemon addresses.
    workers: Option<Vec<String>>,
    /// Remote coordinator mode: rendezvous address for self-registering
    /// workers (`repro serve --register`).
    listen_workers: Option<String>,
    /// How many worker registrations to wait for on `listen_workers`.
    expect: Option<usize>,
    /// Per-cell re-queue budget for the remote scheduler.
    retry_budget: Option<usize>,
    /// Dial bound for remote workers, seconds (0 disables).
    connect_timeout: Option<f64>,
    /// Silence-means-dead threshold for remote workers, seconds
    /// (0 disables — the pre-liveness behaviour).
    heartbeat_deadline: Option<f64>,
    /// Disable speculative double-issue of straggler cells.
    no_speculate: bool,
    /// `--wire json` pins JSON frames (false); default/`--wire binary`
    /// negotiates the compact codec (true).
    binary_wire: Option<bool>,
    /// Outstanding-cell window per worker connection (0 = 2× capacity).
    pipeline_window: Option<usize>,
    /// Shared secret for the HMAC connection handshake.
    auth_key: Option<String>,
    /// Simulator backend override (`--backend compiled|interpreted`).
    backend: Option<SimBackend>,
    /// Per-artifact static verification override (`--verify` /
    /// `--no-verify`); `None` keeps the cache default (on in debug
    /// builds, off in release).
    verify: Option<bool>,
    /// Chrome trace-event JSON output path (`--trace`); also turns span
    /// recording on for the whole run.
    trace: Option<String>,
    /// Stream a rate-limited progress line to stderr (`--progress`).
    progress: bool,
    selections: BTreeSet<String>,
}

fn required_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("error: {flag} needs a value");
        std::process::exit(2);
    })
}

fn parse_args() -> Options {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args
                    .next()
                    .and_then(|v| v.parse::<f64>().ok())
                    .unwrap_or(1.0);
                options.scale = Some(value);
            }
            "--jobs" => {
                let value = required_value(&mut args, "--jobs");
                options.jobs = Some(parse_jobs(&value));
            }
            "--sweep" => {
                let spec = required_value(&mut args, "--sweep");
                options.sweeps.push(parse_sweep_spec(&spec));
            }
            "--benchmarks" => {
                let spec = required_value(&mut args, "--benchmarks");
                options.benchmarks = Some(parse_benchmarks_spec(&spec));
            }
            "--techniques" => {
                let spec = required_value(&mut args, "--techniques");
                options.techniques = Some(parse_techniques_spec(&spec));
            }
            "--save" => options.save = Some(required_value(&mut args, "--save")),
            "--load" => options.loads.push(required_value(&mut args, "--load")),
            "--checkpoint" => options.checkpoint = Some(required_value(&mut args, "--checkpoint")),
            "--shard" => {
                let spec = required_value(&mut args, "--shard");
                let parsed = spec
                    .split_once('/')
                    .and_then(|(k, n)| Some((k.parse::<usize>().ok()?, n.parse::<usize>().ok()?)));
                let Some((k, n)) = parsed else {
                    eprintln!("error: --shard wants <k>/<n>, got `{spec}`");
                    std::process::exit(2);
                };
                if n < 1 || k < 1 || k > n {
                    eprintln!("error: --shard {spec}: need 1 <= k <= n");
                    std::process::exit(2);
                }
                options.shard = Some((k - 1, n));
            }
            "--shards" => {
                let value = required_value(&mut args, "--shards");
                let shards = value.parse::<usize>().ok().filter(|&n| n >= 1);
                let Some(shards) = shards else {
                    eprintln!("error: --shards needs a positive integer, got `{value}`");
                    std::process::exit(2);
                };
                options.shards = Some(shards);
            }
            "--workers" => {
                let spec = required_value(&mut args, "--workers");
                let workers: Vec<String> = spec
                    .split(',')
                    .map(str::trim)
                    .filter(|worker| !worker.is_empty())
                    .map(str::to_string)
                    .collect();
                if workers.is_empty() {
                    eprintln!("error: --workers wants <host:port>[,<host:port>...], got `{spec}`");
                    std::process::exit(2);
                }
                options.workers = Some(workers);
            }
            "--listen-workers" => {
                options.listen_workers = Some(required_value(&mut args, "--listen-workers"));
            }
            "--expect" => {
                let value = required_value(&mut args, "--expect");
                let expect = value.parse::<usize>().ok().filter(|&n| n >= 1);
                let Some(expect) = expect else {
                    eprintln!("error: --expect needs a positive integer, got `{value}`");
                    std::process::exit(2);
                };
                options.expect = Some(expect);
            }
            "--retry-budget" => {
                let value = required_value(&mut args, "--retry-budget");
                options.retry_budget = Some(value.parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("error: --retry-budget needs a non-negative integer, got `{value}`");
                    std::process::exit(2);
                }));
            }
            "--connect-timeout" => {
                let value = required_value(&mut args, "--connect-timeout");
                options.connect_timeout = Some(parse_seconds("--connect-timeout", &value));
            }
            "--heartbeat-deadline" => {
                let value = required_value(&mut args, "--heartbeat-deadline");
                options.heartbeat_deadline = Some(parse_seconds("--heartbeat-deadline", &value));
            }
            "--no-speculate" => options.no_speculate = true,
            "--wire" => {
                let value = required_value(&mut args, "--wire");
                options.binary_wire = Some(parse_wire(&value));
            }
            "--pipeline-window" => {
                let value = required_value(&mut args, "--pipeline-window");
                options.pipeline_window = Some(value.parse::<usize>().unwrap_or_else(|_| {
                    eprintln!(
                        "error: --pipeline-window needs a non-negative integer \
                         (0 = 2x worker capacity), got `{value}`"
                    );
                    std::process::exit(2);
                }));
            }
            "--auth-key" => options.auth_key = Some(required_value(&mut args, "--auth-key")),
            "--trace" => options.trace = Some(required_value(&mut args, "--trace")),
            "--progress" => options.progress = true,
            "--verify" | "--no-verify" => {
                let on = arg == "--verify";
                if options.verify.is_some_and(|prev| prev != on) {
                    eprintln!("error: --verify and --no-verify are mutually exclusive");
                    std::process::exit(2);
                }
                options.verify = Some(on);
            }
            "--backend" => {
                let value = required_value(&mut args, "--backend");
                options.backend = Some(SimBackend::parse(&value).unwrap_or_else(|| {
                    eprintln!("error: --backend wants `compiled` or `interpreted`, got `{value}`");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!(
                    "repro [--scale <f>] [--jobs <n>] [--backend compiled|interpreted] \
                     [--sweep iq|bank|scale=<v,..>] \
                     [--benchmarks <b,..>] [--techniques <t,..>] \
                     [--save <path>] [--load <path>]... [--checkpoint <path>] \
                     [--shard <k>/<n>] [--shards <n>] [--workers <host:port,..>] \
                     [--listen-workers <host:port> --expect <n>] [--retry-budget <n>] \
                     [--connect-timeout <secs>] [--heartbeat-deadline <secs>] [--no-speculate] \
                     [--wire binary|json] [--pipeline-window <n>] [--auth-key <key>] \
                     [--trace <path>] [--progress] [--stats] \
                     [--verify | --no-verify] \
                     [--table1] [--table2] [--figure6..12] \
                     [--overall] [--summary] [--sweep-summary] [--all]\n\
                     repro serve [--listen <host:port> | --register <host:port>] [--jobs <n>] \
                     [--fail-after <n>] [--stall-after <n>] [--heartbeat-deadline <secs>] \
                     [--wire binary|json] [--auth-key <key>]\n\
                     repro lint [--scale <f>] [--sweep iq|bank|scale=<v,..>] \
                     [--benchmarks <b,..>] [--techniques <t,..>]"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => {
                options
                    .selections
                    .insert(flag.trim_start_matches("--").to_string());
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if options.shard.is_some() && options.shards.is_some() {
        eprintln!("error: --shard (worker) and --shards (coordinator) are mutually exclusive");
        std::process::exit(2);
    }
    let remote = options.workers.is_some() || options.listen_workers.is_some();
    if remote && options.shard.is_some() {
        eprintln!(
            "error: --workers/--listen-workers (remote coordinator) cannot combine with --shard (subprocess worker)"
        );
        std::process::exit(2);
    }
    if remote && options.shards.is_some() {
        eprintln!("error: --workers/--listen-workers (remote coordinator) and --shards (subprocess coordinator) are mutually exclusive");
        std::process::exit(2);
    }
    if options.listen_workers.is_some() != options.expect.is_some() {
        eprintln!(
            "error: --listen-workers <addr> and --expect <n> go together (the rendezvous \
             must know how many registrations to wait for)"
        );
        std::process::exit(2);
    }
    if options.shard.is_some() && options.save.is_none() && options.checkpoint.is_none() {
        eprintln!("error: a --shard worker needs --save or --checkpoint to deliver its cells");
        std::process::exit(2);
    }
    if options.selections.is_empty() {
        options.selections.insert("all".to_string());
    }
    options
}

/// Parses a `--sweep <axis>=<v1,v2,...>` spec. Axis names and value
/// ranges are validated by the one shared validator, `MatrixSpec::matrix`
/// (worker daemons apply the identical rules to wire input, so the two
/// cannot drift); callers exit 2 on its error.
fn parse_sweep_spec(spec: &str) -> (String, Vec<f64>) {
    let Some((axis, values)) = spec.split_once('=') else {
        eprintln!("error: --sweep wants <axis>=<v1,v2,...>, got `{spec}`");
        std::process::exit(2);
    };
    let values: Vec<f64> = values
        .split(',')
        .map(|v| {
            v.parse::<f64>().unwrap_or_else(|_| {
                eprintln!("error: bad sweep value `{v}` in `{spec}`");
                std::process::exit(2);
            })
        })
        .collect();
    (axis.to_string(), values)
}

/// Parses a `--benchmarks <b1,b2,...>` spec (unknown names exit 2).
fn parse_benchmarks_spec(spec: &str) -> Vec<Benchmark> {
    spec.split(',')
        .map(|name| {
            Benchmark::from_name(name).unwrap_or_else(|| {
                eprintln!("error: unknown benchmark `{name}`");
                std::process::exit(2);
            })
        })
        .collect()
}

/// Parses a `--techniques <t1,t2,...>` spec (unknown names exit 2, with
/// the registered names listed so the valid spellings are discoverable).
fn parse_techniques_spec(spec: &str) -> Vec<Technique> {
    spec.split(',')
        .map(|name| {
            Technique::from_name(name).unwrap_or_else(|| {
                eprintln!(
                    "error: unknown technique `{name}` (registered: {})",
                    sdiq_core::TechniqueRegistry::names().join(", ")
                );
                std::process::exit(2);
            })
        })
        .collect()
}

/// Parses a seconds value for the remote timeouts (`--connect-timeout`,
/// `--heartbeat-deadline`). Zero means "disabled" and is allowed;
/// anything non-numeric, negative, or past a year exits 2 (the upper
/// bound is really an overflow guard: `Duration::from_secs_f64` panics
/// on values that do not fit a `Duration`).
fn parse_seconds(flag: &str, value: &str) -> f64 {
    const MAX_SECONDS: f64 = 365.0 * 24.0 * 3600.0;
    match value.parse::<f64>() {
        Ok(seconds) if seconds.is_finite() && (0.0..=MAX_SECONDS).contains(&seconds) => seconds,
        _ => {
            eprintln!(
                "error: {flag} needs a number of seconds between 0 and {MAX_SECONDS:.0}, \
                 got `{value}`"
            );
            std::process::exit(2);
        }
    }
}

/// Parses a `--wire` value into "negotiate the binary codec?" — shared
/// by coordinator and serve modes so the two cannot drift.
fn parse_wire(value: &str) -> bool {
    match value {
        "binary" => true,
        "json" => false,
        _ => {
            eprintln!("error: --wire wants `binary` or `json`, got `{value}`");
            std::process::exit(2);
        }
    }
}

/// Parses a `--jobs` value. Zero is rejected here rather than silently
/// meaning "auto": a pool of zero workers is never what the user asked
/// for, and in worker-budget arithmetic it would divide away to nothing.
fn parse_jobs(value: &str) -> usize {
    match value.parse::<usize>() {
        Ok(0) => {
            eprintln!("error: --jobs wants a positive worker count (omit the flag for one per hardware thread), got `0`");
            std::process::exit(2);
        }
        Ok(jobs) => jobs,
        Err(_) => {
            eprintln!("error: --jobs needs an integer, got `{value}`");
            std::process::exit(2);
        }
    }
}

/// Parses the `repro serve ...` argument tail and runs the worker daemon
/// (never returns on success — the daemon serves until killed).
fn serve_main(args: impl Iterator<Item = String>) -> ! {
    let mut options = sdiq_remote::server::ServeOptions {
        listen: "127.0.0.1:0".to_string(),
        register: None,
        jobs: 0,
        fail_after: None,
        stall_after: None,
        heartbeat_deadline: sdiq_remote::DEFAULT_HEARTBEAT_DEADLINE,
        auth_key: None,
        advertise_binary: true,
    };
    let mut listen_given = false;
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => {
                options.listen = required_value(&mut args, "--listen");
                listen_given = true;
            }
            "--register" => options.register = Some(required_value(&mut args, "--register")),
            "--jobs" => {
                let value = required_value(&mut args, "--jobs");
                options.jobs = parse_jobs(&value);
            }
            "--fail-after" => {
                let value = required_value(&mut args, "--fail-after");
                options.fail_after = Some(value.parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("error: --fail-after needs an integer, got `{value}`");
                    std::process::exit(2);
                }));
            }
            "--stall-after" => {
                let value = required_value(&mut args, "--stall-after");
                options.stall_after = Some(value.parse::<usize>().unwrap_or_else(|_| {
                    eprintln!("error: --stall-after needs an integer, got `{value}`");
                    std::process::exit(2);
                }));
            }
            "--heartbeat-deadline" => {
                let value = required_value(&mut args, "--heartbeat-deadline");
                options.heartbeat_deadline =
                    Duration::from_secs_f64(parse_seconds("--heartbeat-deadline", &value));
            }
            "--wire" => {
                let value = required_value(&mut args, "--wire");
                options.advertise_binary = parse_wire(&value);
            }
            "--auth-key" => options.auth_key = Some(required_value(&mut args, "--auth-key")),
            "--trace" | "--progress" => {
                eprintln!(
                    "error: {arg} is a coordinator flag; a `repro serve` daemon is observed \
                     by its coordinator (run the coordinator with {arg})"
                );
                std::process::exit(2);
            }
            "--help" | "-h" => {
                println!(
                    "repro serve [--listen <host:port> | --register <host:port>] [--jobs <n>] \
                     [--fail-after <n>] [--stall-after <n>] [--heartbeat-deadline <secs>] \
                     [--wire binary|json] [--auth-key <key>]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown serve argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if options.register.is_some() && listen_given {
        eprintln!(
            "error: --listen (coordinator dials us) and --register (we dial the coordinator) \
             are mutually exclusive"
        );
        std::process::exit(2);
    }
    let error = sdiq_remote::server::serve(&options).expect_err("serve only returns on error");
    eprintln!("error: worker daemon: {error}");
    std::process::exit(1);
}

/// Prints each diagnostic under its artifact context, tallying by
/// severity. Diagnostics render as `severity[CODE] location: message`
/// (see EXPERIMENTS.md for the code table).
fn print_diags(
    context: &str,
    diags: &[sdiq_verify::Diagnostic],
    errors: &mut usize,
    warnings: &mut usize,
) {
    for d in diags {
        match d.severity {
            sdiq_verify::Severity::Error => *errors += 1,
            sdiq_verify::Severity::Warning => *warnings += 1,
        }
        println!("{context}: {d}");
    }
}

/// Parses the `repro lint ...` argument tail and runs the full static
/// checker suite — structural program verification, annotation legality,
/// the soundness envelope and the execution-plan lint — over every
/// artifact of the selected (variant × benchmark × technique) space.
/// Artifacts are deduplicated by their cache keys, so the work matches
/// what an equivalent run would build. Exits 0 when no error-severity
/// diagnostics were found, 1 otherwise, 2 on flag errors.
fn lint_main(args: impl Iterator<Item = String>) -> ! {
    let mut scale: Option<f64> = None;
    let mut sweeps: Vec<(String, Vec<f64>)> = Vec::new();
    let mut benchmarks: Option<Vec<Benchmark>> = None;
    let mut techniques: Option<Vec<Technique>> = None;
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = required_value(&mut args, "--scale");
                scale = Some(value.parse::<f64>().unwrap_or_else(|_| {
                    eprintln!("error: --scale needs a number, got `{value}`");
                    std::process::exit(2);
                }));
            }
            "--sweep" => {
                let spec = required_value(&mut args, "--sweep");
                sweeps.push(parse_sweep_spec(&spec));
            }
            "--benchmarks" => {
                let spec = required_value(&mut args, "--benchmarks");
                benchmarks = Some(parse_benchmarks_spec(&spec));
            }
            "--techniques" => {
                let spec = required_value(&mut args, "--techniques");
                techniques = Some(parse_techniques_spec(&spec));
            }
            "--workers" | "--shards" | "--shard" | "--listen-workers" => {
                eprintln!(
                    "error: `repro lint` is a local static checker; {arg} (distributed \
                     execution) does not combine with it"
                );
                std::process::exit(2);
            }
            "--help" | "-h" => {
                println!(
                    "repro lint [--scale <f>] [--sweep iq|bank|scale=<v,..>] \
                     [--benchmarks <b,..>] [--techniques <t,..>]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown lint argument: {other}");
                std::process::exit(2);
            }
        }
    }

    let mut experiment = Experiment::paper();
    if let Some(scale) = scale {
        experiment.scale = scale;
    }
    let benchmarks = benchmarks.unwrap_or_else(|| Benchmark::ALL.to_vec());
    let techniques = techniques.unwrap_or_else(Technique::all);
    // The one shared sweep validator (`MatrixSpec::matrix`) builds the
    // variant list, so lint covers exactly the configurations a run with
    // the same flags would execute.
    let matrix_spec = MatrixSpec {
        scale: experiment.scale,
        sweeps,
        benchmarks: benchmarks.iter().map(|b| b.name().to_string()).collect(),
        techniques: techniques.iter().map(|t| t.name().to_string()).collect(),
    };
    let matrix = matrix_spec.matrix(&experiment).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    let variants = matrix.config_variants();

    // The cache shares built programs across variants; its own
    // panic-on-first-finding verification hook stays off — lint collects
    // and prints every diagnostic instead of aborting.
    let cache = ArtifactCache::new();
    cache.set_verify(false);

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut programs_checked = 0usize;
    let mut compiles_checked = 0usize;
    let mut plans_checked = 0usize;
    let mut seen_programs: HashSet<ProgramKey> = HashSet::new();
    // `None` marks a compile whose pipeline verification failed — the
    // plan stage has nothing sound to lint against for those.
    let mut compiled: HashMap<CompileKey, Option<sdiq_compiler::CompiledProgram>> = HashMap::new();
    let mut seen_plans: HashSet<PlanKey> = HashSet::new();

    for variant in &variants {
        for &benchmark in &benchmarks {
            let program_key = ProgramKey::new(benchmark, variant.scale);
            let program = cache.program(program_key);
            if seen_programs.insert(program_key) {
                programs_checked += 1;
                let context = format!("{}/{}", variant.label, benchmark.name());
                let diags = sdiq_verify::verify_program(&program);
                print_diags(&context, &diags, &mut errors, &mut warnings);
            }
            for &technique in &techniques {
                let context = format!(
                    "{}/{}/{}",
                    variant.label,
                    benchmark.name(),
                    technique.name()
                );
                let pass = technique
                    .pass_config_for(variant.sim_config.widths, variant.sim_config.fu_counts);
                let (plan_source, source_program): (PlanSource, &Program) = match pass {
                    Some(pass) => {
                        let compile_key = CompileKey {
                            program: program_key,
                            pass,
                        };
                        if let std::collections::hash_map::Entry::Vacant(entry) =
                            compiled.entry(compile_key)
                        {
                            compiles_checked += 1;
                            let slot = match CompilerPass::new(pass)
                                .run_verified(&program, Box::new(StandardVerifier))
                            {
                                Ok(result) => {
                                    let diags = sdiq_verify::verify_compiled(&result);
                                    print_diags(&context, &diags, &mut errors, &mut warnings);
                                    Some(result)
                                }
                                Err(err) => {
                                    for d in &err.diagnostics {
                                        errors += 1;
                                        println!(
                                            "{context}: error[{}] after pass `{}`: {}",
                                            d.code, err.pass, d.message
                                        );
                                    }
                                    None
                                }
                            };
                            entry.insert(slot);
                        }
                        match compiled.get(&compile_key).and_then(Option::as_ref) {
                            Some(result) => (PlanSource::Compiled(compile_key), &result.program),
                            None => continue,
                        }
                    }
                    None => (PlanSource::Program(program_key), &program),
                };
                let plan_key = PlanKey {
                    source: plan_source,
                    sim_config: variant.sim_config,
                    max_dynamic_instructions: experiment.max_dynamic_instructions,
                };
                if !seen_plans.insert(plan_key) {
                    continue;
                }
                plans_checked += 1;
                match Executor::new(source_program).run(experiment.max_dynamic_instructions) {
                    Ok(trace) => {
                        let plan = ExecPlan::build(variant.sim_config, source_program, &trace);
                        let diags = sdiq_verify::lint_plan(&plan, source_program, &trace);
                        print_diags(&context, &diags, &mut errors, &mut warnings);
                    }
                    Err(fault) => {
                        errors += 1;
                        println!("{context}: error[EXEC] workload faulted: {fault:?}");
                    }
                }
            }
        }
    }

    println!(
        "lint: {} variant(s) x {} benchmark(s) x {} technique(s): \
         {programs_checked} program(s), {compiles_checked} compile(s), \
         {plans_checked} plan(s) checked - {errors} error(s), {warnings} warning(s)",
        variants.len(),
        benchmarks.len(),
        techniques.len(),
    );
    std::process::exit(if errors > 0 { 1 } else { 0 });
}

/// The argument vector a worker subprocess needs to rebuild this run's
/// matrix (everything that shapes the cell space; the coordinator appends
/// the seed `--load` and the `--shard k/n --save <path>` pair itself).
///
/// `--jobs` is treated as the *run's* parallelism budget: the coordinator
/// divides it (or, unset, the machine's cores) evenly among the workers,
/// so `--shards 4` on a 16-core box runs 4 workers × 4 threads instead of
/// oversubscribing 4 × 16.
fn worker_args(options: &Options, shards: usize) -> Vec<String> {
    let mut args = Vec::new();
    if let Some(scale) = options.scale {
        args.push("--scale".to_string());
        args.push(scale.to_string());
    }
    let jobs_budget = options.jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    });
    args.push("--jobs".to_string());
    args.push((jobs_budget / shards).max(1).to_string());
    for (axis, values) in &options.sweeps {
        args.push("--sweep".to_string());
        let rendered: Vec<String> = values.iter().map(|v| v.to_string()).collect();
        args.push(format!("{axis}={}", rendered.join(",")));
    }
    if let Some(benchmarks) = &options.benchmarks {
        args.push("--benchmarks".to_string());
        let names: Vec<&str> = benchmarks.iter().map(|b| b.name()).collect();
        args.push(names.join(","));
    }
    if let Some(techniques) = &options.techniques {
        args.push("--techniques".to_string());
        let names: Vec<&str> = techniques.iter().map(|t| t.name()).collect();
        args.push(names.join(","));
    }
    if let Some(on) = options.verify {
        args.push(if on { "--verify" } else { "--no-verify" }.to_string());
    }
    // No --load forwarding here: the engine ships the coordinator's whole
    // merged seed (loads + checkpoint) to every worker as one seed file.
    args
}

fn wants(options: &Options, what: &str) -> bool {
    options.selections.contains("all") || options.selections.contains(what)
}

/// The `--progress` cell sink: forwards every completed cell to the
/// wrapped sink (the checkpoint writer, when one is open), then prints
/// the rate-limited progress line — to **stderr**, so piped stdout
/// (figures, saves) stays clean. In remote mode each line also carries
/// the per-worker rates the fleet registry aggregated from heartbeat
/// metrics.
struct ProgressSink<'a> {
    inner: Option<&'a dyn sdiq_core::CellSink>,
    progress: sdiq_obs::Progress,
    fleet: bool,
}

impl sdiq_core::CellSink for ProgressSink<'_> {
    fn cell_complete(&self, key: &str, report: &sdiq_core::RunReport) {
        if let Some(inner) = self.inner {
            inner.cell_complete(key, report);
        }
        if let Some(mut line) = self.progress.record() {
            if self.fleet {
                for (addr, delta) in sdiq_remote::fleet::snapshot() {
                    line.push_str(&format!(
                        " | {addr}: {} done, {:.0} inst/s",
                        delta.cells_done,
                        delta.instructions_per_second()
                    ));
                }
            }
            eprintln!("{line}");
        }
    }
}

fn print_power_figure(title: &str, figure: &experiments::PowerFigure) {
    println!("{title} — dynamic power savings (%)");
    for series in &figure.dynamic {
        print!("{}", series.render());
    }
    println!("{title} — static power savings (%)");
    for series in &figure.static_ {
        print!("{}", series.render());
    }
}

fn main() {
    // `repro serve` (a daemon) and `repro lint` (a checker) are different
    // program shapes; branch before flag parsing so their flags don't
    // collide with the run flags.
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("serve") => serve_main(args),
        Some("lint") => lint_main(args),
        _ => {}
    }
    let options = parse_args();
    if options.trace.is_some() {
        // Recording starts before any artifact is built so the trace
        // covers cache builds, compiles and plan lowering too.
        sdiq_obs::set_tracing(true);
    }
    let mut experiment = Experiment::paper();
    if let Some(scale) = options.scale {
        experiment.scale = scale;
    }
    if let Some(backend) = options.backend {
        experiment.backend = backend;
    }

    let benchmarks = options
        .benchmarks
        .clone()
        .unwrap_or_else(|| Benchmark::ALL.to_vec());
    let techniques = options.techniques.clone().unwrap_or_else(Technique::all);
    // Both the local matrix and (in remote mode) the spec shipped to
    // worker daemons derive from this one description, so the two sides
    // cannot disagree about what the matrix is. `MatrixSpec::matrix` is
    // also the one validator of sweep axes and values (worker daemons
    // apply the identical rules to wire input): built before anything
    // prints, so a bad sweep exits 2 up front whatever was selected.
    let matrix_spec = MatrixSpec {
        scale: experiment.scale,
        sweeps: options.sweeps.clone(),
        benchmarks: benchmarks.iter().map(|b| b.name().to_string()).collect(),
        techniques: techniques.iter().map(|t| t.name().to_string()).collect(),
    };
    let mut matrix = matrix_spec.matrix(&experiment).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    if let Some(jobs) = options.jobs {
        matrix = matrix.jobs(jobs);
    }
    if let Some((index, count)) = options.shard {
        matrix = matrix.shard(index, count);
    }

    // Worker mode computes cells, nothing else: skip the table sections
    // (table2 alone would re-compile every benchmark).
    let tables = options.shard.is_none();
    if tables && wants(&options, "table1") {
        println!("== Table 1: processor configuration ==");
        print!("{}", experiments::table1(&SimConfig::hpca2005()));
        println!();
    }

    if tables && wants(&options, "table2") {
        println!("== Table 2: compilation time (baseline vs with analysis pass) ==");
        for (benchmark, baseline, limited) in experiment.compile_times(&Benchmark::ALL) {
            println!(
                "  {:10} baseline {:>10.3?}   with pass {:>10.3?}   growth {:>5.2}x",
                benchmark.name(),
                baseline,
                limited,
                if baseline.as_secs_f64() > 0.0 {
                    limited.as_secs_f64() / baseline.as_secs_f64()
                } else {
                    f64::NAN
                }
            );
        }
        println!();
    }

    let needs_suite = [
        "figure6",
        "figure7",
        "figure8",
        "figure9",
        "figure10",
        "figure11",
        "figure12",
        "overall",
        "summary",
        "sweep-summary",
        "stats",
        "all",
    ]
    .iter()
    .any(|f| options.selections.contains(*f))
        || options.save.is_some()
        || !options.loads.is_empty()
        || options.checkpoint.is_some()
        || options.shard.is_some()
        || options.shards.is_some()
        || options.workers.is_some()
        || options.listen_workers.is_some();

    let sweep = if needs_suite {
        // Seed from every --load file plus (for crash resume) the
        // checkpoint file itself, if a previous run left one. Later
        // sources win on key collisions; `load_cells_any` accepts save
        // and checkpoint formats interchangeably.
        let mut seed: HashMap<String, sdiq_core::RunReport> = HashMap::new();
        let mut seed_paths: Vec<&String> = options.loads.iter().collect();
        if let Some(path) = &options.checkpoint {
            if std::path::Path::new(path).exists() {
                seed_paths.push(path);
            }
        }
        for path in seed_paths {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("error: reading {path}: {e}");
                std::process::exit(2);
            });
            let cells = persist::load_cells_any(&text).unwrap_or_else(|e| {
                eprintln!("error: parsing {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("loaded {} cells from {path}", cells.len());
            seed.extend(cells);
        }

        // --checkpoint receives every newly computed cell in both modes:
        // streamed per cell in-process, per landed shard in coordinator
        // mode (where workers additionally keep per-shard checkpoints).
        let checkpoint = options.checkpoint.as_ref().map(|path| {
            persist::CheckpointWriter::append_to(path).unwrap_or_else(|e| {
                eprintln!("error: opening checkpoint {path}: {e}");
                std::process::exit(2);
            })
        });
        let checkpoint_sink = checkpoint.as_ref().map(|w| w as &dyn sdiq_core::CellSink);

        // `--progress` wraps whatever sink is already there; the engine
        // sees one sink either way, so persistence is untouched.
        let progress_sink = options.progress.then(|| ProgressSink {
            inner: checkpoint_sink,
            progress: sdiq_obs::Progress::new(matrix.missing_cells(&seed)),
            fleet: options.workers.is_some() || options.listen_workers.is_some(),
        });
        let cell_sink: Option<&dyn sdiq_core::CellSink> = match &progress_sink {
            Some(sink) => Some(sink),
            None => checkpoint_sink,
        };

        let sweep = if options.workers.is_some() || options.listen_workers.is_some() {
            // Remote coordinator mode: distribute the missing cells over
            // `repro serve` daemons — dialed (`--workers`) and/or
            // self-registered (`--listen-workers`/`--expect`); completed
            // cells stream back into the checkpoint sink as they land,
            // and the assembled sweep is bit-identical to a serial run.
            let workers = options.workers.clone().unwrap_or_default();
            let registration =
                options
                    .listen_workers
                    .clone()
                    .map(|listen| sdiq_core::Registration {
                        listen,
                        expect: options.expect.expect("validated with --listen-workers"),
                    });
            let defaults = sdiq_remote::RemoteOptions::default();
            let pool_size = workers.len() + registration.as_ref().map_or(0, |r| r.expect);
            let remote_options = sdiq_remote::RemoteOptions {
                workers,
                registration,
                retry_budget: options
                    .retry_budget
                    .unwrap_or(sdiq_remote::DEFAULT_RETRY_BUDGET),
                connect_timeout: options
                    .connect_timeout
                    .map(std::time::Duration::from_secs_f64)
                    .unwrap_or(defaults.connect_timeout),
                heartbeat_deadline: options
                    .heartbeat_deadline
                    .map(std::time::Duration::from_secs_f64)
                    .unwrap_or(defaults.heartbeat_deadline),
                speculate: !options.no_speculate,
                binary_wire: options.binary_wire.unwrap_or(defaults.binary_wire),
                pipeline_window: options.pipeline_window.unwrap_or(defaults.pipeline_window),
                auth_key: options.auth_key.clone(),
                // Metrics ride the heartbeats whenever anything displays
                // them (--progress per-worker rates, --stats, or a trace
                // whose summary wants per-worker totals); span shipping
                // only when a trace will actually be written.
                observe: sdiq_core::ObserveSpec {
                    metrics: options.progress
                        || options.trace.is_some()
                        || options.selections.contains("stats"),
                    trace: options.trace.is_some(),
                },
            };
            let backend = sdiq_remote::backend(matrix_spec.clone(), remote_options);
            eprintln!(
                "remote coordinator: distributing {} of {} cells across {} worker(s) ...",
                matrix.missing_cells(&seed),
                matrix.cell_count(),
                pool_size
            );
            let sweep = matrix
                .run_on(&backend, &seed, cell_sink)
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                });
            eprintln!("remote coordinator: suite complete");
            sweep
        } else if let Some(shards) = options.shards {
            // Coordinator mode: one worker subprocess per shard, merged
            // into a sweep bit-identical to a serial run.
            let worker_exe = std::env::current_exe().unwrap_or_else(|e| {
                eprintln!("error: cannot locate own binary for workers: {e}");
                std::process::exit(2);
            });
            let scratch_dir =
                std::env::temp_dir().join(format!("sdiq-shards-{}", std::process::id()));
            let backend = Backend::Subprocess(SubprocessSpec {
                worker_exe,
                worker_args: worker_args(&options, shards),
                shards,
                scratch_dir: scratch_dir.clone(),
                worker_checkpoint_stem: options.checkpoint.as_ref().map(std::path::PathBuf::from),
            });
            eprintln!(
                "coordinator: spawning {shards} shard workers over {} cells (scratch {}) ...",
                matrix.cell_count(),
                scratch_dir.display()
            );
            let sweep = matrix
                .run_on(&backend, &seed, cell_sink)
                .unwrap_or_else(|e| {
                    eprintln!("error: {e}");
                    std::process::exit(1);
                });
            let _ = std::fs::remove_dir_all(&scratch_dir);
            sweep
        } else {
            let total = matrix.cell_count();
            // `missing_cells` applies the engine's own seed-integrity check
            // (key present *and* report matches the cell), so this count is
            // exactly what the workers will compute — a corrupted save file
            // shows up here instead of being silently recomputed.
            let missing = matrix.missing_cells(&seed);
            match options.shard {
                Some((index, count)) => eprintln!(
                    "shard {}/{}: running {} of {} owned cells ({} in the full matrix, scale {}) ...",
                    index + 1,
                    count,
                    missing,
                    total,
                    matrix.unsharded_cell_count(),
                    experiment.scale
                ),
                None => eprintln!(
                    "running {} of {} matrix cells ({} benchmarks x {} techniques x {} configs, scale {}) ...",
                    missing,
                    total,
                    benchmarks.len(),
                    techniques.len(),
                    total / (benchmarks.len() * techniques.len()).max(1),
                    experiment.scale
                ),
            }
            let cache = ArtifactCache::new();
            if let Some(on) = options.verify {
                cache.set_verify(on);
            }
            let sweep = matrix.run_with_sink(&cache, &seed, cell_sink);
            eprintln!(
                "engine: {} program builds, {} compiler passes for {} computed cells",
                cache.program_builds(),
                cache.compile_runs(),
                missing
            );
            if let Some(writer) = &checkpoint {
                eprintln!(
                    "checkpointed {missing} newly computed cells to {}",
                    writer.path().display()
                );
            }
            sweep
        };

        if let Some(path) = &options.save {
            let cells = matrix.collect_cells(&sweep);
            std::fs::write(path, persist::save_cells(&cells)).unwrap_or_else(|e| {
                eprintln!("error: writing {path}: {e}");
                std::process::exit(2);
            });
            eprintln!("saved {} cells to {path}", cells.len());
        }
        Some(sweep)
    } else {
        None
    };

    // The trace is written after --save so a crash while exporting can
    // never cost computed cells; the export itself touches no suite
    // state (out-of-band by construction).
    if let Some(path) = &options.trace {
        sdiq_obs::set_tracing(false);
        let events = sdiq_obs::drain();
        sdiq_core::trace::write_chrome_trace(path, &events).unwrap_or_else(|e| {
            eprintln!("error: writing trace {path}: {e}");
            std::process::exit(2);
        });
        eprintln!("wrote {} trace event(s) to {path}", events.len());
    }

    // A --shard run is a worker: its suite is partial, so figures would be
    // misleading — the cells were delivered via --save/--checkpoint.
    if options.shard.is_some() {
        return;
    }
    let suite: Option<&Suite> = sweep.as_ref().map(|s| s.suite(0));

    if let Some(suite) = suite {
        if wants(&options, "figure6") {
            println!("== Figure 6: normalised IPC loss, NOOP technique (%) ==");
            for series in experiments::figure6(suite) {
                print!("{}", series.render());
            }
            println!();
        }
        if wants(&options, "figure7") {
            println!("== Figure 7: issue-queue occupancy reduction, NOOP technique (%) ==");
            print!("{}", experiments::figure7(suite).render());
            println!();
        }
        if wants(&options, "figure8") {
            print_power_figure(
                "== Figure 8: issue-queue power savings, NOOP technique ==",
                &experiments::figure8(suite),
            );
            println!();
        }
        if wants(&options, "figure9") {
            print_power_figure(
                "== Figure 9: integer register-file power savings, NOOP technique ==",
                &experiments::figure9(suite),
            );
            println!();
        }
        if wants(&options, "figure10") {
            println!("== Figure 10: normalised IPC loss, Extension and Improved (%) ==");
            for series in experiments::figure10(suite) {
                print!("{}", series.render());
            }
            println!();
        }
        if wants(&options, "figure11") {
            print_power_figure(
                "== Figure 11: issue-queue power savings, Extension and Improved ==",
                &experiments::figure11(suite),
            );
            println!();
        }
        if wants(&options, "figure12") {
            print_power_figure(
                "== Figure 12: integer register-file power savings, Extension and Improved ==",
                &experiments::figure12(suite),
            );
            println!();
        }
        if wants(&options, "overall") {
            println!("== §6: overall processor dynamic power savings ==");
            for technique in [Technique::Noop, Technique::Extension, Technique::Improved] {
                let overall = experiments::overall_processor_savings(suite, technique, 0.22, 0.11);
                println!(
                    "  {:10} {overall:5.1}% (IQ at 22%, int RF at 11% of processor power)",
                    technique.name()
                );
            }
            println!();
        }
        if wants(&options, "summary") {
            println!("== Suite-average summary (paper headline numbers) ==");
            println!(
                "  {:10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
                "technique", "IPC loss", "IQ occ-", "IQ dyn", "IQ stat", "RF dyn", "RF stat"
            );
            for technique in Technique::evaluated() {
                let s = experiments::summarise(suite, technique);
                println!(
                    "  {:10} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
                    technique.name(),
                    s.ipc_loss_pct,
                    s.iq_occupancy_reduction_pct,
                    s.iq_dynamic_pct,
                    s.iq_static_pct,
                    s.rf_dynamic_pct,
                    s.rf_static_pct
                );
            }
            println!();
        }
    }

    if let Some(sweep) = &sweep {
        if sweep.len() == 1 && options.selections.contains("sweep-summary") {
            eprintln!(
                "warning: --sweep-summary needs a sweep axis (add e.g. --sweep iq=64,48); \
                 nothing to print for a base-only run"
            );
        }
        if sweep.len() > 1 && wants(&options, "sweep-summary") {
            println!("== Sweep sensitivity (Figure-10-style, suite averages per configuration) ==");
            let rows = experiments::sweep_sensitivity(
                sweep,
                &[
                    Technique::Noop,
                    Technique::Extension,
                    Technique::Improved,
                    Technique::Abella,
                ],
            );
            print!("{}", experiments::render_sweep_sensitivity(&rows));
            println!();
        }
    }

    // `--stats` is deliberately *not* part of `--all`: the metrics
    // snapshot is run-shaped (timings, cache traffic), so folding it
    // into the default figure set would make --all output unstable.
    if options.selections.contains("stats") {
        println!("== Metrics snapshot (sdiq-obs registry) ==");
        for sample in sdiq_obs::metrics().snapshot() {
            match &sample.value {
                sdiq_obs::SampleValue::Counter(v) | sdiq_obs::SampleValue::Gauge(v) => {
                    println!("  {:22} {v:>14} {}", sample.name, sample.unit);
                }
                sdiq_obs::SampleValue::Histogram(h) => {
                    println!(
                        "  {:22} {:>14} {} over {} observation(s), mean {:.0}",
                        sample.name,
                        h.sum,
                        sample.unit,
                        h.count,
                        h.mean()
                    );
                }
            }
        }
        let metrics = sdiq_obs::metrics();
        let (hits, misses) = (metrics.cache_hits(), metrics.cache_misses());
        if hits + misses > 0 {
            println!(
                "  {:22} {:>13.1}% ({hits} hit(s), {misses} miss(es))",
                "cache_hit_rate",
                hits as f64 * 100.0 / (hits + misses) as f64
            );
        }
        println!();
    }
}
