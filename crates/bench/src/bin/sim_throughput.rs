//! `sim_throughput` — simulator wall-clock throughput smoke benchmark.
//!
//! ```text
//! sim_throughput [--scale <f64>] [--repeats <n>] [--out <path>] [--quick]
//! ```
//!
//! Runs the gzip-analogue trace through the cycle-level simulator under each
//! resize policy, measures simulated instructions per second of wall-clock
//! time, and emits the result as JSON (stdout and, unless `--out -`, to
//! `BENCH_sim_throughput.json`). Unlike the Criterion bench this binary is
//! cheap enough for CI, so the perf trajectory is tracked on every change:
//! CI fails loudly if the smoke run regresses by an order of magnitude
//! (simulation slower than `MIN_SIM_INSTRUCTIONS_PER_SECOND`).
//!
//! `--quick` shrinks the workload and repeat count for CI smoke runs.

use sdiq_compiler::{CompilerPass, PassConfig};
use sdiq_isa::Executor;
use sdiq_sim::{AdaptiveConfig, ResizePolicy, SimConfig, Simulator};
use sdiq_workloads::Benchmark;
use std::fmt::Write as _;
use std::time::Instant;

/// Floor for the CI smoke check, in simulated instructions per second of
/// wall-clock time. The O(1)-per-event hot path sustains well over 10M
/// instructions/s in release builds on commodity hardware; 500k leaves an
/// order of magnitude of headroom for slow CI machines while still catching
/// accidental reintroduction of O(capacity) per-cycle scans.
const MIN_SIM_INSTRUCTIONS_PER_SECOND: f64 = 500_000.0;

struct Options {
    scale: f64,
    repeats: usize,
    out: Option<String>,
    quick: bool,
}

fn parse_args() -> Options {
    let mut options = Options {
        scale: 0.2,
        repeats: 3,
        out: Some("BENCH_sim_throughput.json".to_string()),
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                options.scale = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --scale needs a float value");
                    std::process::exit(2);
                });
            }
            "--repeats" => {
                options.repeats = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --repeats needs an integer value");
                    std::process::exit(2);
                });
            }
            "--out" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("error: --out needs a path (or - for stdout only)");
                    std::process::exit(2);
                });
                options.out = if path == "-" { None } else { Some(path) };
            }
            "--quick" => options.quick = true,
            "--help" | "-h" => {
                println!(
                    "sim_throughput [--scale <f64>] [--repeats <n>] [--out <path>|-] [--quick]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if options.quick {
        options.scale = options.scale.min(0.05);
        options.repeats = 1;
    }
    options.repeats = options.repeats.max(1);
    options
}

fn main() {
    let options = parse_args();
    let program = Benchmark::Gzip.build_scaled(options.scale);
    let trace = Executor::new(&program)
        .run(2_000_000)
        .expect("gzip analogue executes");
    // The software-hint row must actually exercise the hint hot path
    // (`apply_hint` / region accounting), so it runs the compiler-annotated
    // program rather than the raw one.
    let hinted_program = CompilerPass::new(PassConfig::noop_insertion())
        .run(&program)
        .program;
    let hinted_trace = Executor::new(&hinted_program)
        .run(2_000_000)
        .expect("hinted gzip analogue executes");

    let mut policies_json = String::new();
    let mut slowest_rate = f64::INFINITY;
    for (name, policy, program, trace) in [
        ("fixed", ResizePolicy::Fixed, &program, &trace),
        (
            "software_hint",
            ResizePolicy::SoftwareHint,
            &hinted_program,
            &hinted_trace,
        ),
        (
            "adaptive",
            ResizePolicy::Adaptive(AdaptiveConfig::iqrob64()),
            &program,
            &trace,
        ),
    ] {
        let instructions = trace.len() as f64;
        let mut best = f64::INFINITY;
        let mut cycles = 0u64;
        let mut committed = 0u64;
        for _ in 0..options.repeats {
            let start = Instant::now();
            let result = Simulator::new(SimConfig::hpca2005(), program, trace, policy)
                .run()
                .expect("simulation completes");
            let elapsed = start.elapsed().as_secs_f64();
            best = best.min(elapsed);
            cycles = result.stats.cycles;
            committed = result.stats.committed + result.stats.committed_hints;
        }
        let rate = instructions / best;
        slowest_rate = slowest_rate.min(rate);
        eprintln!(
            "{name:>14}: {rate:>12.0} sim-instructions/s  ({best:.3}s best of {}, {cycles} cycles)",
            options.repeats
        );
        if !policies_json.is_empty() {
            policies_json.push(',');
        }
        write!(
            policies_json,
            "\n    \"{name}\": {{\"wall_seconds_best\": {best:.6}, \
             \"sim_instructions_per_second\": {rate:.0}, \
             \"cycles\": {cycles}, \"instructions\": {committed}}}"
        )
        .unwrap();
    }

    let json = format!(
        "{{\n  \"bench\": \"simulator_throughput\",\n  \"workload\": \"gzip-analogue\",\n  \
         \"scale\": {},\n  \"repeats\": {},\n  \"trace_instructions\": {},\n  \"policies\": {{{}\n  }}\n}}\n",
        options.scale,
        options.repeats,
        trace.len(),
        policies_json
    );
    print!("{json}");
    if let Some(path) = &options.out {
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    if slowest_rate < MIN_SIM_INSTRUCTIONS_PER_SECOND {
        eprintln!(
            "FAIL: slowest policy simulates {slowest_rate:.0} instructions/s, \
             below the {MIN_SIM_INSTRUCTIONS_PER_SECOND:.0}/s floor"
        );
        std::process::exit(1);
    }
}
