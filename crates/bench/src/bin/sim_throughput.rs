//! `sim_throughput` — simulator wall-clock throughput smoke benchmark.
//!
//! ```text
//! sim_throughput [--scale <f64>] [--repeats <n>] [--out <path>] [--quick]
//! ```
//!
//! Runs the gzip-analogue trace through the cycle-level simulator under each
//! resize policy, measures simulated instructions per second of wall-clock
//! time, and emits the result as JSON (stdout and, unless `--out -`, to
//! `BENCH_sim_throughput.json`). The headline per-policy rows run the
//! compiled `ExecPlan` backend (the production shape: the plan is lowered
//! once outside the timed region, exactly as the engine's `ArtifactCache`
//! amortises it across sweep variants and policies); a `policies_interpreted`
//! block re-times the naive interpreter as the reference, and the two
//! backends' `SimResult`s are asserted bit-identical before any number is
//! reported. Unlike the Criterion bench this binary is cheap enough for CI,
//! so the perf trajectory is tracked on every change: CI fails loudly if the
//! smoke run regresses by an order of magnitude (below the per-backend
//! floors).
//!
//! When rewriting an existing output file this binary first parses it and
//! carries the hand-curated `history` block (per-PR before/after records)
//! over into the new file — regenerating the artifact no longer loses it.
//!
//! `--quick` shrinks the workload and repeat count for CI smoke runs.

use sdiq_compiler::{CompilerPass, PassConfig};
use sdiq_core::persist::{self, Json};
use sdiq_core::{
    ArtifactCache, Backend, Experiment, Matrix, MatrixSpec, SubprocessSpec, Suite, Technique,
};
use sdiq_isa::Executor;
use sdiq_sim::{
    AdaptiveConfig, ExecPlan, PlanSimulator, ResizePolicy, SimConfig, SimResult, Simulator,
};
use sdiq_workloads::Benchmark;
use std::collections::HashMap;
use std::io::BufRead;
use std::time::Instant;

/// Floor for the compiled-backend headline rows, in simulated instructions
/// per second of wall-clock time. The compiled `ExecPlan` path sustains
/// 15–19M instructions/s in release builds on commodity hardware — roughly
/// 2× the interpreter on the same machine; 3M keeps ~5× headroom for slow
/// CI machines while still catching a silent fallback to the interpreter
/// (which would land near the interpreted rate, not just under this floor)
/// or an accidental reintroduction of per-cycle allocation into the plan
/// loop.
const MIN_COMPILED_INSTRUCTIONS_PER_SECOND: f64 = 3_000_000.0;

/// Floor for the interpreted reference rows. The O(1)-per-event interpreter
/// hot path sustains well over 10M instructions/s in release builds; 500k
/// catches accidental reintroduction of O(capacity) per-cycle scans.
const MIN_INTERPRETED_INSTRUCTIONS_PER_SECOND: f64 = 500_000.0;

/// Ceiling for the binary-codec remote row's wall clock, as a multiple of
/// the in-process engine's. With `bin1` frames, pipelined batches and the
/// interruptible heartbeat teardown, two localhost daemons land around
/// 1.3–1.5× the engine at the committed `--scale 1.0` artifact; 2.5
/// leaves headroom for loaded CI machines while still failing loudly on
/// a regression to the old per-batch stop-and-wait shape (3.6× and up).
const MAX_REMOTE_WALL_VS_ENGINE: f64 = 2.5;

/// Absolute grace added on top of the ratio ceiling, pricing the fixed
/// per-run costs (two TCP dials, codec negotiation, per-daemon artifact
/// warm-up) that do not shrink with the workload. Without it the
/// `--quick` smoke — engine wall under 10 ms — would flake on millisecond
/// noise; with it, even the quick run still catches the 0.3 s fixed
/// teardown stall this assertion exists to keep out.
const REMOTE_WALL_GRACE_SECONDS: f64 = 0.05;

/// Ceiling for the verified matrix row's wall clock, as a multiple of the
/// verify-off engine's. `--verify` is off by default in release builds,
/// and when forced on the static suite runs **once per cached artifact**
/// (a handful of compiles and plans for the whole matrix) — so its cost
/// must stay within the 2% the acceptance criteria allow.
const MAX_VERIFIED_WALL_VS_ENGINE: f64 = 1.02;

/// Absolute grace on top of the verified ratio ceiling, pricing the fixed
/// once-per-artifact checks (structural + envelope verification per
/// compile, one linear plan lint per plan key) that do not shrink with
/// the simulated instruction count. The `--quick` smoke's engine wall is
/// tens of milliseconds, where that fixed cost would otherwise dominate
/// the ratio; at the committed `--scale 1.0` artifact the 2% ratio is
/// the binding constraint.
const VERIFIED_WALL_GRACE_SECONDS: f64 = 0.25;

/// Ceiling for the traced matrix row's wall clock, as a multiple of the
/// tracing-off engine's. `sdiq-obs` spans are a thread-local push onto a
/// pre-allocated buffer and metrics are relaxed atomics, so with tracing
/// forced on the engine matrix must stay within 3% of the untraced wall —
/// any more means instrumentation leaked onto a hot path (per-cycle spans,
/// a lock on the record path) rather than the per-cell seams it is meant
/// to ride.
const MAX_TRACED_WALL_VS_ENGINE: f64 = 1.03;

/// Absolute grace on top of the traced ratio ceiling, pricing the fixed
/// per-run costs (first-touch buffer allocation per pool thread, the
/// final drain) that do not shrink with the workload. The `--quick`
/// smoke's engine wall is tens of milliseconds, where millisecond noise
/// would otherwise dominate the ratio; at the committed `--scale 1.0`
/// artifact the 3% ratio is the binding constraint.
const TRACED_WALL_GRACE_SECONDS: f64 = 0.1;

struct Options {
    scale: f64,
    repeats: usize,
    out: Option<String>,
    quick: bool,
}

fn parse_args() -> Options {
    let mut options = Options {
        scale: 0.2,
        repeats: 3,
        out: Some("BENCH_sim_throughput.json".to_string()),
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                options.scale = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --scale needs a float value");
                    std::process::exit(2);
                });
            }
            "--repeats" => {
                options.repeats = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --repeats needs an integer value");
                    std::process::exit(2);
                });
            }
            "--out" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("error: --out needs a path (or - for stdout only)");
                    std::process::exit(2);
                });
                options.out = if path == "-" { None } else { Some(path) };
            }
            "--quick" => options.quick = true,
            "--help" | "-h" => {
                println!(
                    "sim_throughput [--scale <f64>] [--repeats <n>] [--out <path>|-] [--quick]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if options.quick {
        options.scale = options.scale.min(0.05);
        options.repeats = 1;
    }
    options.repeats = options.repeats.max(1);
    options
}

/// The pre-engine matrix strategy, kept here as the measured baseline: one
/// thread per benchmark, each column rebuilding its program and re-running
/// the compiler pass for every technique.
fn run_matrix_per_benchmark_threads(
    experiment: &Experiment,
    benchmarks: &[Benchmark],
    techniques: &[Technique],
) -> Suite {
    let mut suite = Suite::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = benchmarks
            .iter()
            .map(|&benchmark| {
                scope.spawn(move || {
                    techniques
                        .iter()
                        .map(|&technique| (benchmark, experiment.run(benchmark, technique)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (benchmark, report) in handle.join().expect("benchmark worker panicked") {
                suite.insert(benchmark, report);
            }
        }
    });
    suite
}

/// Starts one `repro serve` daemon on an ephemeral localhost port and
/// blocks until it announces its bound address (the machine-readable
/// `LISTENING <addr>` first stdout line).
fn spawn_serve_daemon(exe: &std::path::Path, jobs: usize) -> Option<(std::process::Child, String)> {
    let mut child = std::process::Command::new(exe)
        .args(["serve", "--listen", "127.0.0.1:0", "--jobs"])
        .arg(jobs.to_string())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .ok()?;
    let stdout = child.stdout.take()?;
    let mut line = String::new();
    let announced = std::io::BufReader::new(stdout).read_line(&mut line).is_ok();
    match line.trim().strip_prefix("LISTENING ") {
        Some(addr) if announced => Some((child, addr.to_string())),
        _ => {
            let _ = child.kill();
            let _ = child.wait();
            None
        }
    }
}

/// One measured per-policy row: best wall seconds over the repeats plus the
/// run's (bit-checked) result.
struct TimedRow {
    wall_seconds_best: f64,
    result: SimResult,
}

fn time_best<F: FnMut() -> SimResult>(repeats: usize, mut run: F) -> TimedRow {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let this = run();
        best = best.min(start.elapsed().as_secs_f64());
        result = Some(this);
    }
    TimedRow {
        wall_seconds_best: best,
        result: result.expect("repeats >= 1"),
    }
}

fn policy_row_json(row: &TimedRow, instructions: f64) -> Json {
    Json::Obj(vec![
        (
            "wall_seconds_best".to_string(),
            Json::Num(format!("{:.6}", row.wall_seconds_best)),
        ),
        (
            "sim_instructions_per_second".to_string(),
            Json::Num(format!("{:.0}", instructions / row.wall_seconds_best)),
        ),
        ("cycles".to_string(), Json::of_u64(row.result.stats.cycles)),
        (
            "instructions".to_string(),
            Json::of_u64(row.result.stats.committed + row.result.stats.committed_hints),
        ),
    ])
}

/// Renders `json` with two-space indentation (the artifact is a committed,
/// hand-read file; the compact `Json::render` is for wire frames).
fn render_pretty(json: &Json, depth: usize, out: &mut String) {
    match json {
        Json::Obj(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (key, value)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(depth + 1));
                Json::Str(key.clone()).render(out);
                out.push_str(": ");
                render_pretty(value, depth + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(depth));
            out.push('}');
        }
        Json::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&"  ".repeat(depth + 1));
                render_pretty(item, depth + 1, out);
            }
            out.push('\n');
            out.push_str(&"  ".repeat(depth));
            out.push(']');
        }
        other => other.render(out),
    }
}

fn main() {
    let options = parse_args();
    let program = Benchmark::Gzip.build_scaled(options.scale);
    let trace = Executor::new(&program)
        .run(2_000_000)
        .expect("gzip analogue executes");
    // The software-hint row must actually exercise the hint hot path
    // (`apply_hint` / region accounting), so it runs the compiler-annotated
    // program rather than the raw one.
    let hinted_program = CompilerPass::new(PassConfig::noop_insertion())
        .run(&program)
        .program;
    let hinted_trace = Executor::new(&hinted_program)
        .run(2_000_000)
        .expect("hinted gzip analogue executes");

    // Lower the two execution plans once, outside every timed region: this
    // is the production shape — the engine's ArtifactCache builds one plan
    // per (program, SimConfig) and shares it across every policy, sweep
    // variant and batch that needs it (one of the two plans below serves
    // both the fixed and the adaptive row).
    let sim_config = SimConfig::hpca2005();
    let lower_start = Instant::now();
    let plan = ExecPlan::build(sim_config, &program, &trace);
    let lower_raw = lower_start.elapsed().as_secs_f64();
    let lower_start = Instant::now();
    let hinted_plan = ExecPlan::build(sim_config, &hinted_program, &hinted_trace);
    let lower_hinted = lower_start.elapsed().as_secs_f64();

    let mut compiled_rows: Vec<(String, Json)> = Vec::new();
    let mut interpreted_rows: Vec<(String, Json)> = Vec::new();
    let mut slowest_compiled = f64::INFINITY;
    let mut slowest_interpreted = f64::INFINITY;
    for (name, policy, program, trace, plan) in [
        ("fixed", ResizePolicy::Fixed, &program, &trace, &plan),
        (
            "software_hint",
            ResizePolicy::SoftwareHint,
            &hinted_program,
            &hinted_trace,
            &hinted_plan,
        ),
        (
            "adaptive",
            ResizePolicy::Adaptive(AdaptiveConfig::iqrob64()),
            &program,
            &trace,
            &plan,
        ),
    ] {
        let instructions = trace.len() as f64;
        let interpreted = time_best(options.repeats, || {
            Simulator::new(sim_config, program, trace, policy)
                .run()
                .expect("simulation completes")
        });
        let compiled = time_best(options.repeats, || {
            PlanSimulator::new(plan, policy)
                .run()
                .expect("compiled simulation completes")
        });
        // The compiled backend is only a valid headline if it is the same
        // simulator: every activity counter and the adaptive resize count
        // must match the interpreter bit for bit.
        assert_eq!(
            compiled.result, interpreted.result,
            "{name}: compiled backend must be bit-identical to the interpreter"
        );
        let compiled_rate = instructions / compiled.wall_seconds_best;
        let interpreted_rate = instructions / interpreted.wall_seconds_best;
        slowest_compiled = slowest_compiled.min(compiled_rate);
        slowest_interpreted = slowest_interpreted.min(interpreted_rate);
        eprintln!(
            "{name:>14}: {compiled_rate:>12.0} sim-instructions/s compiled  \
             ({:.3}s best of {}, {} cycles, {:.2}x of interpreted {interpreted_rate:.0}/s)",
            compiled.wall_seconds_best,
            options.repeats,
            compiled.result.stats.cycles,
            interpreted.wall_seconds_best / compiled.wall_seconds_best,
        );
        compiled_rows.push((name.to_string(), policy_row_json(&compiled, instructions)));
        interpreted_rows.push((
            name.to_string(),
            policy_row_json(&interpreted, instructions),
        ));
    }

    // Matrix throughput: a reduced (benchmark × technique) matrix run under
    // the old one-thread-per-benchmark strategy (which rebuilds the program
    // and re-runs the compiler pass for every cell) and under the job
    // engine with its shared artifact cache. The engine must produce the
    // same activity counters; the wall-clock difference is what the cache
    // and the balanced work queue buy.
    let matrix_benchmarks = [
        Benchmark::Gzip,
        Benchmark::Mcf,
        Benchmark::Vortex,
        Benchmark::Gcc,
    ];
    // Every registered technique — the six paper techniques plus the
    // registry-landed way-memo and lowen-isa — so the matrix row tracks
    // the cost of the full default technique axis.
    let matrix_techniques = Technique::all();
    let matrix_experiment = Experiment {
        scale: options.scale,
        ..Experiment::paper()
    };

    let legacy_start = Instant::now();
    let legacy_suite = run_matrix_per_benchmark_threads(
        &matrix_experiment,
        &matrix_benchmarks,
        &matrix_techniques,
    );
    let legacy_wall = legacy_start.elapsed().as_secs_f64();

    let engine_start = Instant::now();
    let engine_suite = Matrix::new(&matrix_experiment)
        .benchmarks(&matrix_benchmarks)
        .techniques(&matrix_techniques)
        .run()
        .into_suite();
    let engine_wall = engine_start.elapsed().as_secs_f64();

    for (&(benchmark, technique), engine_report) in engine_suite.iter() {
        let legacy_report = legacy_suite
            .get(benchmark, technique)
            .expect("legacy matrix filled every cell");
        assert_eq!(
            engine_report.stats, legacy_report.stats,
            "{benchmark}/{technique}: engine activity counters must match the legacy runner"
        );
    }

    let cells = matrix_benchmarks.len() * matrix_techniques.len();
    let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = legacy_wall / engine_wall.max(1e-9);
    eprintln!(
        "{:>14}: {cells} cells  legacy {legacy_wall:.3}s  engine {engine_wall:.3}s  ({speedup:.2}x, {jobs} jobs)",
        "matrix"
    );

    // Verified row: the same engine matrix on a fresh artifact cache with
    // the full static verifier forced on (sdiq-verify's structural,
    // annotation-envelope and plan-lint suites, once per artifact). The
    // suite must stay bit-identical — verification observes artifacts, it
    // never alters them — and the wall-clock ratio is the release-mode
    // `--verify` overhead the acceptance criteria bound at 2%.
    let verified_cache = ArtifactCache::new();
    verified_cache.set_verify(true);
    let verified_start = Instant::now();
    let verified_suite = Matrix::new(&matrix_experiment)
        .benchmarks(&matrix_benchmarks)
        .techniques(&matrix_techniques)
        .run_with(&verified_cache, &HashMap::new())
        .into_suite();
    let verified_wall = verified_start.elapsed().as_secs_f64();
    assert_eq!(
        verified_suite, engine_suite,
        "verified matrix suite must be bit-identical to the unverified engine"
    );
    let verified_vs_engine = verified_wall / engine_wall.max(1e-9);
    eprintln!(
        "{:>14}: {cells} cells  verify-on engine {verified_wall:.3}s  \
         ({verified_vs_engine:.2}x of verify-off wall, bit-identical)",
        "verified"
    );

    // Traced row: the engine matrix once more on a fresh artifact cache
    // with `sdiq-obs` tracing forced on — every per-cell span, cache
    // hit/miss instant and checkpoint marker recorded, then drained and
    // discarded. The suite must stay bit-identical (observability is
    // strictly out-of-band; a traced run's persisted bytes never differ
    // from an untraced one's) and the wall-clock ratio is the tracing-on
    // overhead the acceptance criteria bound at 3% + fixed grace.
    let traced_cache = ArtifactCache::new();
    sdiq_obs::set_tracing(true);
    let traced_start = Instant::now();
    let traced_suite = Matrix::new(&matrix_experiment)
        .benchmarks(&matrix_benchmarks)
        .techniques(&matrix_techniques)
        .run_with(&traced_cache, &HashMap::new())
        .into_suite();
    let traced_wall = traced_start.elapsed().as_secs_f64();
    sdiq_obs::set_tracing(false);
    let traced_events = sdiq_obs::drain().len();
    assert_eq!(
        traced_suite, engine_suite,
        "traced matrix suite must be bit-identical to the untraced engine"
    );
    assert!(
        traced_events > 0,
        "tracing was on for the whole matrix yet drained no events"
    );
    let traced_vs_engine = traced_wall / engine_wall.max(1e-9);
    eprintln!(
        "{:>14}: {cells} cells  tracing-on engine {traced_wall:.3}s  \
         ({traced_vs_engine:.2}x of tracing-off wall, {traced_events} events, bit-identical)",
        "traced"
    );

    // Sharded-backend row: the same reduced matrix through the subprocess
    // coordinator (one `repro` worker per shard, partial suites merged).
    // Workers pay process startup and cannot share the in-process artifact
    // cache, so this row prices the multi-process substrate against the
    // in-process engine — the counters must still be bit-identical.
    const SHARDS: usize = 2;
    let repro_exe = std::env::current_exe().ok().and_then(|own| {
        let exe = own
            .parent()?
            .join(format!("repro{}", std::env::consts::EXE_SUFFIX));
        exe.exists().then_some(exe)
    });
    let sharded_json = match repro_exe {
        Some(worker_exe) => {
            let benchmark_names: Vec<&str> = matrix_benchmarks.iter().map(|b| b.name()).collect();
            let technique_names: Vec<&str> = matrix_techniques.iter().map(|t| t.name()).collect();
            let scratch_dir =
                std::env::temp_dir().join(format!("sdiq-throughput-shards-{}", std::process::id()));
            let backend = Backend::Subprocess(SubprocessSpec {
                worker_exe,
                worker_args: vec![
                    "--scale".to_string(),
                    options.scale.to_string(),
                    "--benchmarks".to_string(),
                    benchmark_names.join(","),
                    "--techniques".to_string(),
                    technique_names.join(","),
                    // Split the machine between the workers instead of
                    // oversubscribing every core in each of them.
                    "--jobs".to_string(),
                    (jobs / SHARDS).max(1).to_string(),
                ],
                shards: SHARDS,
                scratch_dir: scratch_dir.clone(),
                worker_checkpoint_stem: None,
            });
            let sharded_start = Instant::now();
            let sharded = Matrix::new(&matrix_experiment)
                .benchmarks(&matrix_benchmarks)
                .techniques(&matrix_techniques)
                .run_on(&backend, &HashMap::new(), None);
            let sharded_wall = sharded_start.elapsed().as_secs_f64();
            let _ = std::fs::remove_dir_all(&scratch_dir);
            match sharded {
                Ok(sweep) => {
                    let sharded_suite = sweep.into_suite();
                    assert_eq!(
                        sharded_suite, engine_suite,
                        "merged sharded suite must be bit-identical to the in-process engine"
                    );
                    let vs_engine = sharded_wall / engine_wall.max(1e-9);
                    eprintln!(
                        "{:>14}: {cells} cells  {SHARDS} shard workers {sharded_wall:.3}s  \
                         ({vs_engine:.2}x of engine wall, bit-identical)",
                        "sharded"
                    );
                    Json::Obj(vec![
                        ("shards".to_string(), Json::of_usize(SHARDS)),
                        (
                            "wall_seconds".to_string(),
                            Json::Num(format!("{sharded_wall:.6}")),
                        ),
                        (
                            "wall_vs_engine".to_string(),
                            Json::Num(format!("{vs_engine:.3}")),
                        ),
                    ])
                }
                Err(error) => {
                    eprintln!("{:>14}: skipped ({error})", "sharded");
                    Json::Null
                }
            }
        }
        None => {
            eprintln!(
                "{:>14}: skipped (repro worker binary not built next to sim_throughput)",
                "sharded"
            );
            Json::Null
        }
    };

    // Remote rows: the same reduced matrix once more, now through two
    // localhost `repro serve` daemons driven by the TCP scheduler
    // (sdiq-remote) — once with the negotiated `bin1` binary codec and
    // pipelined batches (the fleet defaults), once pinned to JSON frames
    // for the side-by-side. On one box this prices the networked
    // substrate — frame codec, per-cell streaming, pipelined scheduling,
    // seeded reassembly — against the in-process engine; across boxes it
    // is the substrate that scales. Counters asserted bit-identical yet
    // again before any timing is reported.
    let repro_exe = std::env::current_exe().ok().and_then(|own| {
        let exe = own
            .parent()?
            .join(format!("repro{}", std::env::consts::EXE_SUFFIX));
        exe.exists().then_some(exe)
    });
    let mut remote_rows = [Json::Null, Json::Null];
    let mut remote_binary_wall = None;
    match repro_exe {
        Some(exe) => {
            const WORKERS: usize = 2;
            let worker_jobs = (jobs / WORKERS).max(1);
            let spec = MatrixSpec {
                scale: options.scale,
                sweeps: Vec::new(),
                benchmarks: matrix_benchmarks
                    .iter()
                    .map(|b| b.name().to_string())
                    .collect(),
                techniques: matrix_techniques
                    .iter()
                    .map(|t| t.name().to_string())
                    .collect(),
            };
            // Fresh daemons per codec row: a daemon's artifact cache
            // survives coordinator disconnects, so reusing the pool
            // would hand the second row pre-warmed workers and skew the
            // side-by-side.
            for (row, (label, codec_name, binary_wire)) in remote_rows
                .iter_mut()
                .zip([("remote", "bin1", true), ("remote_json", "json", false)])
            {
                let mut daemons: Vec<(std::process::Child, String)> = Vec::new();
                for _ in 0..WORKERS {
                    match spawn_serve_daemon(&exe, worker_jobs) {
                        Some(daemon) => daemons.push(daemon),
                        None => break,
                    }
                }
                if daemons.len() < WORKERS {
                    eprintln!("{label:>14}: skipped (could not start serve daemons)");
                } else {
                    let addrs: Vec<String> = daemons.iter().map(|(_, addr)| addr.clone()).collect();
                    let backend = sdiq_remote::backend(
                        spec.clone(),
                        sdiq_remote::RemoteOptions {
                            workers: addrs,
                            binary_wire,
                            ..sdiq_remote::RemoteOptions::default()
                        },
                    );
                    let remote_start = Instant::now();
                    let remote = spec
                        .matrix(&matrix_experiment)
                        .expect("spec mirrors the reduced matrix")
                        .run_on(&backend, &HashMap::new(), None);
                    let remote_wall = remote_start.elapsed().as_secs_f64();
                    match remote {
                        Ok(sweep) => {
                            let remote_suite = sweep.into_suite();
                            assert_eq!(
                                remote_suite, engine_suite,
                                "{label} suite must be bit-identical to the in-process engine"
                            );
                            let vs_engine = remote_wall / engine_wall.max(1e-9);
                            eprintln!(
                                "{label:>14}: {cells} cells  {WORKERS} localhost workers \
                                 {remote_wall:.3}s  ({vs_engine:.2}x of engine wall, \
                                 {codec_name} frames, bit-identical)"
                            );
                            if binary_wire {
                                remote_binary_wall = Some(remote_wall);
                            }
                            *row = Json::Obj(vec![
                                ("workers".to_string(), Json::of_usize(WORKERS)),
                                ("codec".to_string(), Json::Str(codec_name.to_string())),
                                (
                                    "wall_seconds".to_string(),
                                    Json::Num(format!("{remote_wall:.6}")),
                                ),
                                (
                                    "wall_vs_engine".to_string(),
                                    Json::Num(format!("{vs_engine:.3}")),
                                ),
                            ]);
                        }
                        Err(error) => {
                            eprintln!("{label:>14}: skipped ({error})");
                        }
                    }
                }
                for (mut child, _) in daemons {
                    let _ = child.kill();
                    let _ = child.wait();
                }
            }
        }
        None => {
            eprintln!(
                "{:>14}: skipped (repro worker binary not built next to sim_throughput)",
                "remote"
            );
        }
    };
    let [remote_json, remote_json_codec] = remote_rows;

    // Read-merge-write: re-attach the hand-curated `history` block from the
    // existing output file (if any) so regenerating the artifact never
    // drops the per-PR before/after records.
    let history = options
        .out
        .as_deref()
        .and_then(|path| std::fs::read_to_string(path).ok())
        .and_then(|text| persist::parse(&text).ok())
        .and_then(|old| old.get("history").ok().cloned())
        .unwrap_or(Json::Obj(Vec::new()));

    let note = "Wall-clock throughput of the cycle-level simulator (per resize policy, \
                gzip-analogue trace, best of N repeats; software_hint runs the \
                compiler-annotated program). The headline 'policies' rows run the \
                compiled ExecPlan backend with the plan lowered outside the timed \
                region (the production shape: the engine's ArtifactCache builds one \
                plan per (program, SimConfig) and shares it across policies, sweep \
                variants and batches; 'plan_lowering' prices that one-time cost); \
                'policies_interpreted' re-times the naive interpreter, and both \
                backends' results are asserted bit-identical before timing is \
                reported. Then a matrix row: a reduced benchmark x technique matrix \
                under the legacy one-thread-per-benchmark runner vs the work-queue \
                engine with the shared artifact cache (activity counters asserted \
                bit-identical before timing is reported), plus a verified row \
                re-running the engine matrix with the sdiq-verify static suite \
                forced on (once per artifact; suite asserted bit-identical and the \
                wall bounded at 2% + fixed grace over the verify-off engine — the \
                release-mode --verify overhead), and a traced row re-running it \
                once more with sdiq-obs tracing forced on (events drained and \
                discarded; suite asserted bit-identical — observability is \
                out-of-band — and the wall bounded at 3% + fixed grace over the \
                tracing-off engine), and a sharded row running \
                the same matrix through the subprocess coordinator (one repro worker \
                per shard, merged suites asserted bit-identical to the engine's), \
                and two remote rows running it through two localhost repro serve \
                daemons driven by the sdiq-remote TCP scheduler — 'remote' with the \
                negotiated bin1 binary frames and pipelined batches (the fleet \
                defaults), 'remote_json' pinned to JSON frames for the side-by-side \
                (suites asserted bit-identical again; on one box this prices the \
                networked substrate, across boxes it is the substrate that scales). \
                Regenerate with: cargo run --release -p sdiq-bench --bin sim_throughput \
                -- --scale 1.0 --repeats 7. The hand-curated 'history' block \
                (per-PR before/after records) is parsed from the existing file and \
                carried over automatically.";
    let scale_json = if options.scale.fract() == 0.0 {
        Json::of_u64(options.scale as u64)
    } else {
        Json::Num(format!("{:?}", options.scale))
    };
    let doc = Json::Obj(vec![
        (
            "bench".to_string(),
            Json::Str("simulator_throughput".to_string()),
        ),
        (
            "workload".to_string(),
            Json::Str("gzip-analogue".to_string()),
        ),
        ("note".to_string(), Json::Str(note.to_string())),
        ("scale".to_string(), scale_json),
        ("repeats".to_string(), Json::of_usize(options.repeats)),
        (
            "trace_instructions".to_string(),
            Json::of_usize(trace.len()),
        ),
        ("backend".to_string(), Json::Str("compiled".to_string())),
        (
            "plan_lowering".to_string(),
            Json::Obj(vec![
                (
                    "raw_seconds".to_string(),
                    Json::Num(format!("{lower_raw:.6}")),
                ),
                (
                    "hinted_seconds".to_string(),
                    Json::Num(format!("{lower_hinted:.6}")),
                ),
            ]),
        ),
        ("policies".to_string(), Json::Obj(compiled_rows)),
        (
            "policies_interpreted".to_string(),
            Json::Obj(interpreted_rows),
        ),
        (
            "matrix".to_string(),
            Json::Obj(vec![
                (
                    "benchmarks".to_string(),
                    Json::of_usize(matrix_benchmarks.len()),
                ),
                (
                    "techniques".to_string(),
                    Json::of_usize(matrix_techniques.len()),
                ),
                ("cells".to_string(), Json::of_usize(cells)),
                ("jobs".to_string(), Json::of_usize(jobs)),
                (
                    "legacy_wall_seconds".to_string(),
                    Json::Num(format!("{legacy_wall:.6}")),
                ),
                (
                    "engine_wall_seconds".to_string(),
                    Json::Num(format!("{engine_wall:.6}")),
                ),
                ("speedup".to_string(), Json::Num(format!("{speedup:.3}"))),
                (
                    "verified".to_string(),
                    Json::Obj(vec![
                        (
                            "wall_seconds".to_string(),
                            Json::Num(format!("{verified_wall:.6}")),
                        ),
                        (
                            "wall_vs_engine".to_string(),
                            Json::Num(format!("{verified_vs_engine:.3}")),
                        ),
                    ]),
                ),
                (
                    "traced".to_string(),
                    Json::Obj(vec![
                        (
                            "wall_seconds".to_string(),
                            Json::Num(format!("{traced_wall:.6}")),
                        ),
                        (
                            "wall_vs_engine".to_string(),
                            Json::Num(format!("{traced_vs_engine:.3}")),
                        ),
                        ("trace_events".to_string(), Json::of_usize(traced_events)),
                    ]),
                ),
                ("sharded".to_string(), sharded_json),
                ("remote".to_string(), remote_json),
                ("remote_json".to_string(), remote_json_codec),
            ]),
        ),
        ("history".to_string(), history),
    ]);
    let mut json = String::new();
    render_pretty(&doc, 0, &mut json);
    json.push('\n');
    print!("{json}");
    if let Some(path) = &options.out {
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    let mut failed = false;
    if slowest_compiled < MIN_COMPILED_INSTRUCTIONS_PER_SECOND {
        eprintln!(
            "FAIL: slowest compiled policy simulates {slowest_compiled:.0} instructions/s, \
             below the {MIN_COMPILED_INSTRUCTIONS_PER_SECOND:.0}/s floor"
        );
        failed = true;
    }
    if slowest_interpreted < MIN_INTERPRETED_INSTRUCTIONS_PER_SECOND {
        eprintln!(
            "FAIL: slowest interpreted policy simulates {slowest_interpreted:.0} instructions/s, \
             below the {MIN_INTERPRETED_INSTRUCTIONS_PER_SECOND:.0}/s floor"
        );
        failed = true;
    }
    {
        let ceiling = engine_wall * MAX_VERIFIED_WALL_VS_ENGINE + VERIFIED_WALL_GRACE_SECONDS;
        if verified_wall > ceiling {
            eprintln!(
                "FAIL: verify-on matrix took {verified_wall:.3}s against a verify-off engine \
                 wall of {engine_wall:.3}s — above the {MAX_VERIFIED_WALL_VS_ENGINE}x + \
                 {VERIFIED_WALL_GRACE_SECONDS}s ceiling ({ceiling:.3}s)"
            );
            failed = true;
        }
    }
    {
        let ceiling = engine_wall * MAX_TRACED_WALL_VS_ENGINE + TRACED_WALL_GRACE_SECONDS;
        if traced_wall > ceiling {
            eprintln!(
                "FAIL: tracing-on matrix took {traced_wall:.3}s against a tracing-off engine \
                 wall of {engine_wall:.3}s — above the {MAX_TRACED_WALL_VS_ENGINE}x + \
                 {TRACED_WALL_GRACE_SECONDS}s ceiling ({ceiling:.3}s)"
            );
            failed = true;
        }
    }
    if let Some(remote_wall) = remote_binary_wall {
        let ceiling = engine_wall * MAX_REMOTE_WALL_VS_ENGINE + REMOTE_WALL_GRACE_SECONDS;
        if remote_wall > ceiling {
            eprintln!(
                "FAIL: binary-codec remote row took {remote_wall:.3}s against an engine wall \
                 of {engine_wall:.3}s — above the {MAX_REMOTE_WALL_VS_ENGINE}x + \
                 {REMOTE_WALL_GRACE_SECONDS}s ceiling ({ceiling:.3}s)"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
