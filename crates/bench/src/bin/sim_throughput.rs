//! `sim_throughput` — simulator wall-clock throughput smoke benchmark.
//!
//! ```text
//! sim_throughput [--scale <f64>] [--repeats <n>] [--out <path>] [--quick]
//! ```
//!
//! Runs the gzip-analogue trace through the cycle-level simulator under each
//! resize policy, measures simulated instructions per second of wall-clock
//! time, and emits the result as JSON (stdout and, unless `--out -`, to
//! `BENCH_sim_throughput.json`). Unlike the Criterion bench this binary is
//! cheap enough for CI, so the perf trajectory is tracked on every change:
//! CI fails loudly if the smoke run regresses by an order of magnitude
//! (simulation slower than `MIN_SIM_INSTRUCTIONS_PER_SECOND`).
//!
//! `--quick` shrinks the workload and repeat count for CI smoke runs.

use sdiq_compiler::{CompilerPass, PassConfig};
use sdiq_core::{Backend, Experiment, Matrix, MatrixSpec, SubprocessSpec, Suite, Technique};
use sdiq_isa::Executor;
use sdiq_sim::{AdaptiveConfig, ResizePolicy, SimConfig, Simulator};
use sdiq_workloads::Benchmark;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::BufRead;
use std::time::Instant;

/// Floor for the CI smoke check, in simulated instructions per second of
/// wall-clock time. The O(1)-per-event hot path sustains well over 10M
/// instructions/s in release builds on commodity hardware; 500k leaves an
/// order of magnitude of headroom for slow CI machines while still catching
/// accidental reintroduction of O(capacity) per-cycle scans.
const MIN_SIM_INSTRUCTIONS_PER_SECOND: f64 = 500_000.0;

struct Options {
    scale: f64,
    repeats: usize,
    out: Option<String>,
    quick: bool,
}

fn parse_args() -> Options {
    let mut options = Options {
        scale: 0.2,
        repeats: 3,
        out: Some("BENCH_sim_throughput.json".to_string()),
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                options.scale = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --scale needs a float value");
                    std::process::exit(2);
                });
            }
            "--repeats" => {
                options.repeats = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("error: --repeats needs an integer value");
                    std::process::exit(2);
                });
            }
            "--out" => {
                let path = args.next().unwrap_or_else(|| {
                    eprintln!("error: --out needs a path (or - for stdout only)");
                    std::process::exit(2);
                });
                options.out = if path == "-" { None } else { Some(path) };
            }
            "--quick" => options.quick = true,
            "--help" | "-h" => {
                println!(
                    "sim_throughput [--scale <f64>] [--repeats <n>] [--out <path>|-] [--quick]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    if options.quick {
        options.scale = options.scale.min(0.05);
        options.repeats = 1;
    }
    options.repeats = options.repeats.max(1);
    options
}

/// The pre-engine matrix strategy, kept here as the measured baseline: one
/// thread per benchmark, each column rebuilding its program and re-running
/// the compiler pass for every technique.
fn run_matrix_per_benchmark_threads(
    experiment: &Experiment,
    benchmarks: &[Benchmark],
    techniques: &[Technique],
) -> Suite {
    let mut suite = Suite::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = benchmarks
            .iter()
            .map(|&benchmark| {
                scope.spawn(move || {
                    techniques
                        .iter()
                        .map(|&technique| (benchmark, experiment.run(benchmark, technique)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (benchmark, report) in handle.join().expect("benchmark worker panicked") {
                suite.insert(benchmark, report);
            }
        }
    });
    suite
}

/// Starts one `repro serve` daemon on an ephemeral localhost port and
/// blocks until it announces its bound address (the machine-readable
/// `LISTENING <addr>` first stdout line).
fn spawn_serve_daemon(exe: &std::path::Path, jobs: usize) -> Option<(std::process::Child, String)> {
    let mut child = std::process::Command::new(exe)
        .args(["serve", "--listen", "127.0.0.1:0", "--jobs"])
        .arg(jobs.to_string())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .ok()?;
    let stdout = child.stdout.take()?;
    let mut line = String::new();
    let announced = std::io::BufReader::new(stdout).read_line(&mut line).is_ok();
    match line.trim().strip_prefix("LISTENING ") {
        Some(addr) if announced => Some((child, addr.to_string())),
        _ => {
            let _ = child.kill();
            let _ = child.wait();
            None
        }
    }
}

fn main() {
    let options = parse_args();
    let program = Benchmark::Gzip.build_scaled(options.scale);
    let trace = Executor::new(&program)
        .run(2_000_000)
        .expect("gzip analogue executes");
    // The software-hint row must actually exercise the hint hot path
    // (`apply_hint` / region accounting), so it runs the compiler-annotated
    // program rather than the raw one.
    let hinted_program = CompilerPass::new(PassConfig::noop_insertion())
        .run(&program)
        .program;
    let hinted_trace = Executor::new(&hinted_program)
        .run(2_000_000)
        .expect("hinted gzip analogue executes");

    let mut policies_json = String::new();
    let mut slowest_rate = f64::INFINITY;
    for (name, policy, program, trace) in [
        ("fixed", ResizePolicy::Fixed, &program, &trace),
        (
            "software_hint",
            ResizePolicy::SoftwareHint,
            &hinted_program,
            &hinted_trace,
        ),
        (
            "adaptive",
            ResizePolicy::Adaptive(AdaptiveConfig::iqrob64()),
            &program,
            &trace,
        ),
    ] {
        let instructions = trace.len() as f64;
        let mut best = f64::INFINITY;
        let mut cycles = 0u64;
        let mut committed = 0u64;
        for _ in 0..options.repeats {
            let start = Instant::now();
            let result = Simulator::new(SimConfig::hpca2005(), program, trace, policy)
                .run()
                .expect("simulation completes");
            let elapsed = start.elapsed().as_secs_f64();
            best = best.min(elapsed);
            cycles = result.stats.cycles;
            committed = result.stats.committed + result.stats.committed_hints;
        }
        let rate = instructions / best;
        slowest_rate = slowest_rate.min(rate);
        eprintln!(
            "{name:>14}: {rate:>12.0} sim-instructions/s  ({best:.3}s best of {}, {cycles} cycles)",
            options.repeats
        );
        if !policies_json.is_empty() {
            policies_json.push(',');
        }
        write!(
            policies_json,
            "\n    \"{name}\": {{\"wall_seconds_best\": {best:.6}, \
             \"sim_instructions_per_second\": {rate:.0}, \
             \"cycles\": {cycles}, \"instructions\": {committed}}}"
        )
        .unwrap();
    }

    // Matrix throughput: a reduced (benchmark × technique) matrix run under
    // the old one-thread-per-benchmark strategy (which rebuilds the program
    // and re-runs the compiler pass for every cell) and under the job
    // engine with its shared artifact cache. The engine must produce the
    // same activity counters; the wall-clock difference is what the cache
    // and the balanced work queue buy.
    let matrix_benchmarks = [
        Benchmark::Gzip,
        Benchmark::Mcf,
        Benchmark::Vortex,
        Benchmark::Gcc,
    ];
    let matrix_techniques = [Technique::Baseline, Technique::Noop, Technique::Abella];
    let matrix_experiment = Experiment {
        scale: options.scale,
        ..Experiment::paper()
    };

    let legacy_start = Instant::now();
    let legacy_suite = run_matrix_per_benchmark_threads(
        &matrix_experiment,
        &matrix_benchmarks,
        &matrix_techniques,
    );
    let legacy_wall = legacy_start.elapsed().as_secs_f64();

    let engine_start = Instant::now();
    let engine_suite = Matrix::new(&matrix_experiment)
        .benchmarks(&matrix_benchmarks)
        .techniques(&matrix_techniques)
        .run()
        .into_suite();
    let engine_wall = engine_start.elapsed().as_secs_f64();

    for (&(benchmark, technique), engine_report) in engine_suite.iter() {
        let legacy_report = legacy_suite
            .get(benchmark, technique)
            .expect("legacy matrix filled every cell");
        assert_eq!(
            engine_report.stats, legacy_report.stats,
            "{benchmark}/{technique}: engine activity counters must match the legacy runner"
        );
    }

    let cells = matrix_benchmarks.len() * matrix_techniques.len();
    let jobs = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = legacy_wall / engine_wall.max(1e-9);
    eprintln!(
        "{:>14}: {cells} cells  legacy {legacy_wall:.3}s  engine {engine_wall:.3}s  ({speedup:.2}x, {jobs} jobs)",
        "matrix"
    );

    // Sharded-backend row: the same reduced matrix through the subprocess
    // coordinator (one `repro` worker per shard, partial suites merged).
    // Workers pay process startup and cannot share the in-process artifact
    // cache, so this row prices the multi-process substrate against the
    // in-process engine — the counters must still be bit-identical.
    const SHARDS: usize = 2;
    let repro_exe = std::env::current_exe().ok().and_then(|own| {
        let exe = own
            .parent()?
            .join(format!("repro{}", std::env::consts::EXE_SUFFIX));
        exe.exists().then_some(exe)
    });
    let sharded_json = match repro_exe {
        Some(worker_exe) => {
            let benchmark_names: Vec<&str> = matrix_benchmarks.iter().map(|b| b.name()).collect();
            let technique_names: Vec<&str> = matrix_techniques.iter().map(|t| t.name()).collect();
            let scratch_dir =
                std::env::temp_dir().join(format!("sdiq-throughput-shards-{}", std::process::id()));
            let backend = Backend::Subprocess(SubprocessSpec {
                worker_exe,
                worker_args: vec![
                    "--scale".to_string(),
                    options.scale.to_string(),
                    "--benchmarks".to_string(),
                    benchmark_names.join(","),
                    "--techniques".to_string(),
                    technique_names.join(","),
                    // Split the machine between the workers instead of
                    // oversubscribing every core in each of them.
                    "--jobs".to_string(),
                    (jobs / SHARDS).max(1).to_string(),
                ],
                shards: SHARDS,
                scratch_dir: scratch_dir.clone(),
                worker_checkpoint_stem: None,
            });
            let sharded_start = Instant::now();
            let sharded = Matrix::new(&matrix_experiment)
                .benchmarks(&matrix_benchmarks)
                .techniques(&matrix_techniques)
                .run_on(&backend, &HashMap::new(), None);
            let sharded_wall = sharded_start.elapsed().as_secs_f64();
            let _ = std::fs::remove_dir_all(&scratch_dir);
            match sharded {
                Ok(sweep) => {
                    let sharded_suite = sweep.into_suite();
                    assert_eq!(
                        sharded_suite, engine_suite,
                        "merged sharded suite must be bit-identical to the in-process engine"
                    );
                    let vs_engine = sharded_wall / engine_wall.max(1e-9);
                    eprintln!(
                        "{:>14}: {cells} cells  {SHARDS} shard workers {sharded_wall:.3}s  \
                         ({vs_engine:.2}x of engine wall, bit-identical)",
                        "sharded"
                    );
                    format!(
                        "{{\"shards\": {SHARDS}, \"wall_seconds\": {sharded_wall:.6}, \
                         \"wall_vs_engine\": {vs_engine:.3}}}"
                    )
                }
                Err(error) => {
                    eprintln!("{:>14}: skipped ({error})", "sharded");
                    "null".to_string()
                }
            }
        }
        None => {
            eprintln!(
                "{:>14}: skipped (repro worker binary not built next to sim_throughput)",
                "sharded"
            );
            "null".to_string()
        }
    };

    // Remote row: the same reduced matrix once more, now through two
    // localhost `repro serve` daemons driven by the TCP scheduler
    // (sdiq-remote). On one box this prices the networked substrate —
    // frame codec, per-cell streaming, capacity-batched scheduling,
    // seeded reassembly — against the in-process engine; across boxes it
    // is the substrate that scales. Counters asserted bit-identical yet
    // again before any timing is reported.
    let repro_exe = std::env::current_exe().ok().and_then(|own| {
        let exe = own
            .parent()?
            .join(format!("repro{}", std::env::consts::EXE_SUFFIX));
        exe.exists().then_some(exe)
    });
    let remote_json = match repro_exe {
        Some(exe) => {
            const WORKERS: usize = 2;
            let worker_jobs = (jobs / WORKERS).max(1);
            let mut daemons: Vec<(std::process::Child, String)> = Vec::new();
            for _ in 0..WORKERS {
                match spawn_serve_daemon(&exe, worker_jobs) {
                    Some(daemon) => daemons.push(daemon),
                    None => break,
                }
            }
            let row = if daemons.len() < WORKERS {
                eprintln!("{:>14}: skipped (could not start serve daemons)", "remote");
                "null".to_string()
            } else {
                let spec = MatrixSpec {
                    scale: options.scale,
                    sweeps: Vec::new(),
                    benchmarks: matrix_benchmarks
                        .iter()
                        .map(|b| b.name().to_string())
                        .collect(),
                    techniques: matrix_techniques
                        .iter()
                        .map(|t| t.name().to_string())
                        .collect(),
                };
                let addrs: Vec<String> = daemons.iter().map(|(_, addr)| addr.clone()).collect();
                let backend = sdiq_remote::backend(
                    spec.clone(),
                    sdiq_remote::RemoteOptions {
                        workers: addrs,
                        ..sdiq_remote::RemoteOptions::default()
                    },
                );
                let remote_start = Instant::now();
                let remote = spec
                    .matrix(&matrix_experiment)
                    .expect("spec mirrors the reduced matrix")
                    .run_on(&backend, &HashMap::new(), None);
                let remote_wall = remote_start.elapsed().as_secs_f64();
                match remote {
                    Ok(sweep) => {
                        let remote_suite = sweep.into_suite();
                        assert_eq!(
                            remote_suite, engine_suite,
                            "remote suite must be bit-identical to the in-process engine"
                        );
                        let vs_engine = remote_wall / engine_wall.max(1e-9);
                        eprintln!(
                            "{:>14}: {cells} cells  {WORKERS} localhost workers {remote_wall:.3}s  \
                             ({vs_engine:.2}x of engine wall, bit-identical)",
                            "remote"
                        );
                        format!(
                            "{{\"workers\": {WORKERS}, \"wall_seconds\": {remote_wall:.6}, \
                             \"wall_vs_engine\": {vs_engine:.3}}}"
                        )
                    }
                    Err(error) => {
                        eprintln!("{:>14}: skipped ({error})", "remote");
                        "null".to_string()
                    }
                }
            };
            for (mut child, _) in daemons {
                let _ = child.kill();
                let _ = child.wait();
            }
            row
        }
        None => {
            eprintln!(
                "{:>14}: skipped (repro worker binary not built next to sim_throughput)",
                "remote"
            );
            "null".to_string()
        }
    };

    let note = "Wall-clock throughput of the cycle-level simulator (per resize policy, \
                gzip-analogue trace, best of N repeats; software_hint runs the \
                compiler-annotated program) plus a matrix row: a reduced \
                benchmark x technique matrix under the legacy one-thread-per-benchmark \
                runner vs the work-queue engine with the shared artifact cache \
                (activity counters asserted bit-identical before timing is reported), \
                and a sharded row running the same matrix through the subprocess \
                coordinator (one repro worker per shard, merged suites asserted \
                bit-identical to the engine's), and a remote row running it through \
                two localhost repro serve daemons driven by the sdiq-remote TCP \
                scheduler (suite asserted bit-identical again; on one box this \
                prices the networked substrate, across boxes it is the substrate \
                that scales). \
                Regenerate with: cargo run --release -p sdiq-bench --bin sim_throughput \
                -- --scale 1.0 --repeats 7. CAUTION: this binary rewrites the whole \
                file; the committed artifact carries a hand-curated 'history' block \
                (per-PR before/after records) that must be re-attached after \
                regenerating.";
    let json = format!(
        "{{\n  \"bench\": \"simulator_throughput\",\n  \"workload\": \"gzip-analogue\",\n  \
         \"note\": \"{note}\",\n  \
         \"scale\": {},\n  \"repeats\": {},\n  \"trace_instructions\": {},\n  \"policies\": {{{}\n  }},\n  \
         \"matrix\": {{\"benchmarks\": {}, \"techniques\": {}, \"cells\": {cells}, \"jobs\": {jobs}, \
         \"legacy_wall_seconds\": {legacy_wall:.6}, \"engine_wall_seconds\": {engine_wall:.6}, \
         \"speedup\": {speedup:.3}, \"sharded\": {sharded_json}, \"remote\": {remote_json}}}\n}}\n",
        options.scale,
        options.repeats,
        trace.len(),
        policies_json,
        matrix_benchmarks.len(),
        matrix_techniques.len(),
    );
    print!("{json}");
    if let Some(path) = &options.out {
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        eprintln!("wrote {path}");
    }

    if slowest_rate < MIN_SIM_INSTRUCTIONS_PER_SECOND {
        eprintln!(
            "FAIL: slowest policy simulates {slowest_rate:.0} instructions/s, \
             below the {MIN_SIM_INSTRUCTIONS_PER_SECOND:.0}/s floor"
        );
        std::process::exit(1);
    }
}
