//! # sdiq-bench — reproduction harness
//!
//! This crate hosts:
//!
//! * the `repro` binary, which regenerates every table and figure of the
//!   paper's evaluation from the current code (see `repro --help`), and
//! * one Criterion benchmark per table/figure plus throughput benchmarks for
//!   the compiler pass and the simulator (under `benches/`).
//!
//! The library part only provides small shared helpers so that the binary
//! and the benches agree on experiment scales.

use sdiq_core::{Experiment, Suite, Technique};
use sdiq_workloads::Benchmark;

/// The benchmarks used by the harness (all eleven SPECint analogues).
pub fn all_benchmarks() -> Vec<Benchmark> {
    Benchmark::ALL.to_vec()
}

/// The experiment configuration used for figure regeneration at full scale.
pub fn paper_experiment() -> Experiment {
    Experiment::paper()
}

/// A reduced-scale experiment used by the Criterion benches so that a single
/// iteration stays in the tens-of-milliseconds range.
pub fn bench_experiment() -> Experiment {
    Experiment {
        scale: 0.1,
        ..Experiment::paper()
    }
}

/// Runs the (benchmarks × techniques) matrix needed by one figure, always
/// including the baseline the savings are normalised against.
pub fn run_for(experiment: &Experiment, techniques: &[Technique]) -> Suite {
    let mut with_baseline = vec![Technique::Baseline];
    for &t in techniques {
        if !with_baseline.contains(&t) {
            with_baseline.push(t);
        }
    }
    experiment.run_matrix(&all_benchmarks(), &with_baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_for_always_includes_the_baseline() {
        let exp = Experiment {
            scale: 0.03,
            ..Experiment::paper()
        };
        let suite = run_for(&exp, &[Technique::Noop]);
        assert!(suite.get(Benchmark::Gzip, Technique::Baseline).is_some());
        assert!(suite.get(Benchmark::Gzip, Technique::Noop).is_some());
    }
}
