//! End-to-end tests of `repro lint` and the `--verify`/`--no-verify`
//! flags: exit-code contract (0 clean, 1 findings, 2 usage error), the
//! distributed-flag refusals, and the summary line's shape.

use std::process::Command;

struct Run {
    code: i32,
    stdout: String,
    stderr: String,
}

fn repro(args: &[&str]) -> Run {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro");
    Run {
        code: output.status.code().expect("repro exited without a code"),
        stdout: String::from_utf8_lossy(&output.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
    }
}

#[test]
fn lint_over_a_small_matrix_is_clean_and_exits_zero() {
    let run = repro(&[
        "lint",
        "--scale",
        "0.02",
        "--benchmarks",
        "gzip,mcf",
        "--techniques",
        "baseline,noop,abella",
    ]);
    assert_eq!(run.code, 0, "stderr:\n{}", run.stderr);
    let summary = run
        .stdout
        .lines()
        .find(|l| l.starts_with("lint:"))
        .unwrap_or_else(|| panic!("no summary line in:\n{}", run.stdout));
    assert!(summary.contains("0 error(s)"), "summary: {summary}");
    assert!(
        summary.contains("2 benchmark(s) x 3 technique(s)"),
        "summary: {summary}"
    );
}

#[test]
fn lint_sweep_covers_every_config_variant() {
    let run = repro(&[
        "lint",
        "--scale",
        "0.02",
        "--benchmarks",
        "gzip",
        "--techniques",
        "noop",
        "--sweep",
        "iq=48,32",
    ]);
    assert_eq!(run.code, 0, "stderr:\n{}", run.stderr);
    // Paper point + two sweep values = three compiled/planned variants.
    assert!(
        run.stdout.contains("3 variant(s)"),
        "stdout:\n{}",
        run.stdout
    );
}

#[test]
fn conflicting_verify_flags_exit_two() {
    let run = repro(&["--verify", "--no-verify", "--scale", "0.02"]);
    assert_eq!(run.code, 2, "stderr:\n{}", run.stderr);
    assert!(
        run.stderr.contains("mutually exclusive"),
        "stderr:\n{}",
        run.stderr
    );
    // Order must not matter.
    let flipped = repro(&["--no-verify", "--verify", "--scale", "0.02"]);
    assert_eq!(flipped.code, 2);
}

#[test]
fn repeated_verify_flag_is_accepted() {
    // Repetition is not a conflict — only contradiction is.
    let run = repro(&[
        "--verify",
        "--verify",
        "--scale",
        "0.02",
        "--benchmarks",
        "gzip",
        "--techniques",
        "baseline",
        "--summary",
    ]);
    assert_eq!(run.code, 0, "stderr:\n{}", run.stderr);
}

#[test]
fn lint_refuses_distributed_execution_flags() {
    for flag in [
        &["lint", "--workers", "tcp:127.0.0.1:0"][..],
        &["lint", "--shards", "2"][..],
        &["lint", "--shard", "1/2"][..],
        &["lint", "--listen-workers", "127.0.0.1:0"][..],
    ] {
        let run = repro(flag);
        assert_eq!(run.code, 2, "{flag:?} must be refused");
        assert!(
            run.stderr.contains("does not combine"),
            "{flag:?} stderr:\n{}",
            run.stderr
        );
    }
}

#[test]
fn unknown_technique_lists_the_registry_and_exits_two() {
    // Both the run and lint paths share the parser, so check both.
    for args in [
        &["--scale", "0.02", "--techniques", "bogus"][..],
        &["lint", "--scale", "0.02", "--techniques", "bogus"][..],
    ] {
        let run = repro(args);
        assert_eq!(run.code, 2, "{args:?} must exit 2");
        assert!(
            run.stderr.contains("unknown technique `bogus`"),
            "{args:?} stderr:\n{}",
            run.stderr
        );
        // The error enumerates every registered wire name, so a typo's fix
        // is on screen — including the registry-landed techniques.
        for name in [
            "baseline",
            "nonEmpty",
            "noop",
            "extension",
            "improved",
            "abella",
            "way-memo",
            "lowen-isa",
        ] {
            assert!(
                run.stderr.contains(name),
                "{args:?} stderr must list `{name}`:\n{}",
                run.stderr
            );
        }
    }
}

#[test]
fn lint_rejects_unknown_flags() {
    let run = repro(&["lint", "--frobnicate"]);
    assert_eq!(run.code, 2);
}

#[test]
fn lint_help_exits_zero() {
    let run = repro(&["lint", "--help"]);
    assert_eq!(run.code, 0, "stderr:\n{}", run.stderr);
    assert!(run.stdout.contains("lint"), "stdout:\n{}", run.stdout);
}
