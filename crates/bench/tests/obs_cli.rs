//! End-to-end tests of the observability flags: the serve-mode
//! refusals, the Chrome trace file a `--trace` run writes, the
//! `--stats` view, progress going to stderr only — and the central
//! out-of-band guarantee, a traced run's `--save` being byte-identical
//! to an untraced one's.

use std::process::Command;

struct Run {
    code: i32,
    stdout: String,
    stderr: String,
}

fn repro(args: &[&str]) -> Run {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro");
    Run {
        code: output.status.code().expect("repro exited without a code"),
        stdout: String::from_utf8_lossy(&output.stdout).into_owned(),
        stderr: String::from_utf8_lossy(&output.stderr).into_owned(),
    }
}

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("sdiq-obs-cli-{}-{name}", std::process::id()))
}

const SMALL: &[&str] = &[
    "--scale",
    "0.02",
    "--benchmarks",
    "gzip",
    "--techniques",
    "baseline,noop",
    "--summary",
];

#[test]
fn serve_refuses_trace_and_progress() {
    for flag in [
        &["serve", "--trace", "/tmp/x.json"][..],
        &["serve", "--progress"][..],
    ] {
        let run = repro(flag);
        assert_eq!(run.code, 2, "{flag:?} must exit 2, stderr:\n{}", run.stderr);
        assert!(
            run.stderr.contains("coordinator flag"),
            "{flag:?} stderr:\n{}",
            run.stderr
        );
    }
}

#[test]
fn traced_run_writes_a_wellformed_nonempty_chrome_trace() {
    let trace = temp_path("trace.json");
    let mut args: Vec<&str> = SMALL.to_vec();
    let trace_str = trace.to_str().expect("temp path is utf-8");
    args.extend(["--trace", trace_str]);
    let run = repro(&args);
    assert_eq!(run.code, 0, "stderr:\n{}", run.stderr);

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let doc = sdiq_core::persist::parse(text.trim_end()).expect("trace parses as JSON");
    let events = doc
        .get("traceEvents")
        .expect("traceEvents key")
        .arr()
        .expect("traceEvents is an array");
    assert!(!events.is_empty(), "trace has events");
    // Spans from the engine's hot seams must be present, balanced.
    let phase =
        |record: &sdiq_core::persist::Json| record.get("ph").unwrap().str().unwrap().to_string();
    let begins = events.iter().filter(|e| phase(e) == "B").count();
    let ends = events.iter().filter(|e| phase(e) == "E").count();
    assert!(begins > 0, "no spans recorded");
    assert_eq!(begins, ends, "unbalanced B/E pairs");
    let named: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").ok().and_then(|n| n.str().ok()))
        .collect();
    assert!(named.contains(&"cell"), "cell spans missing: {named:?}");
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn traced_save_is_byte_identical_to_untraced() {
    let traced_save = temp_path("traced-save.json");
    let plain_save = temp_path("plain-save.json");
    let trace = temp_path("identity-trace.json");

    let mut traced_args: Vec<&str> = SMALL.to_vec();
    let traced_save_str = traced_save.to_str().expect("utf-8");
    let trace_str = trace.to_str().expect("utf-8");
    traced_args.extend([
        "--save",
        traced_save_str,
        "--trace",
        trace_str,
        "--progress",
    ]);
    let run = repro(&traced_args);
    assert_eq!(run.code, 0, "stderr:\n{}", run.stderr);

    let mut plain_args: Vec<&str> = SMALL.to_vec();
    let plain_save_str = plain_save.to_str().expect("utf-8");
    plain_args.extend(["--save", plain_save_str]);
    let run = repro(&plain_args);
    assert_eq!(run.code, 0, "stderr:\n{}", run.stderr);

    let traced_bytes = std::fs::read(&traced_save).expect("traced save written");
    let plain_bytes = std::fs::read(&plain_save).expect("plain save written");
    assert_eq!(
        traced_bytes, plain_bytes,
        "tracing must be out-of-band: saves diverged"
    );
    for path in [&traced_save, &plain_save, &trace] {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn progress_writes_to_stderr_never_stdout() {
    let mut args: Vec<&str> = SMALL.to_vec();
    args.push("--progress");
    let run = repro(&args);
    assert_eq!(run.code, 0, "stderr:\n{}", run.stderr);
    assert!(
        run.stderr.contains("progress:"),
        "no progress line on stderr:\n{}",
        run.stderr
    );
    assert!(
        !run.stdout.contains("progress:"),
        "progress leaked to stdout:\n{}",
        run.stdout
    );
}

#[test]
fn stats_view_prints_the_metrics_registry_only_when_asked() {
    let mut args: Vec<&str> = SMALL.to_vec();
    args.push("--stats");
    let run = repro(&args);
    assert_eq!(run.code, 0, "stderr:\n{}", run.stderr);
    assert!(
        run.stdout.contains("== Metrics snapshot"),
        "stdout:\n{}",
        run.stdout
    );
    assert!(run.stdout.contains("cells_done"), "stdout:\n{}", run.stdout);
    assert!(
        run.stdout.contains("cache_hit_rate"),
        "stdout:\n{}",
        run.stdout
    );

    // --all alone must not grow a stats section: the snapshot is
    // run-shaped (timings), which would make --all output unstable.
    let run = repro(SMALL);
    assert!(
        !run.stdout.contains("== Metrics snapshot"),
        "stats leaked into a non-stats run:\n{}",
        run.stdout
    );
}
