//! End-to-end tests of the networked cell-execution subsystem over real
//! TCP and real processes — `repro serve` worker daemons driven by a
//! `repro --workers` coordinator:
//!
//! 1. a remote suite over two localhost workers is **byte-for-byte**
//!    equal to a serial `--save`,
//! 2. a worker killed mid-suite (the `--fail-after` fault injection dies
//!    in place of delivering a cell, exactly like a machine crash) has
//!    its cells re-queued onto the survivor and the bytes still match,
//! 3. a drained pool and an unreachable worker are clear errors, not
//!    partial suites,
//! 4. `--workers` composes with `--checkpoint`: cells streamed before a
//!    failed run are not recomputed by the resume,
//! 5. the CLI rejects `--jobs 0` and contradictory distribution flags,
//! 6. a worker that *hangs* mid-batch (the `--stall-after` fault
//!    injection holds the socket open and goes silent — a frozen
//!    machine, not a dead one) trips the coordinator's heartbeat
//!    deadline, its cells are re-queued/speculated onto the survivor,
//!    and the bytes still match serial — **pre-liveness this run hung
//!    forever**,
//! 7. `--retry-budget` is validated and actually threads through to the
//!    scheduler,
//! 8. self-registered workers (`serve --register` dialing a
//!    `--listen-workers` rendezvous coordinator) complete the suite
//!    byte-identically with zero inbound connections to the workers,
//! 9. a mixed pool — one worker negotiating the `bin1` binary codec,
//!    one pinned to JSON — still reproduces the suite byte-for-byte,
//!    as does a coordinator pinned to `--wire json`,
//! 10. the `--auth-key` HMAC handshake admits matching keys and turns
//!     wrong or missing keys into clean, fast protocol errors — never
//!     hangs.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

/// Axis flags shared by every run: a tiny matrix so each invocation is a
/// few hundred milliseconds.
const AXES: [&str; 6] = [
    "--scale",
    "0.02",
    "--benchmarks",
    "gzip,mcf",
    "--techniques",
    "baseline,noop,abella",
];

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sdiq-remote-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A `repro serve` daemon on an ephemeral localhost port, killed on drop
/// so a failing test never leaks processes.
struct Worker {
    child: Child,
    addr: String,
}

impl Worker {
    /// Spawns a daemon with the given extra serve flags and blocks until
    /// it prints its bound address (`LISTENING <addr>`, the machine-
    /// readable first stdout line).
    fn spawn(extra: &[&str]) -> Worker {
        let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["serve", "--listen", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn repro serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read LISTENING line");
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .unwrap_or_else(|| panic!("daemon announced `{line}`, expected LISTENING <addr>"))
            .to_string();
        Worker { child, addr }
    }

    /// Spawns a daemon in reverse-dial mode (`serve --register`) and
    /// blocks until it confirms startup (`REGISTERING <addr>`, the
    /// machine-readable first stdout line of that mode). The daemon
    /// keeps knocking until the coordinator's rendezvous port answers.
    fn spawn_registering(coordinator: &str) -> Worker {
        let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["serve", "--register", coordinator, "--jobs", "1"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn repro serve --register");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read REGISTERING line");
        assert!(
            line.starts_with("REGISTERING "),
            "daemon announced `{line}`, expected REGISTERING <addr>"
        );
        Worker {
            child,
            addr: coordinator.to_string(),
        }
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Runs `repro` with the tiny axes plus `args`; returns `(success,
/// stderr)` — progress and errors both go to stderr.
fn repro_raw(args: &[&str]) -> (bool, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(AXES)
        .args(args)
        .output()
        .expect("spawn repro");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn repro(args: &[&str]) -> String {
    let (success, stderr) = repro_raw(args);
    assert!(success, "repro {args:?} failed:\n{stderr}");
    stderr
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn remote_suite_is_byte_identical_to_a_serial_save() {
    let dir = scratch_dir("identity");
    let serial = dir.join("serial.json");
    let remote = dir.join("remote.json");

    repro(&["--summary", "--save", serial.to_str().unwrap()]);
    // Unequal capacities on purpose: the capacity-weighted batching must
    // not affect a single byte of the result.
    let fast = Worker::spawn(&["--jobs", "2"]);
    let slow = Worker::spawn(&["--jobs", "1"]);
    let log = repro(&[
        "--summary",
        "--workers",
        &format!("{},{}", fast.addr, slow.addr),
        "--save",
        remote.to_str().unwrap(),
    ]);
    assert!(
        log.contains("distributing 6 of 6 cells across 2 worker(s)"),
        "coordinator announces the distribution:\n{log}"
    );
    assert_eq!(
        read(&serial),
        read(&remote),
        "remote suite must be byte-identical to serial"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_death_mid_suite_requeues_cells_onto_the_survivor() {
    let dir = scratch_dir("failover");
    let serial = dir.join("serial.json");
    let remote = dir.join("remote.json");

    repro(&["--summary", "--save", serial.to_str().unwrap()]);
    // The doomed worker delivers two cells, then aborts in place of its
    // third — the wire-visible behaviour of a machine dying mid-cell.
    let doomed = Worker::spawn(&["--jobs", "1", "--fail-after", "2"]);
    let survivor = Worker::spawn(&["--jobs", "1"]);
    let log = repro(&[
        "--summary",
        "--workers",
        &format!("{},{}", doomed.addr, survivor.addr),
        "--save",
        remote.to_str().unwrap(),
    ]);
    assert!(
        log.contains("re-queueing"),
        "the dead worker's cells are re-queued:\n{log}"
    );
    assert_eq!(
        read(&serial),
        read(&remote),
        "suite after failover must still be byte-identical to serial"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drained_pools_and_unreachable_workers_are_clear_errors() {
    let dir = scratch_dir("drained");
    let save = dir.join("never-written.json");

    // The lone worker dies before delivering anything: after its death
    // the pool is empty and the run must fail — loudly, not partially.
    let doomed = Worker::spawn(&["--jobs", "1", "--fail-after", "0"]);
    let (success, log) = repro_raw(&[
        "--summary",
        "--workers",
        &doomed.addr,
        "--save",
        save.to_str().unwrap(),
    ]);
    assert!(!success, "a drained pool must fail the run");
    assert!(
        log.contains("pool drained"),
        "error names the drained pool:\n{log}"
    );
    assert!(!save.exists(), "no partial save file is left behind");

    // An address nobody listens on: the dial fails, the pool is empty
    // from the start.
    let (success, log) = repro_raw(&["--summary", "--workers", "127.0.0.1:9"]);
    assert!(!success);
    assert!(log.contains("dial failed"), "{log}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn remote_coordinator_composes_with_checkpoint_resume() {
    let dir = scratch_dir("ckpt");
    let serial = dir.join("serial.json");
    let resumed = dir.join("resumed.json");
    let checkpoint = dir.join("run.ckpt");

    repro(&["--summary", "--save", serial.to_str().unwrap()]);

    // First attempt: a lone worker that dies after two cells. The run
    // fails (pool drained), but the two streamed cells are already
    // durable in the coordinator's checkpoint.
    let doomed = Worker::spawn(&["--jobs", "1", "--fail-after", "2"]);
    let (success, log) = repro_raw(&[
        "--summary",
        "--workers",
        &doomed.addr,
        "--checkpoint",
        checkpoint.to_str().unwrap(),
    ]);
    assert!(!success, "the drained first attempt fails:\n{log}");
    assert_eq!(
        read(&checkpoint).lines().count(),
        3,
        "header + the two cells that streamed back before the death"
    );
    drop(doomed);

    // Resume with a healthy worker: the checkpoint seeds the run, only
    // the four missing cells are distributed, and the save is still
    // byte-identical to serial.
    let healthy = Worker::spawn(&["--jobs", "1"]);
    let log = repro(&[
        "--summary",
        "--workers",
        &healthy.addr,
        "--checkpoint",
        checkpoint.to_str().unwrap(),
        "--save",
        resumed.to_str().unwrap(),
    ]);
    assert!(log.contains("loaded 2 cells"), "checkpoint seeds:\n{log}");
    assert!(
        log.contains("distributing 4 of 6"),
        "only missing cells travel:\n{log}"
    );
    assert_eq!(
        read(&serial),
        read(&resumed),
        "resumed remote suite must be byte-identical to serial"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_stalled_worker_trips_the_heartbeat_deadline_and_bytes_still_match() {
    let dir = scratch_dir("stall");
    let serial = dir.join("serial.json");
    let remote = dir.join("remote.json");

    repro(&["--summary", "--save", serial.to_str().unwrap()]);
    // The stalled worker delivers one cell, then freezes: socket open,
    // heartbeats silenced, no frames — the wire-visible behaviour of a
    // hung machine. Only the heartbeat deadline can detect this; the
    // pre-liveness scheduler blocked in `recv` forever and this test
    // never terminated.
    let stalled = Worker::spawn(&["--jobs", "1", "--stall-after", "1"]);
    let survivor = Worker::spawn(&["--jobs", "1"]);
    let started = std::time::Instant::now();
    let log = repro(&[
        "--summary",
        "--workers",
        &format!("{},{}", stalled.addr, survivor.addr),
        "--heartbeat-deadline",
        "2",
        "--save",
        remote.to_str().unwrap(),
    ]);
    assert!(
        log.contains("heartbeat deadline"),
        "the stalled worker is declared dead by the deadline:\n{log}"
    );
    assert!(
        started.elapsed() < std::time::Duration::from_secs(60),
        "the run is bounded by the deadline, not hung"
    );
    assert_eq!(
        read(&serial),
        read(&remote),
        "suite after a hung worker must still be byte-identical to serial"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn retry_budget_flag_is_validated_and_threaded_through() {
    // Non-numeric: exit 2 before anything runs, like --jobs.
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--summary", "--retry-budget", "lots"])
        .output()
        .expect("spawn repro");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("--retry-budget needs a non-negative integer"),
        "{stderr}"
    );

    // Threaded: a lone worker that dies pre-delivery with a budget of 0
    // must abort on budget exhaustion (the default budget of 3 instead
    // reports a drained pool after the re-queues go nowhere).
    let doomed = Worker::spawn(&["--jobs", "1", "--fail-after", "0"]);
    let (success, log) = repro_raw(&[
        "--summary",
        "--workers",
        &doomed.addr,
        "--retry-budget",
        "0",
    ]);
    assert!(!success, "budget exhaustion fails the run");
    assert!(
        log.contains("retry budget"),
        "the scheduler saw the configured budget:\n{log}"
    );
}

#[test]
fn self_registered_workers_complete_the_suite_byte_identically() {
    let dir = scratch_dir("register");
    let serial = dir.join("serial.json");
    let remote = dir.join("remote.json");

    repro(&["--summary", "--save", serial.to_str().unwrap()]);

    // The coordinator binds an ephemeral rendezvous port and announces
    // it on stderr; spawn it first, with stderr piped, and read lines
    // until the announcement so we know where workers must dial.
    let mut coordinator = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(AXES)
        .args([
            "--summary",
            "--listen-workers",
            "127.0.0.1:0",
            "--expect",
            "2",
            "--save",
            remote.to_str().unwrap(),
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn rendezvous coordinator");
    let stderr = coordinator.stderr.take().expect("piped stderr");
    let mut reader = BufReader::new(stderr);
    let rendezvous = loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read coordinator log") > 0,
            "coordinator exited before announcing its rendezvous address"
        );
        if let Some(rest) = line
            .trim()
            .strip_prefix("remote: listening for workers on ")
        {
            break rest
                .split_whitespace()
                .next()
                .expect("announcement carries the address")
                .to_string();
        }
    };

    // Workers dial *out* to the coordinator — the NAT'd-fleet direction;
    // nothing ever connects to the workers.
    let _w1 = Worker::spawn_registering(&rendezvous);
    let _w2 = Worker::spawn_registering(&rendezvous);

    let status = coordinator.wait().expect("coordinator exits");
    let mut log = String::new();
    std::io::Read::read_to_string(&mut reader, &mut log).expect("drain coordinator log");
    assert!(status.success(), "rendezvous run failed:\n{log}");
    assert_eq!(
        read(&serial),
        read(&remote),
        "self-registered suite must be byte-identical to serial"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mixed_codec_pools_stay_byte_identical_to_serial() {
    let dir = scratch_dir("codec");
    let serial = dir.join("serial.json");
    let mixed = dir.join("mixed.json");
    let json_only = dir.join("json-only.json");

    repro(&["--summary", "--save", serial.to_str().unwrap()]);

    // One daemon negotiates up to `bin1`, the other is pinned to JSON —
    // the fleet-upgrade shape where old and new workers share a pool.
    // The codec must never be observable in the results.
    let binary = Worker::spawn(&["--jobs", "1"]);
    let json = Worker::spawn(&["--jobs", "1", "--wire", "json"]);
    let pool = format!("{},{}", binary.addr, json.addr);
    repro(&[
        "--summary",
        "--workers",
        &pool,
        "--save",
        mixed.to_str().unwrap(),
    ]);
    assert_eq!(
        read(&serial),
        read(&mixed),
        "mixed-codec pool must be byte-identical to serial"
    );

    // A coordinator pinned to JSON against the same pool: nothing
    // negotiates, every frame is JSON, the bytes still match.
    repro(&[
        "--summary",
        "--workers",
        &pool,
        "--wire",
        "json",
        "--save",
        json_only.to_str().unwrap(),
    ]);
    assert_eq!(
        read(&serial),
        read(&json_only),
        "JSON-pinned run must be byte-identical to serial"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn auth_handshake_admits_matching_keys_and_rejects_mismatches_cleanly() {
    let dir = scratch_dir("auth");
    let serial = dir.join("serial.json");
    let remote = dir.join("remote.json");

    repro(&["--summary", "--save", serial.to_str().unwrap()]);
    let keyed = Worker::spawn(&["--jobs", "1", "--auth-key", "fleet-secret"]);
    let started = std::time::Instant::now();

    // A keyless coordinator is told what is missing, immediately.
    let (success, log) = repro_raw(&["--summary", "--workers", &keyed.addr]);
    assert!(!success, "keyless coordinator must fail");
    assert!(
        log.contains("requires authentication"),
        "the error names the missing key:\n{log}"
    );

    // A wrong key fails the MAC check — a protocol error, not a hang.
    let (success, log) = repro_raw(&[
        "--summary",
        "--workers",
        &keyed.addr,
        "--auth-key",
        "not-the-secret",
    ]);
    assert!(!success, "wrong key must fail");
    assert!(
        log.contains("authentication"),
        "the error names the failed handshake:\n{log}"
    );
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "auth mismatches are refused promptly, never hung"
    );

    // Matching keys: handshake, then business as usual, bytes identical.
    repro(&[
        "--summary",
        "--workers",
        &keyed.addr,
        "--auth-key",
        "fleet-secret",
        "--save",
        remote.to_str().unwrap(),
    ]);
    assert_eq!(
        read(&serial),
        read(&remote),
        "authenticated suite must be byte-identical to serial"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_zero_jobs_and_contradictory_distribution_flags() {
    let run = |args: &[&str]| {
        let output = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(args)
            .output()
            .expect("spawn repro");
        (
            output.status.code(),
            String::from_utf8_lossy(&output.stderr).into_owned(),
        )
    };

    // --jobs 0 is never what the user asked for (and would divide away
    // to nothing in worker-budget arithmetic): exit 2, one clear line.
    let (code, stderr) = run(&["--summary", "--jobs", "0"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--jobs wants a positive"), "{stderr}");
    let (code, stderr) = run(&["serve", "--jobs", "0"]);
    assert_eq!(code, Some(2), "serve applies the same rule");
    assert!(stderr.contains("--jobs wants a positive"), "{stderr}");

    // One process cannot be a remote coordinator and a shard worker (or
    // a subprocess coordinator) at once.
    let (code, stderr) = run(&[
        "--workers",
        "127.0.0.1:9",
        "--shard",
        "1/2",
        "--save",
        "/dev/null",
    ]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains("--workers") && stderr.contains("--shard"),
        "{stderr}"
    );
    let (code, stderr) = run(&["--workers", "127.0.0.1:9", "--shards", "2"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("mutually exclusive"), "{stderr}");

    // An empty worker list is rejected before any run starts.
    let (code, stderr) = run(&["--workers", ","]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--workers wants"), "{stderr}");

    // The rendezvous flags travel as a pair: a listener that does not
    // know how many registrations to wait for would wait forever.
    let (code, stderr) = run(&["--listen-workers", "127.0.0.1:0"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--expect"), "{stderr}");
    let (code, stderr) = run(&["--expect", "2"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--listen-workers"), "{stderr}");

    // A daemon either listens or registers, never both.
    let (code, stderr) = run(&[
        "serve",
        "--listen",
        "127.0.0.1:0",
        "--register",
        "127.0.0.1:9",
    ]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("mutually exclusive"), "{stderr}");

    // The liveness timeouts want non-negative seconds.
    let (code, stderr) = run(&["--summary", "--heartbeat-deadline", "soon"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--heartbeat-deadline"), "{stderr}");
    let (code, stderr) = run(&["--summary", "--connect-timeout", "-1"]);
    assert_eq!(code, Some(2));
    assert!(stderr.contains("--connect-timeout"), "{stderr}");

    // The wire tuning flags validate their values on both sides.
    let (code, stderr) = run(&["--summary", "--wire", "carrier-pigeon"]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains("--wire wants `binary` or `json`"),
        "{stderr}"
    );
    let (code, stderr) = run(&["serve", "--wire", "smoke-signal"]);
    assert_eq!(code, Some(2), "serve applies the same rule");
    assert!(
        stderr.contains("--wire wants `binary` or `json`"),
        "{stderr}"
    );
    let (code, stderr) = run(&["--summary", "--pipeline-window", "wide"]);
    assert_eq!(code, Some(2));
    assert!(
        stderr.contains("--pipeline-window needs a non-negative integer"),
        "{stderr}"
    );
}
