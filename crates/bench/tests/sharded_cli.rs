//! End-to-end tests of the sharded, crash-resumable `repro` CLI — the
//! coordinator/worker protocol over real subprocesses:
//!
//! 1. shard workers + merge produce a save file **byte-for-byte** equal to
//!    a serial `--save`,
//! 2. the `--shards` coordinator produces the same bytes in one command,
//! 3. a checkpoint torn mid-line (the artifact of a killed run) resumes
//!    via the same `--checkpoint` flag, recomputing only the missing
//!    cells, and ends with the same bytes again.

use std::path::{Path, PathBuf};
use std::process::Command;

/// Axis flags shared by every run: a tiny matrix so each invocation is a
/// few hundred milliseconds.
const AXES: [&str; 6] = [
    "--scale",
    "0.02",
    "--benchmarks",
    "gzip,mcf",
    "--techniques",
    "baseline,noop,abella",
];

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sdiq-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Runs `repro` with the tiny axes plus `args`, asserting success, and
/// returns its stderr (progress reporting goes there).
fn repro(args: &[&str]) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(AXES)
        .args(args)
        .output()
        .expect("spawn repro");
    assert!(
        output.status.success(),
        "repro {args:?} failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8_lossy(&output.stderr).into_owned()
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn sharded_workers_merge_byte_identically_to_a_serial_save() {
    let dir = scratch_dir("shard-merge");
    let serial = dir.join("serial.json");
    let shard1 = dir.join("shard1.json");
    let shard2 = dir.join("shard2.json");
    let merged = dir.join("merged.json");

    repro(&["--summary", "--save", serial.to_str().unwrap()]);
    let log1 = repro(&["--shard", "1/2", "--save", shard1.to_str().unwrap()]);
    let log2 = repro(&["--shard", "2/2", "--save", shard2.to_str().unwrap()]);
    assert!(log1.contains("shard 1/2"), "worker announces its shard");
    assert!(log2.contains("shard 2/2"));

    // The two shards are a real partition of the six cells.
    let (text1, text2) = (read(&shard1), read(&shard2));
    let count = |text: &str| text.matches("\"workload\"").count();
    assert!(
        count(&text1) > 0 && count(&text2) > 0,
        "both shards own cells"
    );
    assert_eq!(count(&text1) + count(&text2), 6);

    // Merging the partial suites (repeatable --load) re-runs nothing and
    // writes the exact bytes of the serial save.
    let merge_log = repro(&[
        "--summary",
        "--load",
        shard1.to_str().unwrap(),
        "--load",
        shard2.to_str().unwrap(),
        "--save",
        merged.to_str().unwrap(),
    ]);
    assert!(
        merge_log.contains("running 0 of 6"),
        "merge computes nothing:\n{merge_log}"
    );
    assert_eq!(
        read(&serial),
        read(&merged),
        "sharded ∪ merged must be byte-identical to serial"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn coordinator_mode_produces_the_serial_bytes_in_one_command() {
    let dir = scratch_dir("coordinator");
    let serial = dir.join("serial.json");
    let coordinated = dir.join("coordinated.json");

    repro(&["--summary", "--save", serial.to_str().unwrap()]);
    let log = repro(&[
        "--summary",
        "--shards",
        "2",
        "--save",
        coordinated.to_str().unwrap(),
    ]);
    assert!(
        log.contains("spawning 2 shard workers"),
        "coordinator announces its workers:\n{log}"
    );
    assert_eq!(
        read(&serial),
        read(&coordinated),
        "coordinator output must be byte-identical to serial"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn coordinator_checkpoints_compose_with_shards() {
    // Regression: --shards used to silently ignore --checkpoint (nothing
    // written, nothing forwarded to workers) — a user asking for crash
    // durability on a coordinated run got none.
    let dir = scratch_dir("coord-ckpt");
    let serial = dir.join("serial.json");
    let coordinated = dir.join("coordinated.json");
    let checkpoint = dir.join("run.ckpt");

    repro(&["--summary", "--save", serial.to_str().unwrap()]);
    repro(&[
        "--summary",
        "--shards",
        "2",
        "--checkpoint",
        checkpoint.to_str().unwrap(),
        "--save",
        coordinated.to_str().unwrap(),
    ]);
    assert_eq!(read(&serial), read(&coordinated));
    // The coordinator's own checkpoint holds every cell (header + 6), and
    // each worker kept a per-shard checkpoint at a stable path.
    assert_eq!(read(&checkpoint).lines().count(), 7);
    let shard_ckpts: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains("run.ckpt.shard-"))
        .map(|e| e.path())
        .collect();
    assert_eq!(shard_ckpts.len(), 2, "one durable checkpoint per shard");
    let shard_lines_before: Vec<usize> = shard_ckpts
        .iter()
        .map(|p| read(p).lines().count())
        .collect();
    assert_eq!(
        shard_lines_before.iter().map(|n| n - 1).sum::<usize>(),
        6,
        "the shard checkpoints together hold every cell"
    );

    // Re-running the identical command resumes: workers seed from their
    // shard checkpoints and compute nothing (their checkpoint files do
    // not grow — durable state, immune to interleaved worker stderr),
    // the coordinator checkpoint does not grow, and the bytes still
    // match.
    repro(&[
        "--summary",
        "--shards",
        "2",
        "--checkpoint",
        checkpoint.to_str().unwrap(),
        "--save",
        coordinated.to_str().unwrap(),
    ]);
    let shard_lines_after: Vec<usize> = shard_ckpts
        .iter()
        .map(|p| read(p).lines().count())
        .collect();
    assert_eq!(
        shard_lines_after, shard_lines_before,
        "workers recomputed nothing on resume"
    );
    assert_eq!(read(&checkpoint).lines().count(), 7, "no duplicate lines");
    assert_eq!(read(&serial), read(&coordinated));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_checkpoint_resumes_and_recomputes_only_missing_cells() {
    let dir = scratch_dir("resume");
    let serial = dir.join("serial.json");
    let checkpoint = dir.join("run.ckpt");
    let resumed = dir.join("resumed.json");

    repro(&["--summary", "--save", serial.to_str().unwrap()]);
    let first = repro(&["--summary", "--checkpoint", checkpoint.to_str().unwrap()]);
    assert!(first.contains("running 6 of 6"), "cold run:\n{first}");
    assert!(first.contains("checkpointed 6 newly computed cells"));

    // Kill artifact: the final append was torn mid-line.
    let text = read(&checkpoint);
    assert_eq!(text.lines().count(), 7, "header + six cells");
    std::fs::write(&checkpoint, &text.as_bytes()[..text.len() - 20]).unwrap();

    // The same command line resumes from its own checkpoint file: five
    // cells load, exactly one is recomputed, and the saved suite is
    // byte-identical to the serial one.
    let second = repro(&[
        "--summary",
        "--checkpoint",
        checkpoint.to_str().unwrap(),
        "--save",
        resumed.to_str().unwrap(),
    ]);
    assert!(
        second.contains("loaded 5 cells"),
        "torn tail tolerated:\n{second}"
    );
    assert!(
        second.contains("running 1 of 6"),
        "only the lost cell re-runs"
    );
    assert_eq!(read(&serial), read(&resumed), "resume is byte-identical");

    // The resume healed the torn file (trimmed the fragment before
    // appending): a further identical run loads all six cells and
    // computes nothing — pre-fix, the first resumed cell fused with the
    // torn fragment and stayed silently lost (or, with more cells after
    // it, poisoned every later load).
    let third = repro(&["--summary", "--checkpoint", checkpoint.to_str().unwrap()]);
    assert!(third.contains("loaded 6 cells"), "healed file:\n{third}");
    assert!(third.contains("running 0 of 6"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn worker_mode_rejects_useless_and_contradictory_flag_combinations() {
    let no_output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--shard", "1/2"])
        .output()
        .expect("spawn repro");
    assert!(
        !no_output.status.success(),
        "--shard without --save/--checkpoint"
    );

    let both = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--shard", "1/2", "--shards", "2", "--save", "/dev/null"])
        .output()
        .expect("spawn repro");
    assert!(!both.status.success(), "--shard with --shards");

    let bad_range = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--shard", "3/2", "--save", "/dev/null"])
        .output()
        .expect("spawn repro");
    assert!(!bad_range.status.success(), "shard index out of range");
}
