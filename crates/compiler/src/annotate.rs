//! Emission of issue-queue size information into the program.
//!
//! The paper evaluates two mechanisms:
//!
//! * **NOOP insertion** (§3, §5.2): a special NOOP whose unused bits encode
//!   `max_new_range` is inserted at the start of each annotated block. It is
//!   fetched and decoded like a real instruction (and therefore occasionally
//!   costs a dispatch slot) but is stripped in the last decode stage.
//! * **Tagging** (*Extension*, §5.3): the same value is carried in redundant
//!   bits of an existing instruction — here, attached to the first real
//!   instruction of the annotated block — so no extra instructions enter the
//!   pipeline.

use sdiq_isa::{BlockRef, Instruction, Program};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How the issue-queue size information is carried to the processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EmitKind {
    /// Insert special NOOPs ([`sdiq_isa::Opcode::HintNoop`]).
    NoopInsertion,
    /// Tag existing instructions (the *Extension* technique).
    Tagging,
}

/// The set of annotations the analysis computed for one program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Annotations {
    /// Issue-queue entries to advertise at the start of each annotated block.
    pub block_entries: HashMap<BlockRef, u32>,
    /// Issue-queue entries to advertise at the *end* of each listed block,
    /// just before its terminator. Used for loop pre-headers: the hint is
    /// encountered once, immediately before entering the loop, and stays in
    /// effect for the whole loop execution ("the maximum number of IQ
    /// entries needed until the next special NOOP").
    pub loop_preheader_entries: HashMap<BlockRef, u32>,
    /// Blocks whose terminating call targets a library routine: the queue is
    /// opened to its maximum size immediately before the call (§4.4).
    pub max_before_call: Vec<BlockRef>,
}

impl Annotations {
    /// Number of annotated program points.
    pub fn len(&self) -> usize {
        self.block_entries.len() + self.loop_preheader_entries.len()
    }

    /// `true` if no annotation was produced.
    pub fn is_empty(&self) -> bool {
        self.block_entries.is_empty() && self.loop_preheader_entries.is_empty()
    }
}

/// Clamps an entry count into the range encodable in a hint (1..=255, further
/// clamped to the queue capacity by the caller).
fn encode_entries(entries: u32) -> u8 {
    entries.clamp(1, 255) as u8
}

/// Rewrites `program` so that it carries the `annotations` using the chosen
/// `emit` mechanism, and returns the rewritten program.
///
/// The input program is left untouched; annotation works on a clone because
/// the experiments always need the unannotated baseline as well.
pub fn emit(program: &Program, annotations: &Annotations, emit: EmitKind) -> Program {
    let mut out = program.clone();

    for (block_ref, &entries) in &annotations.block_entries {
        let value = encode_entries(entries);
        let block = out.proc_mut(block_ref.proc).block_mut(block_ref.block);
        match emit {
            EmitKind::NoopInsertion => {
                block.instructions.insert(0, Instruction::hint_noop(value));
            }
            EmitKind::Tagging => {
                // Tag the first real (non-hint) instruction; if the block is
                // somehow empty, fall back to a NOOP so the information is
                // not lost.
                if let Some(first) = block.instructions.iter_mut().find(|i| !i.is_hint_noop()) {
                    first.iq_hint = Some(value);
                } else {
                    block.instructions.insert(0, Instruction::hint_noop(value));
                }
            }
        }
    }

    for (block_ref, &entries) in &annotations.loop_preheader_entries {
        let value = encode_entries(entries);
        let block = out.proc_mut(block_ref.proc).block_mut(block_ref.block);
        // Insert just before the terminator (or at the end if the block falls
        // through), so the hint is the last thing decoded before the loop.
        let pos = block.instructions.len().saturating_sub(usize::from(
            block
                .terminator()
                .map(|t| t.opcode.is_control())
                .unwrap_or(false),
        ));
        match emit {
            EmitKind::NoopInsertion => {
                block
                    .instructions
                    .insert(pos, Instruction::hint_noop(value));
            }
            EmitKind::Tagging => {
                // Tag the terminator (the branch/jump/call entering the loop);
                // its tag is processed at decode before the loop body arrives.
                if let Some(last) = block.instructions.last_mut() {
                    if last.iq_hint.is_none() {
                        last.iq_hint = Some(value);
                    } else {
                        block
                            .instructions
                            .insert(pos, Instruction::hint_noop(value));
                    }
                } else {
                    block
                        .instructions
                        .insert(pos, Instruction::hint_noop(value));
                }
            }
        }
    }

    for block_ref in &annotations.max_before_call {
        let block = out.proc_mut(block_ref.proc).block_mut(block_ref.block);
        let call_pos = block
            .instructions
            .iter()
            .position(|i| i.opcode == sdiq_isa::Opcode::Call);
        if let Some(pos) = call_pos {
            match emit {
                EmitKind::NoopInsertion => {
                    block.instructions.insert(pos, Instruction::hint_noop(255));
                }
                EmitKind::Tagging => {
                    block.instructions[pos].iq_hint = Some(255);
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_isa::builder::ProgramBuilder;
    use sdiq_isa::reg::int_reg;
    use sdiq_isa::{BlockId, Opcode, ProcId};

    fn call_program() -> Program {
        let mut b = ProgramBuilder::new();
        let lib = b.library_procedure("libroutine");
        {
            let p = b.proc_mut(lib);
            let e = p.block();
            p.with_block(e, |bb| {
                bb.nop();
                bb.ret();
            });
            p.set_entry(e);
        }
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let b0 = p.block();
            let b1 = p.block();
            p.with_block(b0, |bb| {
                bb.li(int_reg(1), 1);
                bb.addi(int_reg(2), int_reg(1), 1);
                bb.call(lib, b1);
            });
            p.with_block(b1, |bb| {
                bb.addi(int_reg(3), int_reg(2), 1);
                bb.ret();
            });
            p.set_entry(b0);
        }
        b.finish(main).unwrap()
    }

    fn simple_annotations(program: &Program) -> Annotations {
        let main = program.proc_by_name("main").unwrap();
        let mut block_entries = HashMap::new();
        block_entries.insert(
            BlockRef {
                proc: main,
                block: BlockId(0),
            },
            3,
        );
        block_entries.insert(
            BlockRef {
                proc: main,
                block: BlockId(1),
            },
            2,
        );
        Annotations {
            block_entries,
            loop_preheader_entries: HashMap::new(),
            max_before_call: vec![BlockRef {
                proc: main,
                block: BlockId(0),
            }],
        }
    }

    #[test]
    fn noop_insertion_adds_hint_noops() {
        let program = call_program();
        let ann = simple_annotations(&program);
        let out = emit(&program, &ann, EmitKind::NoopInsertion);
        assert!(out.validate().is_ok());
        // Two block hints + one max-before-call hint.
        assert_eq!(out.hint_noop_count(), 3);
        // Original program untouched.
        assert_eq!(program.hint_noop_count(), 0);
        // The block hint is the first instruction of the block.
        let main = out.proc_by_name("main").unwrap();
        let first = &out.proc(main).block(BlockId(0)).instructions[0];
        assert!(first.is_hint_noop());
        assert_eq!(first.iq_hint, Some(3));
    }

    #[test]
    fn max_before_library_call_sits_just_before_the_call() {
        let program = call_program();
        let ann = simple_annotations(&program);
        let out = emit(&program, &ann, EmitKind::NoopInsertion);
        let main = out.proc_by_name("main").unwrap();
        let instrs = &out.proc(main).block(BlockId(0)).instructions;
        let call_pos = instrs
            .iter()
            .position(|i| i.opcode == Opcode::Call)
            .unwrap();
        let before = &instrs[call_pos - 1];
        assert!(before.is_hint_noop());
        assert_eq!(before.iq_hint, Some(255));
    }

    #[test]
    fn tagging_adds_no_instructions() {
        let program = call_program();
        let ann = simple_annotations(&program);
        let out = emit(&program, &ann, EmitKind::Tagging);
        assert!(out.validate().is_ok());
        assert_eq!(out.hint_noop_count(), 0);
        assert_eq!(
            out.static_instruction_count(),
            program.static_instruction_count()
        );
        let main = out.proc_by_name("main").unwrap();
        let first = &out.proc(main).block(BlockId(0)).instructions[0];
        assert_eq!(first.iq_hint, Some(3));
        // The call instruction is tagged with the maximum for the library call.
        let call = out
            .proc(main)
            .block(BlockId(0))
            .instructions
            .iter()
            .find(|i| i.opcode == Opcode::Call)
            .unwrap();
        assert_eq!(call.iq_hint, Some(255));
    }

    #[test]
    fn entries_are_clamped_into_hint_range() {
        let program = call_program();
        let main = program.proc_by_name("main").unwrap();
        let mut block_entries = HashMap::new();
        block_entries.insert(
            BlockRef {
                proc: main,
                block: BlockId(1),
            },
            100_000,
        );
        block_entries.insert(
            BlockRef {
                proc: ProcId(0),
                block: BlockId(0),
            },
            0,
        );
        let ann = Annotations {
            block_entries,
            loop_preheader_entries: HashMap::new(),
            max_before_call: Vec::new(),
        };
        let out = emit(&program, &ann, EmitKind::NoopInsertion);
        let hints: Vec<u8> = out
            .iter_locs()
            .map(|l| out.instruction(l).clone())
            .filter(|i| i.is_hint_noop())
            .map(|i| i.iq_hint.unwrap())
            .collect();
        assert_eq!(hints.len(), 2);
        assert!(hints.contains(&255));
        assert!(hints.contains(&1));
    }
}
