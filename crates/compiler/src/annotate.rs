//! Emission of issue-queue size information into the program.
//!
//! The paper evaluates two mechanisms:
//!
//! * **NOOP insertion** (§3, §5.2): a special NOOP whose unused bits encode
//!   `max_new_range` is inserted at the start of each annotated block. It is
//!   fetched and decoded like a real instruction (and therefore occasionally
//!   costs a dispatch slot) but is stripped in the last decode stage.
//! * **Tagging** (*Extension*, §5.3): the same value is carried in redundant
//!   bits of an existing instruction — here, attached to the first real
//!   instruction of the annotated block — so no extra instructions enter the
//!   pipeline.

use sdiq_isa::{BlockRef, Instruction, Program};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// How the issue-queue size information is carried to the processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EmitKind {
    /// Insert special NOOPs ([`sdiq_isa::Opcode::HintNoop`]).
    NoopInsertion,
    /// Tag existing instructions (the *Extension* technique).
    Tagging,
}

/// The set of annotations the analysis computed for one program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Annotations {
    /// Issue-queue entries to advertise at the start of each annotated block.
    pub block_entries: HashMap<BlockRef, u32>,
    /// Issue-queue entries to advertise at the *end* of each listed block,
    /// just before its terminator. Used for loop pre-headers: the hint is
    /// encountered once, immediately before entering the loop, and stays in
    /// effect for the whole loop execution ("the maximum number of IQ
    /// entries needed until the next special NOOP").
    pub loop_preheader_entries: HashMap<BlockRef, u32>,
    /// Blocks whose terminating call targets a library routine: the queue is
    /// opened to its maximum size immediately before the call (§4.4).
    pub max_before_call: Vec<BlockRef>,
    /// Blocks whose instructions are re-encoded with the profiled
    /// low-energy format (the `lowen-isa` technique). Empty unless the
    /// low-energy pass ran. A `BTreeSet` so emission order is
    /// deterministic.
    pub low_energy_blocks: BTreeSet<BlockRef>,
}

impl Annotations {
    /// Number of annotated program points.
    pub fn len(&self) -> usize {
        self.block_entries.len() + self.loop_preheader_entries.len()
    }

    /// `true` if no annotation was produced.
    pub fn is_empty(&self) -> bool {
        self.block_entries.is_empty() && self.loop_preheader_entries.is_empty()
    }
}

/// Clamps an entry count into the range encodable in a hint (1..=255, further
/// clamped to the queue capacity by the caller).
fn encode_entries(entries: u32) -> u8 {
    entries.clamp(1, 255) as u8
}

/// Rewrites `program` so that it carries the `annotations` using the chosen
/// `emit` mechanism, and returns the rewritten program.
///
/// The input program is left untouched; annotation works on a clone because
/// the experiments always need the unannotated baseline as well.
pub fn emit(program: &Program, annotations: &Annotations, emit: EmitKind) -> Program {
    let mut out = program.clone();

    for (block_ref, &entries) in &annotations.block_entries {
        let value = encode_entries(entries);
        let block = out.proc_mut(block_ref.proc).block_mut(block_ref.block);
        match emit {
            EmitKind::NoopInsertion => {
                block.instructions.insert(0, Instruction::hint_noop(value));
            }
            EmitKind::Tagging => {
                // Tag the first real (non-hint) instruction; if the block is
                // somehow empty, fall back to a NOOP so the information is
                // not lost.
                if let Some(first) = block.instructions.iter_mut().find(|i| !i.is_hint_noop()) {
                    first.iq_hint = Some(value);
                } else {
                    block.instructions.insert(0, Instruction::hint_noop(value));
                }
            }
        }
    }

    for (block_ref, &entries) in &annotations.loop_preheader_entries {
        let value = encode_entries(entries);
        let block = out.proc_mut(block_ref.proc).block_mut(block_ref.block);
        // Insert just before the terminator (or at the end if the block falls
        // through), so the hint is the last thing decoded before the loop.
        let pos = block.instructions.len().saturating_sub(usize::from(
            block
                .terminator()
                .map(|t| t.opcode.is_control())
                .unwrap_or(false),
        ));
        match emit {
            EmitKind::NoopInsertion => {
                block
                    .instructions
                    .insert(pos, Instruction::hint_noop(value));
            }
            EmitKind::Tagging => {
                // Tag the terminator (the branch/jump/call entering the loop);
                // its tag is processed at decode before the loop body arrives.
                //
                // Hints are applied in decode order and the last one wins, so
                // the loop-preheader hint must be the last hint decoded
                // before the loop. If the terminator already carries a tag
                // (a single-instruction block whose block-entry hint landed
                // on it), inserting the loop hint *before* it would let the
                // earlier tag supersede it for the whole loop — the hint
                // would be silently dropped. Instead the earlier tag moves
                // onto a fallback NOOP before the terminator and the
                // terminator is re-tagged with the loop value, preserving
                // both hints in block-entry-first order.
                match block
                    .instructions
                    .last()
                    .map(|i| (i.iq_hint, i.is_hint_noop()))
                {
                    Some((None, _)) => {
                        block
                            .instructions
                            .last_mut()
                            .expect("checked non-empty")
                            .iq_hint = Some(value);
                    }
                    Some((Some(earlier), false)) => {
                        block
                            .instructions
                            .last_mut()
                            .expect("checked non-empty")
                            .iq_hint = Some(value);
                        // The displaced tag goes immediately *before* the
                        // re-tagged instruction — `pos` would equal `len`
                        // for a fall-through preheader (no control
                        // terminator) and land the earlier tag after the
                        // loop hint, superseding it again.
                        let before_last = block.instructions.len() - 1;
                        block
                            .instructions
                            .insert(before_last, Instruction::hint_noop(earlier));
                    }
                    _ => {
                        // Empty block, or the last instruction is itself a
                        // hint NOOP: a fallback NOOP at `pos` (after any
                        // trailing NOOP, which is not a control terminator)
                        // keeps the loop hint decoded last.
                        block
                            .instructions
                            .insert(pos, Instruction::hint_noop(value));
                    }
                }
            }
        }
    }

    for block_ref in &annotations.max_before_call {
        let block = out.proc_mut(block_ref.proc).block_mut(block_ref.block);
        let call_pos = block
            .instructions
            .iter()
            .position(|i| i.opcode == sdiq_isa::Opcode::Call);
        if let Some(pos) = call_pos {
            match emit {
                EmitKind::NoopInsertion => {
                    block.instructions.insert(pos, Instruction::hint_noop(255));
                }
                EmitKind::Tagging => {
                    block.instructions[pos].iq_hint = Some(255);
                }
            }
        }
    }

    // Low-energy re-encoding is applied last so instructions inserted by the
    // hint mechanisms above are covered too (hint NOOPs never commit, so the
    // marker is inert on them either way).
    for block_ref in &annotations.low_energy_blocks {
        let block = out.proc_mut(block_ref.proc).block_mut(block_ref.block);
        for inst in &mut block.instructions {
            inst.low_energy = true;
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_isa::builder::ProgramBuilder;
    use sdiq_isa::reg::int_reg;
    use sdiq_isa::{BlockId, Opcode, ProcId};

    fn call_program() -> Program {
        let mut b = ProgramBuilder::new();
        let lib = b.library_procedure("libroutine");
        {
            let p = b.proc_mut(lib);
            let e = p.block();
            p.with_block(e, |bb| {
                bb.nop();
                bb.ret();
            });
            p.set_entry(e);
        }
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let b0 = p.block();
            let b1 = p.block();
            p.with_block(b0, |bb| {
                bb.li(int_reg(1), 1);
                bb.addi(int_reg(2), int_reg(1), 1);
                bb.call(lib, b1);
            });
            p.with_block(b1, |bb| {
                bb.addi(int_reg(3), int_reg(2), 1);
                bb.ret();
            });
            p.set_entry(b0);
        }
        b.finish(main).unwrap()
    }

    fn simple_annotations(program: &Program) -> Annotations {
        let main = program.proc_by_name("main").unwrap();
        let mut block_entries = HashMap::new();
        block_entries.insert(
            BlockRef {
                proc: main,
                block: BlockId(0),
            },
            3,
        );
        block_entries.insert(
            BlockRef {
                proc: main,
                block: BlockId(1),
            },
            2,
        );
        Annotations {
            block_entries,
            loop_preheader_entries: HashMap::new(),
            max_before_call: vec![BlockRef {
                proc: main,
                block: BlockId(0),
            }],
            ..Annotations::default()
        }
    }

    #[test]
    fn noop_insertion_adds_hint_noops() {
        let program = call_program();
        let ann = simple_annotations(&program);
        let out = emit(&program, &ann, EmitKind::NoopInsertion);
        assert!(out.validate().is_ok());
        // Two block hints + one max-before-call hint.
        assert_eq!(out.hint_noop_count(), 3);
        // Original program untouched.
        assert_eq!(program.hint_noop_count(), 0);
        // The block hint is the first instruction of the block.
        let main = out.proc_by_name("main").unwrap();
        let first = &out.proc(main).block(BlockId(0)).instructions[0];
        assert!(first.is_hint_noop());
        assert_eq!(first.iq_hint, Some(3));
    }

    #[test]
    fn max_before_library_call_sits_just_before_the_call() {
        let program = call_program();
        let ann = simple_annotations(&program);
        let out = emit(&program, &ann, EmitKind::NoopInsertion);
        let main = out.proc_by_name("main").unwrap();
        let instrs = &out.proc(main).block(BlockId(0)).instructions;
        let call_pos = instrs
            .iter()
            .position(|i| i.opcode == Opcode::Call)
            .unwrap();
        let before = &instrs[call_pos - 1];
        assert!(before.is_hint_noop());
        assert_eq!(before.iq_hint, Some(255));
    }

    #[test]
    fn tagging_adds_no_instructions() {
        let program = call_program();
        let ann = simple_annotations(&program);
        let out = emit(&program, &ann, EmitKind::Tagging);
        assert!(out.validate().is_ok());
        assert_eq!(out.hint_noop_count(), 0);
        assert_eq!(
            out.static_instruction_count(),
            program.static_instruction_count()
        );
        let main = out.proc_by_name("main").unwrap();
        let first = &out.proc(main).block(BlockId(0)).instructions[0];
        assert_eq!(first.iq_hint, Some(3));
        // The call instruction is tagged with the maximum for the library call.
        let call = out
            .proc(main)
            .block(BlockId(0))
            .instructions
            .iter()
            .find(|i| i.opcode == Opcode::Call)
            .unwrap();
        assert_eq!(call.iq_hint, Some(255));
    }

    /// A preheader whose only instruction is its terminator: the block-entry
    /// tag and the loop-preheader hint both land on the same block.
    fn jump_only_preheader_program() -> (Program, Annotations) {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let pre = p.block();
            let body = p.block();
            let exit = p.block();
            p.with_block(pre, |bb| {
                bb.jump(body);
            });
            p.with_block(body, |bb| {
                bb.li(int_reg(1), 1);
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.jump(exit);
            });
            p.with_block(exit, |bb| {
                bb.ret();
            });
            p.set_entry(pre);
        }
        let program = b.finish(main).unwrap();
        let main = program.proc_by_name("main").unwrap();
        let pre_ref = BlockRef {
            proc: main,
            block: BlockId(0),
        };
        let mut block_entries = HashMap::new();
        block_entries.insert(pre_ref, 5);
        let mut loop_preheader_entries = HashMap::new();
        loop_preheader_entries.insert(pre_ref, 9);
        (
            program,
            Annotations {
                block_entries,
                loop_preheader_entries,
                ..Annotations::default()
            },
        )
    }

    #[test]
    fn tagging_keeps_the_loop_preheader_hint_decoded_last() {
        // Regression: with the block-entry tag already on the terminator,
        // the loop-preheader hint used to be emitted as a NOOP *before* it —
        // decode order then let the block-entry tag supersede the loop hint
        // for the entire loop, silently dropping it.
        let (program, ann) = jump_only_preheader_program();
        let out = emit(&program, &ann, EmitKind::Tagging);
        assert!(out.validate().is_ok());
        let main = out.proc_by_name("main").unwrap();
        let instrs = &out.proc(main).block(BlockId(0)).instructions;
        assert_eq!(instrs.len(), 2, "one fallback NOOP + the terminator");
        // Block-entry hint first (the fallback NOOP), loop hint on the
        // terminator — the last hint decoded before the loop body.
        assert!(instrs[0].is_hint_noop());
        assert_eq!(instrs[0].iq_hint, Some(5));
        assert_eq!(instrs[1].opcode, Opcode::Jump);
        assert_eq!(
            instrs[1].iq_hint,
            Some(9),
            "loop-preheader hint must win at decode, not be dropped"
        );
    }

    #[test]
    fn tagging_keeps_the_loop_hint_last_in_a_fall_through_preheader() {
        // Same two-hints-on-one-block collision, but the preheader *falls
        // through* into the loop (no control terminator): the displaced
        // block-entry tag must still end up before the re-tagged
        // instruction, not after it.
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let pre = p.block();
            let body = p.block();
            let exit = p.block();
            p.with_block(pre, |bb| {
                bb.li(int_reg(1), 0);
                bb.fallthrough(body);
            });
            p.with_block(body, |bb| {
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.jump(exit);
            });
            p.with_block(exit, |bb| {
                bb.ret();
            });
            p.set_entry(pre);
        }
        let program = b.finish(main).unwrap();
        let main = program.proc_by_name("main").unwrap();
        let pre_ref = BlockRef {
            proc: main,
            block: BlockId(0),
        };
        let mut block_entries = HashMap::new();
        block_entries.insert(pre_ref, 5);
        let mut loop_preheader_entries = HashMap::new();
        loop_preheader_entries.insert(pre_ref, 9);
        let ann = Annotations {
            block_entries,
            loop_preheader_entries,
            ..Annotations::default()
        };

        let out = emit(&program, &ann, EmitKind::Tagging);
        assert!(out.validate().is_ok());
        let main = out.proc_by_name("main").unwrap();
        let instrs = &out.proc(main).block(BlockId(0)).instructions;
        assert_eq!(instrs.len(), 2);
        assert!(instrs[0].is_hint_noop());
        assert_eq!(instrs[0].iq_hint, Some(5), "block-entry tag first");
        assert_eq!(instrs[1].opcode, Opcode::Li);
        assert_eq!(
            instrs[1].iq_hint,
            Some(9),
            "loop hint decodes last even without a control terminator"
        );
    }

    #[test]
    fn noop_insertion_orders_two_hints_on_one_block_the_same_way() {
        // The NOOP-insertion mechanism has always kept the loop hint last;
        // pin it so the two emit kinds agree on precedence.
        let (program, ann) = jump_only_preheader_program();
        let out = emit(&program, &ann, EmitKind::NoopInsertion);
        assert!(out.validate().is_ok());
        let main = out.proc_by_name("main").unwrap();
        let instrs = &out.proc(main).block(BlockId(0)).instructions;
        assert_eq!(instrs.len(), 3);
        assert_eq!(instrs[0].iq_hint, Some(5), "block-entry hint first");
        assert_eq!(instrs[1].iq_hint, Some(9), "loop hint decoded last");
        assert_eq!(instrs[2].opcode, Opcode::Jump);
        assert!(instrs[2].iq_hint.is_none());
    }

    #[test]
    fn entries_are_clamped_into_hint_range() {
        let program = call_program();
        let main = program.proc_by_name("main").unwrap();
        let mut block_entries = HashMap::new();
        block_entries.insert(
            BlockRef {
                proc: main,
                block: BlockId(1),
            },
            100_000,
        );
        block_entries.insert(
            BlockRef {
                proc: ProcId(0),
                block: BlockId(0),
            },
            0,
        );
        let ann = Annotations {
            block_entries,
            ..Annotations::default()
        };
        let out = emit(&program, &ann, EmitKind::NoopInsertion);
        let hints: Vec<u8> = out
            .iter_locs()
            .map(|l| out.instruction(l).clone())
            .filter(|i| i.is_hint_noop())
            .map(|i| i.iq_hint.unwrap())
            .collect();
        assert_eq!(hints.len(), 2);
        assert!(hints.contains(&255));
        assert!(hints.contains(&1));
    }
}
