//! Pseudo-issue-queue analysis of basic blocks (§4.2, Figure 3).
//!
//! "The algorithm used to determine the critical path is very similar to
//! that which the scheduler in the processor uses to issue instructions. In
//! the compiler we maintain a structure similar to the processor's issue
//! queue. We place the first few instructions in this pseudo issue queue and
//! then iterate over it several times, removing instructions that are able
//! to issue, recording their writeback times and placing new ones at the
//! tail. [...] Knowing how instructions will issue means that the number of
//! IQ entries needed can be determined. On each cycle, the oldest
//! instruction in the queue is known, as is the youngest. By counting the
//! number of instructions between the two in the basic block, we can
//! determine the number of IQ entries needed."

use sdiq_ir::Ddg;
use sdiq_isa::{FuClass, FuCounts, Instruction};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Result of analysing one basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockRequirement {
    /// Maximum number of issue-queue entries the block needs so that its
    /// critical path is not delayed.
    pub entries: u32,
    /// Number of cycles the pseudo issue queue took to drain the block
    /// (the block's resource-constrained critical path).
    pub cycles: u32,
    /// Number of instructions analysed (special NOOPs excluded).
    pub instructions: u32,
}

/// Analyses one basic block with the pseudo issue queue.
///
/// `issue_width` and `fu_counts` bound how many instructions can leave the
/// queue per cycle overall and per functional-unit class; both come from the
/// machine description the code is being compiled for (Table 1). Cache
/// misses are not modelled: as §4.2 states, all memory accesses are assumed
/// to hit in the L1 cache (the DDG already charges the hit latency).
///
/// Special NOOP hints already present in the block are ignored — they never
/// occupy an issue-queue entry.
///
/// # Width monotonicity (Graham anomalies)
///
/// The pseudo issue queue is a greedy list scheduler, and like every list
/// scheduler it exhibits Graham-style scheduling anomalies: narrowing the
/// issue width can delay old instructions so that a later cycle holds a
/// *wider* resident span, making a narrower machine report a *larger*
/// entries requirement. Advertising a larger window on a narrower machine is
/// exactly backwards for a power-saving technique, so the reported
/// `entries` is clamped to the *monotone envelope*: the minimum raw
/// requirement over every issue width from the requested one up to the
/// block length (beyond which width no longer binds). A machine of width
/// `w' > w` demonstrates the block's critical path completes within
/// `raw(w')` resident entries, and the narrower machine — which keeps no
/// more instructions in flight per cycle — is given that window instead
/// whenever it is smaller. The envelope is non-decreasing in width by
/// construction, so narrower widths never report a larger requirement to
/// the annotator. `cycles` stays the honest drain time at the requested
/// width.
pub fn analyse_block(
    instructions: &[Instruction],
    issue_width: usize,
    fu_counts: &FuCounts,
) -> BlockRequirement {
    // Work on the real instructions only (hint NOOPs never occupy an
    // issue-queue entry; blocks are hint-free before annotation anyway).
    let real: Vec<Instruction> = instructions
        .iter()
        .filter(|i| !i.is_hint_noop())
        .cloned()
        .collect();
    if real.is_empty() {
        return BlockRequirement {
            entries: 1,
            cycles: 0,
            instructions: 0,
        };
    }

    let ddg = Ddg::for_block(&real);
    let raw = schedule_at_width(&real, &ddg, issue_width, fu_counts);
    let mut entries = raw.entries;
    // Monotone envelope over wider machines (see the doc comment above).
    // Widths beyond the block length never bind, so the scan is finite; it
    // reuses the DDG and the blocks the pass analyses are small.
    for width in (issue_width + 1)..=real.len() {
        if entries == 1 {
            break;
        }
        entries = entries.min(schedule_at_width(&real, &ddg, width, fu_counts).entries);
    }
    BlockRequirement { entries, ..raw }
}

/// One greedy pseudo-issue-queue schedule at a fixed issue width: the raw,
/// un-clamped requirement (exposed to tests via [`analyse_block`]'s
/// envelope; see the anomaly discussion there).
fn schedule_at_width(
    filtered: &[Instruction],
    ddg: &Ddg,
    issue_width: usize,
    fu_counts: &FuCounts,
) -> BlockRequirement {
    let n = filtered.len();

    // writeback[i] = cycle at which instruction i's result becomes available
    // (valid once issued[i]).
    let mut issued = vec![false; n];
    let mut writeback: Vec<u64> = vec![0; n];
    let mut issued_count = 0usize;
    let mut cycle: u64 = 0;
    let mut max_entries: u32 = 1;

    // Safety valve: every instruction issues in at most
    // `n * max_latency + n` cycles; anything beyond that indicates a cycle in
    // the DDG of a straight-line block, which cannot happen.
    let max_cycles = (n as u64 + 1) * 16 + 64;

    while issued_count < n && cycle < max_cycles {
        // Oldest instruction still waiting in the queue at the start of this
        // cycle.
        let oldest = issued.iter().position(|&b| !b).expect("unissued remains");

        // Select instructions that can issue this cycle: all data
        // dependences satisfied (producer writeback <= current cycle), within
        // the issue width, and within per-class functional-unit counts.
        let mut per_class: HashMap<FuClass, usize> = HashMap::new();
        let mut issuing: Vec<usize> = Vec::new();
        for idx in 0..n {
            if issued[idx] || issuing.len() >= issue_width {
                continue;
            }
            let deps_ready = ddg
                .preds(idx)
                .all(|e| issued[e.from] && writeback[e.from] <= cycle);
            if !deps_ready {
                continue;
            }
            let class = filtered[idx].fu_class();
            let used = per_class.entry(class).or_insert(0);
            if *used >= fu_counts.for_class(class) {
                continue;
            }
            *used += 1;
            issuing.push(idx);
        }

        if !issuing.is_empty() {
            let youngest = *issuing.iter().max().expect("non-empty");
            // Entries needed so the oldest resident and the youngest issuing
            // instruction fit in the queue simultaneously.
            let span = (youngest - oldest + 1) as u32;
            max_entries = max_entries.max(span);
            for idx in issuing {
                issued[idx] = true;
                issued_count += 1;
                writeback[idx] = cycle + 1 + u64::from(ddg.latency_of(idx).saturating_sub(1));
            }
        }
        cycle += 1;
    }

    BlockRequirement {
        entries: max_entries,
        cycles: cycle as u32,
        instructions: n as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_isa::reg::int_reg;
    use sdiq_isa::Opcode;

    fn fu() -> FuCounts {
        FuCounts::hpca2005()
    }

    /// Figure 3's example: six instructions a..f where
    /// a → {b, d}; b → c; d → {e}; and c,e,f depend such that
    /// iteration 0 issues a, iteration 1 issues b and d, iteration 2 issues
    /// c, e and f. Needs 4 entries overall.
    fn figure3_block() -> Vec<Instruction> {
        // a: defines r1
        // b: r2 = r1 + 1      (depends on a)
        // c: r3 = r2 + 1      (depends on b)
        // d: r4 = r1 + 2      (depends on a)
        // e: r5 = r4 + 1      (depends on d)
        // f: r6 = r2 + r4     (depends on b and d)
        vec![
            Instruction::ri(Opcode::Li, int_reg(1), 7),
            Instruction::rri(Opcode::Addi, int_reg(2), int_reg(1), 1),
            Instruction::rri(Opcode::Addi, int_reg(3), int_reg(2), 1),
            Instruction::rri(Opcode::Addi, int_reg(4), int_reg(1), 2),
            Instruction::rri(Opcode::Addi, int_reg(5), int_reg(4), 1),
            Instruction::rrr(Opcode::Add, int_reg(6), int_reg(2), int_reg(4)),
        ]
    }

    #[test]
    fn figure3_needs_four_entries() {
        let req = analyse_block(&figure3_block(), 8, &fu());
        // Iteration 0: a issues (1 entry). Iteration 1: b and d issue while
        // b is the oldest resident → span b..d = 3. Iteration 2: c, e, f
        // issue while c is the oldest → span c..f = 4.
        assert_eq!(req.entries, 4);
        assert_eq!(req.instructions, 6);
        assert_eq!(req.cycles, 3);
    }

    #[test]
    fn independent_instructions_all_issue_at_once() {
        let block: Vec<Instruction> = (0..6)
            .map(|k| Instruction::ri(Opcode::Li, int_reg(k as u8 + 1), k))
            .collect();
        let req = analyse_block(&block, 8, &fu());
        assert_eq!(req.entries, 6);
        assert_eq!(req.cycles, 1);
    }

    #[test]
    fn alu_pool_limits_parallel_issue() {
        // 12 independent integer instructions: the issue width is 8 but there
        // are only 6 integer ALUs, so 6 issue per cycle. The widest window is
        // the 6 instructions issuing together in the first cycle.
        let block: Vec<Instruction> = (0..12)
            .map(|k| Instruction::ri(Opcode::Li, int_reg((k % 30) as u8 + 1), k))
            .collect();
        let req = analyse_block(&block, 8, &fu());
        assert_eq!(req.entries, 6);
        assert_eq!(req.cycles, 2);
    }

    #[test]
    fn fu_contention_serialises_same_class() {
        // Four independent multiplies but only 3 integer multipliers: the
        // fourth issues a cycle later on its own, so the resident window the
        // critical path needs never exceeds the 3 that issue together.
        let block: Vec<Instruction> = (0..4)
            .map(|k| Instruction::rrr(Opcode::Mul, int_reg(10 + k as u8), int_reg(1), int_reg(2)))
            .collect();
        let req = analyse_block(&block, 8, &fu());
        assert_eq!(req.cycles, 2);
        assert_eq!(req.entries, 3);
    }

    #[test]
    fn dependent_chain_needs_single_entry_per_cycle() {
        // A pure chain: each instruction depends on the previous one, so only
        // one is ever issuing and the oldest is always the issuing one.
        let block: Vec<Instruction> = (0..5)
            .map(|k| Instruction::rri(Opcode::Addi, int_reg(1), int_reg(1), k))
            .collect();
        let req = analyse_block(&block, 8, &fu());
        assert_eq!(req.entries, 1);
        assert_eq!(req.cycles, 5);
    }

    #[test]
    fn long_latency_producer_stretches_the_window() {
        // A multiply (3 cycles) followed by its consumer and several
        // independent instructions: while the consumer waits, younger
        // independent instructions issue, widening the window.
        let block = vec![
            Instruction::rrr(Opcode::Mul, int_reg(3), int_reg(1), int_reg(2)),
            Instruction::rri(Opcode::Addi, int_reg(4), int_reg(3), 1),
            Instruction::ri(Opcode::Li, int_reg(5), 1),
            Instruction::ri(Opcode::Li, int_reg(6), 2),
            Instruction::ri(Opcode::Li, int_reg(7), 3),
        ];
        let req = analyse_block(&block, 8, &fu());
        // Cycle 0: mul + the three li's issue (span 0..4 = 5). The addi waits
        // for the mul's 3-cycle latency.
        assert_eq!(req.entries, 5);
        assert!(req.cycles >= 4);
    }

    #[test]
    fn empty_block_needs_one_entry() {
        let req = analyse_block(&[], 8, &fu());
        assert_eq!(req.entries, 1);
        assert_eq!(req.instructions, 0);
    }

    #[test]
    fn hint_noops_are_ignored_by_the_analysis() {
        let mut block = figure3_block();
        block.insert(0, Instruction::hint_noop(32));
        let req = analyse_block(&block, 8, &fu());
        assert_eq!(req.instructions, 6);
        assert_eq!(req.entries, 4);
    }

    /// On the well-behaved Figure 3 chain a narrower machine needs no more
    /// entries. This is *not* a general law — greedy list scheduling has
    /// Graham-style anomalies where a narrower width needs more entries (see
    /// the `block_analysis_is_bounded_and_deterministic` property test) —
    /// but it documents the typical behaviour the paper relies on.
    #[test]
    fn narrower_issue_width_needs_no_more_entries_on_figure3() {
        let block = figure3_block();
        let wide = analyse_block(&block, 8, &fu());
        let narrow = analyse_block(&block, 2, &fu());
        assert!(narrow.entries <= wide.entries);
        assert!(narrow.cycles >= wide.cycles);
    }

    /// Regression: a concrete Graham scheduling anomaly. On this
    /// mul/load/store/ALU mix the *raw* greedy schedule needs 4 entries at
    /// width 2 but only 3 at width 8 — a narrower machine reporting a
    /// *larger* requirement. The monotone envelope in [`analyse_block`]
    /// clamps the narrow machine to the wider machine's smaller window, so
    /// the annotator never sees the inversion.
    #[test]
    fn graham_anomaly_is_clamped_by_the_monotone_envelope() {
        let block = vec![
            Instruction::rrr(Opcode::Add, int_reg(3), int_reg(4), int_reg(5)),
            Instruction::rrr(Opcode::Mul, int_reg(1), int_reg(4), int_reg(1)),
            Instruction::load(Opcode::Load, int_reg(5), int_reg(4), 0),
            Instruction::load(Opcode::Load, int_reg(2), int_reg(5), 0),
            Instruction::store(Opcode::Store, int_reg(2), int_reg(3), 0),
            Instruction::rrr(Opcode::Add, int_reg(6), int_reg(6), int_reg(3)),
        ];
        let fu = fu();
        let ddg = sdiq_ir::Ddg::for_block(&block);
        // The anomaly is real in the raw schedules...
        let raw_narrow = schedule_at_width(&block, &ddg, 2, &fu);
        let raw_wide = schedule_at_width(&block, &ddg, 8, &fu);
        assert_eq!(raw_narrow.entries, 4, "raw narrow requirement");
        assert_eq!(raw_wide.entries, 3, "raw wide requirement");
        // ...and the public entry point clamps it away.
        let narrow = analyse_block(&block, 2, &fu);
        let wide = analyse_block(&block, 8, &fu);
        assert!(
            narrow.entries <= wide.entries,
            "clamped narrow {} must not exceed wide {}",
            narrow.entries,
            wide.entries
        );
        assert_eq!(narrow.entries, 3, "envelope adopts the wider window");
        // Drain time stays honest: the narrow machine is no faster.
        assert!(narrow.cycles >= wide.cycles);
    }

    /// The envelope is monotone across *every* width, not just 2-vs-8.
    #[test]
    fn clamped_requirement_is_monotone_in_width() {
        let block = vec![
            Instruction::rrr(Opcode::Add, int_reg(3), int_reg(4), int_reg(5)),
            Instruction::rrr(Opcode::Mul, int_reg(1), int_reg(4), int_reg(1)),
            Instruction::load(Opcode::Load, int_reg(5), int_reg(4), 0),
            Instruction::load(Opcode::Load, int_reg(2), int_reg(5), 0),
            Instruction::store(Opcode::Store, int_reg(2), int_reg(3), 0),
            Instruction::rrr(Opcode::Add, int_reg(6), int_reg(6), int_reg(3)),
        ];
        let fu = fu();
        let mut previous = 0u32;
        for width in 1..=10usize {
            let req = analyse_block(&block, width, &fu);
            assert!(
                req.entries >= previous,
                "width {width}: entries {} dropped below {previous}",
                req.entries
            );
            previous = req.entries;
        }
    }
}
