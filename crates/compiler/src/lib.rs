//! # sdiq-compiler — the paper's compiler analysis pass
//!
//! This crate implements §4 of *Software Directed Issue Queue Power
//! Reduction*: the compiler pass that determines, for every program region,
//! the maximum number of issue-queue entries the region needs in order to
//! issue along its critical path, and communicates that number to the
//! processor.
//!
//! The pass follows Figure 5 of the paper:
//!
//! 1. find natural loops (via [`sdiq_ir::LoopNest`]); inner loops are
//!    analysed separately from their enclosing loops,
//! 2. form DAGs from the remaining blocks, starting at the procedure entry
//!    and at blocks following calls ([`sdiq_ir::DagRegions`]),
//! 3. build the DDG of each DAG block / loop body,
//! 4. for DAG blocks, simulate a *pseudo issue queue* honouring the machine's
//!    issue width and functional-unit pools to find how many entries must be
//!    simultaneously resident ([`dag_analysis`]),
//! 5. for loops, find the cyclic dependence sets, derive per-instruction
//!    iteration-offset equations, and compute the entries needed for
//!    pipeline-parallel execution across iterations ([`loop_analysis`]),
//! 6. encode the results in the program, either as special NOOPs (the NOOP
//!    technique) or as tags on existing instructions (the *Extension*
//!    technique) ([`annotate`]).
//!
//! The *Improved* technique of §5.3 additionally models functional-unit
//! contention across procedure boundaries for hot procedures; this is the
//! [`PassConfig::interprocedural_fu`] switch.
//!
//! The stages run as registered named passes under a real pass manager
//! ([`manager::PassManager`]); an inter-pass verifier (implemented by
//! `sdiq-verify`) can be attached to check structural and soundness
//! invariants between passes ([`CompilerPass::run_verified`]).
//!
//! # Example
//!
//! ```
//! use sdiq_compiler::{CompilerPass, EmitKind, PassConfig};
//! use sdiq_isa::builder::ProgramBuilder;
//! use sdiq_isa::reg::int_reg;
//!
//! let mut b = ProgramBuilder::new();
//! let main = b.procedure("main");
//! {
//!     let p = b.proc_mut(main);
//!     let entry = p.block();
//!     p.with_block(entry, |bb| {
//!         bb.li(int_reg(1), 1);
//!         bb.addi(int_reg(2), int_reg(1), 2);
//!         bb.ret();
//!     });
//!     p.set_entry(entry);
//! }
//! let program = b.finish(main).unwrap();
//!
//! let pass = CompilerPass::new(PassConfig::noop_insertion());
//! let compiled = pass.run(&program);
//! assert!(compiled.program.hint_noop_count() > 0);
//! assert_eq!(compiled.config.emit, EmitKind::NoopInsertion);
//! ```

pub mod annotate;
pub mod dag_analysis;
pub mod loop_analysis;
pub mod low_energy;
pub mod manager;
pub mod pass;

pub use annotate::EmitKind;
pub use dag_analysis::{analyse_block, BlockRequirement};
pub use loop_analysis::{analyse_loop_body, LoopRequirement};
pub use low_energy::LowEnergyEncode;
pub use manager::{Pass, PassDiagnostic, PassManager, PassState, PassVerifier, VerifyError};
pub use pass::{CompileStats, CompiledProgram, CompilerPass, PassConfig, ProcedureStats};
