//! Loop analysis via cyclic dependence sets (§4.3, Figure 4).
//!
//! Out-of-order execution overlaps instructions from different loop
//! iterations, so a loop's issue-queue requirement cannot be derived from a
//! single iteration alone. The paper's method:
//!
//! 1. find the *cyclic dependence sets* (CDSs) — cycles of dependences that
//!    close through a loop-carried edge — and pick the one with the greatest
//!    latency: it dictates the recurrence-limited initiation interval,
//! 2. write an equation for every instruction expressing when it can leave
//!    the issue queue relative to a CDS instruction in some iteration
//!    ("`e_i = a_{i+3}`" in Figure 4), and
//! 3. count how many instructions must be resident so that the furthest
//!    iteration offset can be in the queue at the same time as the current
//!    iteration's tail — 15 entries in the Figure 4 example.

use sdiq_ir::graph::{cycle_latency, longest_paths_forward};
use sdiq_ir::Ddg;
use sdiq_isa::Instruction;
use serde::{Deserialize, Serialize};

/// Result of analysing one loop body.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopRequirement {
    /// Issue-queue entries needed for pipeline-parallel execution of the
    /// loop without delaying its recurrence-limited critical path. `None`
    /// means the loop has no cyclic dependence set at all (fully parallel
    /// iterations), in which case the paper's analysis cannot bound the
    /// requirement and the queue is left at its maximum size.
    pub entries: Option<u32>,
    /// Latency of the most critical cyclic dependence set (the
    /// recurrence-limited initiation interval), if any.
    pub recurrence_latency: u32,
    /// Number of instructions in the analysed loop body.
    pub body_len: u32,
    /// Iteration offsets assigned to each body instruction by the equation
    /// step (index-aligned with the body; offset of the CDS representative
    /// is 0).
    pub iteration_offsets: Vec<u32>,
}

/// Analyses a loop body (the concatenated instructions of the loop's
/// exclusive blocks, in control-flow order).
///
/// `iq_capacity` caps the reported requirement: a loop that would profit
/// from more entries than the hardware has simply gets the full queue.
pub fn analyse_loop_body(body: &[Instruction], iq_capacity: u32) -> LoopRequirement {
    let real: Vec<Instruction> = body.iter().filter(|i| !i.is_hint_noop()).cloned().collect();
    let n = real.len();
    if n == 0 {
        return LoopRequirement {
            entries: Some(1),
            recurrence_latency: 0,
            body_len: 0,
            iteration_offsets: Vec::new(),
        };
    }

    let ddg = Ddg::for_loop_body(&real);
    let cds_list = ddg.cyclic_dependence_sets();
    if cds_list.is_empty() {
        // No recurrence: iterations are fully independent, the analysis
        // cannot bound the window.
        return LoopRequirement {
            entries: None,
            recurrence_latency: 0,
            body_len: n as u32,
            iteration_offsets: vec![0; n],
        };
    }

    // Critical CDS = the one with the greatest latency around the cycle.
    let latency_between = |from: usize, _to: usize| u64::from(ddg.latency_of(from));
    let (critical_cds, recurrence_latency) = cds_list
        .iter()
        .map(|cds| (cds, cycle_latency(cds, latency_between)))
        .max_by_key(|(_, lat)| *lat)
        .expect("at least one CDS");
    let recurrence_latency = recurrence_latency.max(1) as u32;

    // A recurrence that goes through memory (e.g. pointer chasing) has an
    // unknown true latency: the analysis assumes cache hits (§4.2), but a
    // miss makes the real initiation interval far larger, in which case the
    // window computed below would needlessly serialise the independent work
    // that hides the miss. Such loops are left unbounded.
    if critical_cds.iter().any(|&idx| real[idx].opcode.is_load()) {
        return LoopRequirement {
            entries: None,
            recurrence_latency,
            body_len: n as u32,
            iteration_offsets: vec![0; n],
        };
    }

    // Representative: the earliest instruction of the critical CDS.
    let representative = *critical_cds.iter().min().expect("non-empty CDS");

    // Longest dataflow distance (in cycles) from the representative to every
    // instruction along intra-iteration edges. Rewriting the per-instruction
    // equations to eliminate constants (Figure 4(c)) is equivalent to
    // converting these distances into iteration offsets of the
    // representative: offset = ceil(distance / recurrence_latency).
    let forward = ddg.forward_weighted_edges();
    let dist = longest_paths_forward(n, representative, &forward);
    let offsets: Vec<u32> = (0..n)
        .map(|idx| match dist[idx] {
            Some(d) => d.div_ceil(u64::from(recurrence_latency)) as u32,
            None => 0,
        })
        .collect();

    // Entry requirement: for instruction j with offset k, the queue must hold
    // the tail of iteration i starting at j, the (k-1) full intermediate
    // iterations, and iteration i+k up to and including the representative.
    let rep_idx = representative as u32;
    let body_len = n as u32;
    let mut entries: u32 = 1;
    for (idx, &k) in offsets.iter().enumerate() {
        let idx = idx as u32;
        let needed = if k == 0 {
            if rep_idx >= idx {
                rep_idx - idx + 1
            } else {
                1
            }
        } else {
            (body_len - idx) + (k - 1) * body_len + (rep_idx + 1)
        };
        entries = entries.max(needed);
    }

    LoopRequirement {
        entries: Some(entries.min(iq_capacity.max(1))),
        recurrence_latency,
        body_len,
        iteration_offsets: offsets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_isa::reg::int_reg;
    use sdiq_isa::Opcode;

    /// The loop body of Figure 4:
    /// a: a = a + 1 ; b: b = a + 1 ; c: c = b + 1 ; d: d = b + 1 ;
    /// e: e = d + 1 ; f: f = c + 1   (all unit latency).
    fn figure4_body() -> Vec<Instruction> {
        vec![
            Instruction::rri(Opcode::Addi, int_reg(1), int_reg(1), 1), // a
            Instruction::rri(Opcode::Addi, int_reg(2), int_reg(1), 1), // b
            Instruction::rri(Opcode::Addi, int_reg(3), int_reg(2), 1), // c
            Instruction::rri(Opcode::Addi, int_reg(4), int_reg(2), 1), // d
            Instruction::rri(Opcode::Addi, int_reg(5), int_reg(4), 1), // e
            Instruction::rri(Opcode::Addi, int_reg(6), int_reg(3), 1), // f
        ]
    }

    #[test]
    fn figure4_needs_fifteen_entries() {
        let req = analyse_loop_body(&figure4_body(), 80);
        assert_eq!(req.entries, Some(15));
        assert_eq!(req.recurrence_latency, 1);
        assert_eq!(req.body_len, 6);
    }

    #[test]
    fn figure4_iteration_offsets_match_the_paper() {
        let req = analyse_loop_body(&figure4_body(), 80);
        // b leaves with a of the next iteration, c and d two iterations out,
        // e and f three iterations out (Figure 4(c)).
        assert_eq!(req.iteration_offsets, vec![0, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn requirement_is_capped_at_queue_capacity() {
        let req = analyse_loop_body(&figure4_body(), 8);
        assert_eq!(req.entries, Some(8));
    }

    #[test]
    fn slow_recurrence_shrinks_the_window() {
        // The recurrence goes through a multiply (3 cycles): consumers only
        // run one iteration ahead per 3 cycles of dataflow, so fewer entries
        // are needed than with a unit-latency recurrence.
        let body = vec![
            Instruction::rrr(Opcode::Mul, int_reg(1), int_reg(1), int_reg(7)), // a = a * k
            Instruction::rri(Opcode::Addi, int_reg(2), int_reg(1), 1),         // b = a + 1
            Instruction::rri(Opcode::Addi, int_reg(3), int_reg(2), 1),         // c = b + 1
        ];
        let req = analyse_loop_body(&body, 80);
        assert_eq!(req.recurrence_latency, 3);
        // offsets: a=0, b=ceil(3/3)=1, c=ceil(4/3)=2
        assert_eq!(req.iteration_offsets, vec![0, 1, 2]);
        // entries: from c: (3-2) + (2-1)*3 + 1 = 5.
        assert_eq!(req.entries, Some(5));
    }

    #[test]
    fn fully_parallel_loop_is_unbounded() {
        // No loop-carried dependence at all (each iteration writes registers
        // it first defines itself).
        let body = vec![
            Instruction::ri(Opcode::Li, int_reg(1), 3),
            Instruction::rri(Opcode::Addi, int_reg(2), int_reg(1), 1),
        ];
        let req = analyse_loop_body(&body, 80);
        assert_eq!(req.entries, None);
    }

    #[test]
    fn single_instruction_recurrence_needs_whole_iteration_window() {
        // Just the induction variable: a = a + 1. Only one entry is needed —
        // the next iteration's a can enter as soon as this one leaves.
        let body = vec![Instruction::rri(Opcode::Addi, int_reg(1), int_reg(1), 1)];
        let req = analyse_loop_body(&body, 80);
        assert_eq!(req.entries, Some(1));
        assert_eq!(req.iteration_offsets, vec![0]);
    }

    #[test]
    fn empty_body_needs_one_entry() {
        let req = analyse_loop_body(&[], 80);
        assert_eq!(req.entries, Some(1));
    }

    #[test]
    fn hint_noops_in_body_are_ignored() {
        let mut body = figure4_body();
        body.insert(0, Instruction::hint_noop(9));
        let req = analyse_loop_body(&body, 80);
        assert_eq!(req.entries, Some(15));
        assert_eq!(req.body_len, 6);
    }

    #[test]
    fn larger_body_with_same_recurrence_needs_more_entries() {
        let small = analyse_loop_body(&figure4_body(), 1024);
        let mut big_body = figure4_body();
        // Extend the chain after f with two more dependent adds.
        big_body.push(Instruction::rri(Opcode::Addi, int_reg(7), int_reg(6), 1));
        big_body.push(Instruction::rri(Opcode::Addi, int_reg(8), int_reg(7), 1));
        let big = analyse_loop_body(&big_body, 1024);
        assert!(big.entries.unwrap() > small.entries.unwrap());
    }
}
