//! The profiled low-energy encoding pass (the `lowen-isa` technique).
//!
//! Sleeba et al. (see PAPERS.md) re-encode the instructions a profile says
//! dominate execution time in a reduced-toggle "low-energy" format: the
//! encoding is architecturally transparent — same semantics, same latency —
//! but costs less fetch/decode energy. In the static setting of this
//! reproduction the profile proxy is loop membership: every block inside a
//! natural loop is where the dynamic instruction stream concentrates, so
//! those blocks are selected for re-encoding.
//!
//! The pass is a pure marker producer: it records the selected blocks in
//! [`Annotations::low_energy_blocks`] and the emit pass applies the marker
//! to the output program. Timing is never affected — the simulator only
//! counts committed low-energy instructions
//! (`ActivityStats::committed_low_energy`), and the energy accounting in
//! `sdiq_power` turns that count into savings at reporting time.

use crate::manager::{Pass, PassState};
use sdiq_isa::BlockRef;

/// The registered low-energy re-encoding pass. Runs after the window
/// analyses (it reuses their per-procedure loop forests) and before `emit`.
pub struct LowEnergyEncode;

/// The registry name of the pass (what [`Pass::name`] returns and what the
/// inter-pass verifier dispatches on).
pub const PASS_NAME: &str = "low-energy-encode";

impl Pass for LowEnergyEncode {
    fn name(&self) -> &'static str {
        PASS_NAME
    }

    fn description(&self) -> &'static str {
        "select loop blocks for the profiled low-energy instruction encoding"
    }

    fn run(&self, state: &mut PassState<'_>) {
        for (pid, analysis) in &state.analyses {
            for block in analysis.loops.all_loop_blocks() {
                state
                    .annotations
                    .low_energy_blocks
                    .insert(BlockRef { proc: *pid, block });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::pass::{CompilerPass, PassConfig};
    use sdiq_isa::builder::ProgramBuilder;
    use sdiq_isa::reg::int_reg;
    use sdiq_isa::Program;

    fn looped_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let body = p.block();
            let exit = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 0);
                bb.jump(body);
            });
            p.with_block(body, |bb| {
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.blt(int_reg(1), 10, body, exit);
            });
            p.with_block(exit, |bb| {
                bb.ret();
            });
            p.set_entry(entry);
        }
        b.finish(main).unwrap()
    }

    #[test]
    fn marks_exactly_the_loop_blocks() {
        let program = looped_program();
        let compiled = CompilerPass::new(PassConfig::low_energy_encoding()).run(&program);
        assert_eq!(compiled.annotations.low_energy_blocks.len(), 1);
        let main = program.proc_by_name("main").unwrap();
        for inst in &compiled
            .program
            .proc(main)
            .block(sdiq_isa::BlockId(1))
            .instructions
        {
            assert!(inst.low_energy, "loop-body instruction not re-encoded");
        }
        for inst in &compiled
            .program
            .proc(main)
            .block(sdiq_isa::BlockId(0))
            .instructions
        {
            assert!(!inst.low_energy, "non-loop instruction re-encoded");
        }
    }

    #[test]
    fn pass_is_off_unless_configured() {
        let program = looped_program();
        let compiled = CompilerPass::new(PassConfig::tagging()).run(&program);
        assert!(compiled.annotations.low_energy_blocks.is_empty());
        assert!(compiled
            .program
            .iter_locs()
            .all(|l| !compiled.program.instruction(l).low_energy));
    }

    #[test]
    fn low_energy_rewrite_never_changes_instruction_semantics() {
        let program = looped_program();
        let plain = CompilerPass::new(PassConfig::tagging()).run(&program);
        let lowen = CompilerPass::new(PassConfig::low_energy_encoding()).run(&program);
        assert_eq!(
            plain.program.static_instruction_count(),
            lowen.program.static_instruction_count()
        );
        for (a, b) in plain.program.iter_locs().zip(lowen.program.iter_locs()) {
            let pa = plain.program.instruction(a);
            let pb = lowen.program.instruction(b);
            assert_eq!(pa.opcode, pb.opcode);
            assert_eq!(pa.dest, pb.dest);
            assert_eq!(pa.srcs, pb.srcs);
            assert_eq!(pa.iq_hint, pb.iq_hint);
        }
    }
}
