//! A real pass manager: the compiler pipeline as registered named passes.
//!
//! [`crate::CompilerPass::run`] used to be one monolithic function; it is
//! now a thin wrapper over this module, which runs the same stages as
//! separately registered [`Pass`] units over a shared [`PassState`]:
//!
//! | order | name                 | effect on the state                    |
//! |-------|----------------------|----------------------------------------|
//! | 1     | `analyse-procedures` | CFG / dominators / loops / DAG regions |
//! | 2     | `loop-windows`       | CDS windows for every natural loop     |
//! | 3     | `dag-windows`        | pseudo-IQ windows for every DAG block  |
//! | 4     | `call-windows`       | §4.4 call-site handling                |
//! | 5     | `interprocedural-fu` | §5.3 cross-procedure FU contention (*) |
//! | 6     | `emit`               | rewrite the program with the hints     |
//!
//! (*) registered only when [`PassConfig::interprocedural_fu`] is set.
//!
//! A [`PassVerifier`] can be attached to the manager; it runs between
//! passes and fails the pipeline with the offending pass's name and
//! structured diagnostics. `sdiq-verify` provides the real implementation;
//! keeping the trait here (with a plain string-code diagnostic type) avoids
//! a dependency cycle between the two crates.
//!
//! The decomposition is bit-identical to the old monolith: stages run in
//! the same relative order over the same data, and the emitted program,
//! annotations and requirements are byte-for-byte what `CompilerPass::run`
//! always produced.

use crate::annotate::{emit, Annotations};
use crate::dag_analysis::{analyse_block, BlockRequirement};
use crate::loop_analysis::analyse_loop_body;
use crate::pass::{CompileStats, CompiledProgram, LoopInfo, PassConfig, ProcedureStats};
use sdiq_ir::ProcedureAnalysis;
use sdiq_isa::{BlockRef, Instruction, ProcId, Program};
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;

/// Mutable state threaded through the pipeline. Passes read what earlier
/// passes produced and append their own results.
pub struct PassState<'p> {
    /// The input program. Never mutated — the rewrite lands in [`output`].
    ///
    /// [`output`]: PassState::output
    pub program: &'p Program,
    /// The configuration the pipeline runs with.
    pub config: PassConfig,
    /// Per-procedure analyses, one entry per non-library procedure, in
    /// program order (index-aligned with [`PassState::per_procedure`]).
    pub analyses: Vec<(ProcId, ProcedureAnalysis)>,
    /// Annotations accumulated so far.
    pub annotations: Annotations,
    /// Pseudo-issue-queue results per analysed DAG block.
    pub block_requirements: HashMap<BlockRef, BlockRequirement>,
    /// CDS results per analysed loop.
    pub loop_requirements: Vec<LoopInfo>,
    /// Non-library call sites, recorded for the inter-procedural pass.
    pub call_sites: Vec<(BlockRef, ProcId)>,
    /// Per-procedure statistics, filled in as passes touch each procedure.
    pub per_procedure: Vec<ProcedureStats>,
    /// The rewritten program; set by the `emit` pass.
    pub output: Option<Program>,
}

impl<'p> PassState<'p> {
    fn new(program: &'p Program, config: PassConfig) -> Self {
        PassState {
            program,
            config,
            analyses: Vec::new(),
            annotations: Annotations::default(),
            block_requirements: HashMap::new(),
            loop_requirements: Vec::new(),
            call_sites: Vec::new(),
            per_procedure: Vec::new(),
            output: None,
        }
    }
}

/// One named, registered unit of the compiler pipeline.
pub trait Pass {
    /// Stable pass name (shown in diagnostics and the pass listing).
    fn name(&self) -> &'static str;
    /// One-line description for `EXPERIMENTS.md`-style listings.
    fn description(&self) -> &'static str;
    /// Runs the pass over the shared state.
    fn run(&self, state: &mut PassState<'_>);
}

/// A structured inter-pass diagnostic. The stable `code` namespace is
/// owned by `sdiq-verify` (see the diagnostic-code table in
/// `EXPERIMENTS.md`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassDiagnostic {
    /// Stable machine-readable code (e.g. `ENV001`).
    pub code: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for PassDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// Hook run between passes. Implemented by `sdiq-verify`; returning any
/// diagnostic aborts the pipeline.
pub trait PassVerifier {
    /// Checks the state right after the pass named `pass` ran.
    fn verify_after(&self, pass: &str, state: &PassState<'_>) -> Vec<PassDiagnostic>;
}

/// A failed inter-pass verification: which pass broke the invariant, and
/// how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Name of the pass after which verification failed.
    pub pass: String,
    /// The violated invariants.
    pub diagnostics: Vec<PassDiagnostic>,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "verification failed after compiler pass `{}` ({} diagnostic(s)):",
            self.pass,
            self.diagnostics.len()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// The pass manager: an ordered registry of passes plus an optional
/// inter-pass verifier.
pub struct PassManager {
    config: PassConfig,
    passes: Vec<Box<dyn Pass>>,
    verifier: Option<Box<dyn PassVerifier>>,
}

impl PassManager {
    /// An empty manager with no passes registered.
    pub fn new(config: PassConfig) -> Self {
        PassManager {
            config,
            passes: Vec::new(),
            verifier: None,
        }
    }

    /// The standard pipeline of Figure 5, in order (the inter-procedural
    /// pass is registered only when the configuration asks for it).
    pub fn standard(config: PassConfig) -> Self {
        let mut m = PassManager::new(config);
        m.register(Box::new(AnalyseProcedures));
        m.register(Box::new(LoopWindows));
        m.register(Box::new(DagWindows));
        m.register(Box::new(CallWindows));
        if config.interprocedural_fu {
            m.register(Box::new(InterproceduralFu));
        }
        if config.low_energy {
            m.register(Box::new(crate::low_energy::LowEnergyEncode));
        }
        m.register(Box::new(EmitAnnotations));
        m
    }

    /// Appends a pass to the pipeline.
    pub fn register(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Attaches an inter-pass verifier (run after every pass).
    pub fn with_verifier(mut self, verifier: Box<dyn PassVerifier>) -> Self {
        self.verifier = Some(verifier);
        self
    }

    /// The registered passes, in execution order.
    pub fn passes(&self) -> impl Iterator<Item = &dyn Pass> {
        self.passes.iter().map(|p| p.as_ref())
    }

    /// Runs the pipeline over `program`. Fails only when a verifier is
    /// attached and an inter-pass invariant is violated.
    pub fn run(&self, program: &Program) -> Result<CompiledProgram, VerifyError> {
        let start = Instant::now();
        let mut state = PassState::new(program, self.config);
        for pass in &self.passes {
            pass.run(&mut state);
            if let Some(verifier) = &self.verifier {
                let diagnostics = verifier.verify_after(pass.name(), &state);
                if !diagnostics.is_empty() {
                    return Err(VerifyError {
                        pass: pass.name().to_string(),
                        diagnostics,
                    });
                }
            }
        }
        let annotated_program = state.output.take().unwrap_or_else(|| state.program.clone());
        let stats = CompileStats {
            annotated_blocks: state.annotations.block_entries.len(),
            hint_noops_inserted: annotated_program.hint_noop_count(),
            per_procedure: state.per_procedure,
            total_duration: start.elapsed(),
        };
        Ok(CompiledProgram {
            program: annotated_program,
            annotations: state.annotations,
            config: self.config,
            stats,
            block_requirements: state.block_requirements,
            loop_requirements: state.loop_requirements,
        })
    }
}

/// Pass 1: per-procedure CFG, dominator, loop and region analysis.
struct AnalyseProcedures;

impl Pass for AnalyseProcedures {
    fn name(&self) -> &'static str {
        "analyse-procedures"
    }
    fn description(&self) -> &'static str {
        "build CFG, dominator tree, natural loops and DAG regions per procedure"
    }
    fn run(&self, state: &mut PassState<'_>) {
        for (pid, proc) in state.program.iter_procs() {
            if proc.is_library {
                continue;
            }
            let proc_start = Instant::now();
            let analysis = ProcedureAnalysis::analyse(proc);
            state.per_procedure.push(ProcedureStats {
                name: proc.name.clone(),
                blocks_analysed: 0,
                loops_analysed: analysis.loops.loops().len(),
                dag_regions: analysis.regions.regions().len(),
                duration: proc_start.elapsed(),
            });
            state.analyses.push((pid, analysis));
        }
    }
}

/// Pass 2: CDS analysis of every natural loop; the window lands in the
/// loop's pre-header(s).
struct LoopWindows;

impl Pass for LoopWindows {
    fn name(&self) -> &'static str {
        "loop-windows"
    }
    fn description(&self) -> &'static str {
        "cyclic-dependence-set windows for natural loops (§4.3)"
    }
    fn run(&self, state: &mut PassState<'_>) {
        let iq_capacity = state.config.widths.iq_capacity as u32;
        for (proc_idx, (pid, analysis)) in state.analyses.iter().enumerate() {
            let pid = *pid;
            let proc = state.program.proc(pid);
            let pass_start = Instant::now();
            for (loop_idx, natural_loop) in analysis.loops.loops().iter().enumerate() {
                let mut blocks: Vec<_> = analysis
                    .loops
                    .exclusive_blocks(loop_idx)
                    .into_iter()
                    .collect();
                blocks.sort_by_key(|b| analysis.cfg.rpo_index(*b).unwrap_or(usize::MAX));
                let body: Vec<Instruction> = blocks
                    .iter()
                    .flat_map(|b| proc.block(*b).instructions.iter().cloned())
                    .collect();
                let requirement = analyse_loop_body(&body, iq_capacity);
                let value = requirement.entries.unwrap_or(iq_capacity).clamp(
                    state.config.min_advertised_entries.min(iq_capacity),
                    iq_capacity,
                );
                // The hint is placed in the loop's pre-header(s): every CFG
                // predecessor of the header that lies outside the loop. It is
                // decoded once on entry and stays in force for the whole loop,
                // so the advertised window bounds the loop's total residency
                // (placing it inside the loop would reset the region every
                // iteration and defeat the limit).
                let mut placed = false;
                for &pred in analysis.cfg.preds(natural_loop.header) {
                    if !natural_loop.body.contains(&pred) {
                        state.annotations.loop_preheader_entries.insert(
                            BlockRef {
                                proc: pid,
                                block: pred,
                            },
                            value,
                        );
                        placed = true;
                    }
                }
                if !placed {
                    // Fallback (header with no out-of-loop predecessor, e.g. a
                    // procedure entry that is itself a loop header).
                    state.annotations.block_entries.insert(
                        BlockRef {
                            proc: pid,
                            block: natural_loop.header,
                        },
                        value,
                    );
                }
                state.loop_requirements.push(LoopInfo {
                    proc: pid,
                    header: natural_loop.header,
                    requirement,
                });
            }
            state.per_procedure[proc_idx].duration += pass_start.elapsed();
        }
    }
}

/// Pass 3: pseudo-issue-queue analysis of every DAG block (§4.2), in
/// breadth-first region order.
struct DagWindows;

impl Pass for DagWindows {
    fn name(&self) -> &'static str {
        "dag-windows"
    }
    fn description(&self) -> &'static str {
        "pseudo-issue-queue windows for DAG blocks (§4.2)"
    }
    fn run(&self, state: &mut PassState<'_>) {
        let iq_capacity = state.config.widths.iq_capacity as u32;
        let issue_width = state.config.widths.pipeline_width;
        for (proc_idx, (pid, analysis)) in state.analyses.iter().enumerate() {
            let pid = *pid;
            let proc = state.program.proc(pid);
            let pass_start = Instant::now();
            let mut blocks_analysed = 0usize;
            for region in analysis.regions.regions() {
                for &bid in &region.blocks {
                    let block = proc.block(bid);
                    let requirement =
                        analyse_block(&block.instructions, issue_width, &state.config.fu_counts);
                    let block_ref = BlockRef {
                        proc: pid,
                        block: bid,
                    };
                    let value = requirement.entries.clamp(
                        state.config.min_advertised_entries.min(iq_capacity),
                        iq_capacity,
                    );
                    state.annotations.block_entries.insert(block_ref, value);
                    state.block_requirements.insert(block_ref, requirement);
                    blocks_analysed += 1;
                }
            }
            state.per_procedure[proc_idx].blocks_analysed = blocks_analysed;
            state.per_procedure[proc_idx].duration += pass_start.elapsed();
        }
    }
}

/// Pass 4: call handling (§4.4) — library callees force the maximum size
/// immediately before the call; other callees are recorded for the
/// optional inter-procedural adjustment.
struct CallWindows;

impl Pass for CallWindows {
    fn name(&self) -> &'static str {
        "call-windows"
    }
    fn description(&self) -> &'static str {
        "library-call maximum-size hints and call-site recording (§4.4)"
    }
    fn run(&self, state: &mut PassState<'_>) {
        for (pid, _analysis) in &state.analyses {
            let pid = *pid;
            let proc = state.program.proc(pid);
            for (bid, block) in proc.iter_blocks() {
                if let Some(callee) = block.callee() {
                    let block_ref = BlockRef {
                        proc: pid,
                        block: bid,
                    };
                    if state.program.proc(callee).is_library {
                        state.annotations.max_before_call.push(block_ref);
                    } else {
                        state.call_sites.push((block_ref, callee));
                    }
                }
            }
        }
    }
}

/// Pass 5 (optional): functional-unit contention across procedure
/// boundaries. Instructions of the calling region are still in flight
/// while the callee starts executing, competing for functional units.
/// Giving the callee's entry region and the post-call region a window that
/// also covers the caller's in-flight instructions lets the scheduler find
/// enough independent work, which is what removes most of the residual IPC
/// loss in §5.3.
struct InterproceduralFu;

impl Pass for InterproceduralFu {
    fn name(&self) -> &'static str {
        "interprocedural-fu"
    }
    fn description(&self) -> &'static str {
        "widen windows across call boundaries for FU contention (§5.3)"
    }
    fn run(&self, state: &mut PassState<'_>) {
        let iq_capacity = state.config.widths.iq_capacity as u32;
        let annotations = &mut state.annotations;
        let mut adjustments: HashMap<BlockRef, u32> = HashMap::new();
        let mut preheader_adjustments: HashMap<BlockRef, u32> = HashMap::new();
        for (caller_block, callee) in &state.call_sites {
            let caller_req = annotations
                .block_entries
                .get(caller_block)
                .copied()
                .unwrap_or(1);
            let callee_entry = BlockRef {
                proc: *callee,
                block: state.program.proc(*callee).entry,
            };
            let callee_req = annotations
                .block_entries
                .get(&callee_entry)
                .copied()
                .unwrap_or(1);
            // Callee entry sees the caller's leftovers.
            let e = adjustments.entry(callee_entry).or_insert(callee_req);
            *e = (*e).max(callee_req + caller_req).min(iq_capacity);
            // If the callee's entry block is also the pre-header of its
            // hot loop, widen the loop window by the same amount — the
            // loop's instructions contend for functional units with the
            // caller's still-in-flight region.
            if let Some(&loop_value) = annotations.loop_preheader_entries.get(&callee_entry) {
                let e = preheader_adjustments
                    .entry(callee_entry)
                    .or_insert(loop_value);
                *e = (*e).max(loop_value + caller_req).min(iq_capacity);
            }
            // The post-call block sees the callee's leftovers.
            if let Some(after) = state
                .program
                .proc(caller_block.proc)
                .block(caller_block.block)
                .fallthrough
            {
                let after_ref = BlockRef {
                    proc: caller_block.proc,
                    block: after,
                };
                let after_req = annotations
                    .block_entries
                    .get(&after_ref)
                    .copied()
                    .unwrap_or(1);
                let e = adjustments.entry(after_ref).or_insert(after_req);
                *e = (*e).max(after_req + callee_req).min(iq_capacity);
            }
        }
        for (block_ref, value) in adjustments {
            annotations.block_entries.insert(block_ref, value);
        }
        for (block_ref, value) in preheader_adjustments {
            annotations.loop_preheader_entries.insert(block_ref, value);
        }
    }
}

/// Pass 6: rewrite the program with the accumulated annotations.
struct EmitAnnotations;

impl Pass for EmitAnnotations {
    fn name(&self) -> &'static str {
        "emit"
    }
    fn description(&self) -> &'static str {
        "encode the windows as special NOOPs or instruction tags (§3)"
    }
    fn run(&self, state: &mut PassState<'_>) {
        state.output = Some(emit(state.program, &state.annotations, state.config.emit));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompilerPass;
    use sdiq_isa::builder::ProgramBuilder;
    use sdiq_isa::reg::int_reg;

    fn looped_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let body = p.block();
            let exit = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 0);
                bb.jump(body);
            });
            p.with_block(body, |bb| {
                bb.addi(int_reg(2), int_reg(1), 1);
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.blt(int_reg(1), 20, body, exit);
            });
            p.with_block(exit, |bb| {
                bb.ret();
            });
            p.set_entry(entry);
        }
        b.finish(main).unwrap()
    }

    #[test]
    fn standard_pipeline_lists_named_passes_in_order() {
        let m = PassManager::standard(PassConfig::noop_insertion());
        let names: Vec<_> = m.passes().map(|p| p.name()).collect();
        assert_eq!(
            names,
            vec![
                "analyse-procedures",
                "loop-windows",
                "dag-windows",
                "call-windows",
                "emit"
            ]
        );
        let improved = PassManager::standard(PassConfig::improved());
        assert!(improved.passes().any(|p| p.name() == "interprocedural-fu"));
        let lowen = PassManager::standard(PassConfig::low_energy_encoding());
        let lowen_names: Vec<_> = lowen.passes().map(|p| p.name()).collect();
        assert_eq!(
            lowen_names,
            vec![
                "analyse-procedures",
                "loop-windows",
                "dag-windows",
                "call-windows",
                "low-energy-encode",
                "emit"
            ]
        );
    }

    #[test]
    fn compiler_pass_delegates_to_the_manager() {
        let program = looped_program();
        for config in [
            PassConfig::noop_insertion(),
            PassConfig::tagging(),
            PassConfig::improved(),
        ] {
            let a = CompilerPass::new(config).run(&program);
            let b = PassManager::standard(config).run(&program).unwrap();
            assert_eq!(a.program, b.program);
            assert_eq!(a.annotations, b.annotations);
            assert_eq!(a.block_requirements, b.block_requirements);
            assert_eq!(a.loop_requirements, b.loop_requirements);
            assert_eq!(a.stats.annotated_blocks, b.stats.annotated_blocks);
            assert_eq!(a.stats.hint_noops_inserted, b.stats.hint_noops_inserted);
        }
    }

    #[test]
    fn verifier_failure_names_the_offending_pass() {
        struct FailAfterLoops;
        impl PassVerifier for FailAfterLoops {
            fn verify_after(&self, pass: &str, _state: &PassState<'_>) -> Vec<PassDiagnostic> {
                if pass == "loop-windows" {
                    vec![PassDiagnostic {
                        code: "TEST001".to_string(),
                        message: "synthetic failure".to_string(),
                    }]
                } else {
                    Vec::new()
                }
            }
        }
        let program = looped_program();
        let err = PassManager::standard(PassConfig::noop_insertion())
            .with_verifier(Box::new(FailAfterLoops))
            .run(&program)
            .unwrap_err();
        assert_eq!(err.pass, "loop-windows");
        assert_eq!(err.diagnostics[0].code, "TEST001");
        assert!(err.to_string().contains("loop-windows"));
    }

    #[test]
    fn clean_verifier_passes_through() {
        struct Clean;
        impl PassVerifier for Clean {
            fn verify_after(&self, _pass: &str, _state: &PassState<'_>) -> Vec<PassDiagnostic> {
                Vec::new()
            }
        }
        let program = looped_program();
        let compiled = PassManager::standard(PassConfig::tagging())
            .with_verifier(Box::new(Clean))
            .run(&program)
            .unwrap();
        assert!(compiled.program.validate().is_ok());
    }
}
