//! The whole-program compiler pass (Figure 5 of the paper).

use crate::annotate::{Annotations, EmitKind};
use crate::dag_analysis::BlockRequirement;
use crate::loop_analysis::LoopRequirement;
use crate::manager::{PassManager, PassVerifier, VerifyError};
use sdiq_isa::{BlockId, BlockRef, FuCounts, MachineWidths, ProcId, Program};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::Duration;

/// Configuration of the compiler pass.
///
/// `PassConfig` is `Hash + Eq` so it can serve as (part of) a
/// content-address in the experiment layer's artifact cache: two cells that
/// agree on the pass configuration share one compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PassConfig {
    /// Pipeline widths and capacities of the target machine (Table 1).
    pub widths: MachineWidths,
    /// Functional-unit pools of the target machine (Table 1).
    pub fu_counts: FuCounts,
    /// How resize information is carried to the processor.
    pub emit: EmitKind,
    /// Model functional-unit contention across procedure boundaries (the
    /// *Improved* technique of §5.3).
    pub interprocedural_fu: bool,
    /// Run the profiled low-energy encoding pass (`lowen-isa`): blocks
    /// inside natural loops — where the profile says execution time is
    /// spent — are re-encoded with the low-energy instruction format. A
    /// pure energy-accounting rewrite; it never changes timing.
    pub low_energy: bool,
    /// Floor applied to every advertised window.
    ///
    /// The analysis of §4.2 can report requirements smaller than the
    /// machine's dispatch width for very small basic blocks (a couple of
    /// instructions). Advertising fewer entries than the dispatch width can
    /// starve the front end for regions whose upward-exposed operands are
    /// produced by long-latency instructions in *earlier* regions — a
    /// situation the paper's conservative control-flow summarisation absorbs
    /// on real SPEC basic blocks. Flooring the advertised value (at two
    /// dispatch groups' worth of instructions by default) keeps the
    /// synthetic workloads' many tiny blocks from throttling dispatch while
    /// leaving loop and large-block windows untouched.
    pub min_advertised_entries: u32,
}

impl PassConfig {
    /// The advertised-entries floor for a machine: two dispatch groups'
    /// worth of instructions (see the `min_advertised_entries` field docs).
    /// The one source of truth for the formula — retargeting re-derives it.
    fn advertised_floor(widths: MachineWidths) -> u32 {
        2 * widths.pipeline_width as u32
    }

    /// The paper's base NOOP-insertion technique (§5.2).
    pub fn noop_insertion() -> Self {
        let widths = MachineWidths::hpca2005();
        PassConfig {
            widths,
            fu_counts: FuCounts::hpca2005(),
            emit: EmitKind::NoopInsertion,
            interprocedural_fu: false,
            low_energy: false,
            min_advertised_entries: PassConfig::advertised_floor(widths),
        }
    }

    /// Retargets this configuration at a different machine, keeping the
    /// emission kind and analysis flags but re-deriving the
    /// width-dependent advertised floor. Configuration sweeps use this so
    /// software techniques compile against the capacity they will run on.
    pub fn retargeted(self, widths: MachineWidths, fu_counts: FuCounts) -> Self {
        PassConfig {
            widths,
            fu_counts,
            min_advertised_entries: PassConfig::advertised_floor(widths),
            ..self
        }
    }

    /// The *Extension* technique: resize information passed via instruction
    /// tags instead of special NOOPs (§5.3).
    pub fn tagging() -> Self {
        PassConfig {
            emit: EmitKind::Tagging,
            ..PassConfig::noop_insertion()
        }
    }

    /// The *Improved* technique: tagging plus inter-procedural functional-
    /// unit contention analysis (§5.3).
    pub fn improved() -> Self {
        PassConfig {
            emit: EmitKind::Tagging,
            interprocedural_fu: true,
            ..PassConfig::noop_insertion()
        }
    }

    /// The `lowen-isa` technique: the profiled low-energy instruction
    /// encoding of Sleeba et al. Tags carry the (unused, policy-inert)
    /// window information; the distinguishing work is the
    /// [`low_energy`](PassConfig::low_energy) re-encoding pass.
    pub fn low_energy_encoding() -> Self {
        PassConfig {
            emit: EmitKind::Tagging,
            low_energy: true,
            ..PassConfig::noop_insertion()
        }
    }
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig::noop_insertion()
    }
}

/// Per-procedure compile statistics (the raw material of Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcedureStats {
    /// Procedure name.
    pub name: String,
    /// Number of DAG blocks analysed with the pseudo issue queue.
    pub blocks_analysed: usize,
    /// Number of loops analysed with the CDS method.
    pub loops_analysed: usize,
    /// Number of DAG regions formed.
    pub dag_regions: usize,
    /// Wall-clock time spent analysing the procedure.
    pub duration: Duration,
}

/// Whole-program compile statistics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CompileStats {
    /// One entry per analysed (non-library) procedure.
    pub per_procedure: Vec<ProcedureStats>,
    /// Total wall-clock time of the pass, including annotation emission.
    pub total_duration: Duration,
    /// Number of blocks that received an annotation.
    pub annotated_blocks: usize,
    /// Number of special NOOPs present in the output program.
    pub hint_noops_inserted: usize,
}

/// Requirement computed for one loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopInfo {
    /// Procedure owning the loop.
    pub proc: ProcId,
    /// Header block of the loop.
    pub header: BlockId,
    /// The computed requirement.
    pub requirement: LoopRequirement,
}

/// The output of the compiler pass.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The rewritten program carrying the issue-queue size information.
    pub program: Program,
    /// The annotations that were emitted (useful for inspection and tests).
    pub annotations: Annotations,
    /// The configuration the pass ran with.
    pub config: PassConfig,
    /// Compile statistics.
    pub stats: CompileStats,
    /// Pseudo-issue-queue results per analysed DAG block.
    pub block_requirements: HashMap<BlockRef, BlockRequirement>,
    /// CDS results per analysed loop.
    pub loop_requirements: Vec<LoopInfo>,
}

/// The compiler pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompilerPass {
    config: PassConfig,
}

impl CompilerPass {
    /// Creates a pass with the given configuration.
    pub fn new(config: PassConfig) -> Self {
        CompilerPass { config }
    }

    /// The pass configuration.
    pub fn config(&self) -> &PassConfig {
        &self.config
    }

    /// Runs the pass over `program`, returning the annotated program plus
    /// all intermediate analysis results.
    ///
    /// Delegates to the standard pipeline of [`PassManager::standard`]; with
    /// no verifier attached the pipeline cannot fail.
    pub fn run(&self, program: &Program) -> CompiledProgram {
        match PassManager::standard(self.config).run(program) {
            Ok(compiled) => compiled,
            Err(err) => unreachable!("standard pipeline has no verifier: {err}"),
        }
    }

    /// Runs the pass with `verifier` checked between every registered pass,
    /// failing fast on the first violated invariant.
    pub fn run_verified(
        &self,
        program: &Program,
        verifier: Box<dyn PassVerifier>,
    ) -> Result<CompiledProgram, VerifyError> {
        PassManager::standard(self.config)
            .with_verifier(verifier)
            .run(program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_isa::builder::ProgramBuilder;
    use sdiq_isa::reg::int_reg;

    /// A program with a loop, a call to a helper and a call to a library
    /// routine.
    fn mixed_program() -> Program {
        let mut b = ProgramBuilder::new();
        let lib = b.library_procedure("memcpy");
        {
            let p = b.proc_mut(lib);
            let e = p.block();
            p.with_block(e, |bb| {
                bb.nop();
                bb.ret();
            });
            p.set_entry(e);
        }
        let helper = b.procedure("helper");
        {
            let p = b.proc_mut(helper);
            let e = p.block();
            p.with_block(e, |bb| {
                bb.addi(int_reg(10), int_reg(10), 1);
                bb.addi(int_reg(11), int_reg(10), 2);
                bb.addi(int_reg(12), int_reg(11), 3);
                bb.ret();
            });
            p.set_entry(e);
        }
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let loop_body = p.block();
            let after_loop = p.block();
            let after_helper = p.block();
            let after_lib = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 0);
                bb.li(int_reg(2), 0);
                bb.jump(loop_body);
            });
            p.with_block(loop_body, |bb| {
                bb.addi(int_reg(2), int_reg(2), 3);
                bb.addi(int_reg(3), int_reg(2), 1);
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.blt(int_reg(1), 50, loop_body, after_loop);
            });
            p.with_block(after_loop, |bb| {
                bb.call(helper, after_helper);
            });
            p.with_block(after_helper, |bb| {
                bb.call(lib, after_lib);
            });
            p.with_block(after_lib, |bb| {
                bb.addi(int_reg(4), int_reg(3), 1);
                bb.ret();
            });
            p.set_entry(entry);
        }
        b.finish(main).unwrap()
    }

    #[test]
    fn noop_pass_annotates_blocks_and_loops() {
        let program = mixed_program();
        let compiled = CompilerPass::new(PassConfig::noop_insertion()).run(&program);
        assert!(compiled.program.validate().is_ok());
        assert!(compiled.program.hint_noop_count() > 0);
        assert_eq!(compiled.loop_requirements.len(), 1);
        assert!(compiled.stats.annotated_blocks >= 5);
        // Library call gets a max hint just before it.
        assert_eq!(compiled.annotations.max_before_call.len(), 1);
        // The library procedure itself is not annotated.
        let lib = program.proc_by_name("memcpy").unwrap();
        assert!(!compiled
            .annotations
            .block_entries
            .keys()
            .any(|r| r.proc == lib));
    }

    #[test]
    fn tagging_pass_adds_no_instructions() {
        let program = mixed_program();
        let compiled = CompilerPass::new(PassConfig::tagging()).run(&program);
        assert_eq!(compiled.program.hint_noop_count(), 0);
        assert_eq!(
            compiled.program.static_instruction_count(),
            program.static_instruction_count()
        );
        // But the tags are present.
        let tags = compiled
            .program
            .iter_locs()
            .filter(|l| compiled.program.instruction(*l).iq_hint.is_some())
            .count();
        assert!(tags >= compiled.stats.annotated_blocks);
    }

    #[test]
    fn improved_pass_never_shrinks_windows() {
        let program = mixed_program();
        let base = CompilerPass::new(PassConfig::tagging()).run(&program);
        let improved = CompilerPass::new(PassConfig::improved()).run(&program);
        for (block, &value) in &base.annotations.block_entries {
            let new_value = improved.annotations.block_entries[block];
            assert!(
                new_value >= value,
                "{block:?} shrank from {value} to {new_value}"
            );
        }
        // At least the helper's entry block grows.
        let helper = program.proc_by_name("helper").unwrap();
        let helper_entry = BlockRef {
            proc: helper,
            block: program.proc(helper).entry,
        };
        assert!(
            improved.annotations.block_entries[&helper_entry]
                > base.annotations.block_entries[&helper_entry]
        );
    }

    #[test]
    fn loop_value_is_advertised_once_in_the_preheader() {
        let program = mixed_program();
        let compiled = CompilerPass::new(PassConfig::noop_insertion()).run(&program);
        let info = &compiled.loop_requirements[0];
        // The value lands in a pre-header block, not in the loop header
        // itself (otherwise it would be re-applied every iteration).
        let header_ref = BlockRef {
            proc: info.proc,
            block: info.header,
        };
        assert!(!compiled
            .annotations
            .loop_preheader_entries
            .contains_key(&header_ref));
        let floor = compiled.config.min_advertised_entries;
        let expected = info.requirement.entries.unwrap().max(floor);
        assert!(compiled
            .annotations
            .loop_preheader_entries
            .values()
            .any(|&v| v == expected));
        // And the emitted program still validates.
        assert!(compiled.program.validate().is_ok());
    }

    #[test]
    fn requirements_never_exceed_queue_capacity() {
        let program = mixed_program();
        let compiled = CompilerPass::new(PassConfig::improved()).run(&program);
        let cap = compiled.config.widths.iq_capacity as u32;
        for &v in compiled.annotations.block_entries.values() {
            assert!(v >= 1 && v <= cap);
        }
    }

    #[test]
    fn stats_cover_all_non_library_procedures() {
        let program = mixed_program();
        let compiled = CompilerPass::new(PassConfig::noop_insertion()).run(&program);
        let names: Vec<_> = compiled
            .stats
            .per_procedure
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert!(names.contains(&"main"));
        assert!(names.contains(&"helper"));
        assert!(!names.contains(&"memcpy"));
        assert!(compiled.stats.total_duration.as_nanos() > 0);
    }
}
