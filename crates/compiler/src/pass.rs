//! The whole-program compiler pass (Figure 5 of the paper).

use crate::annotate::{emit, Annotations, EmitKind};
use crate::dag_analysis::{analyse_block, BlockRequirement};
use crate::loop_analysis::{analyse_loop_body, LoopRequirement};
use sdiq_ir::ProcedureAnalysis;
use sdiq_isa::{BlockId, BlockRef, FuCounts, Instruction, MachineWidths, ProcId, Program};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Configuration of the compiler pass.
///
/// `PassConfig` is `Hash + Eq` so it can serve as (part of) a
/// content-address in the experiment layer's artifact cache: two cells that
/// agree on the pass configuration share one compiled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PassConfig {
    /// Pipeline widths and capacities of the target machine (Table 1).
    pub widths: MachineWidths,
    /// Functional-unit pools of the target machine (Table 1).
    pub fu_counts: FuCounts,
    /// How resize information is carried to the processor.
    pub emit: EmitKind,
    /// Model functional-unit contention across procedure boundaries (the
    /// *Improved* technique of §5.3).
    pub interprocedural_fu: bool,
    /// Floor applied to every advertised window.
    ///
    /// The analysis of §4.2 can report requirements smaller than the
    /// machine's dispatch width for very small basic blocks (a couple of
    /// instructions). Advertising fewer entries than the dispatch width can
    /// starve the front end for regions whose upward-exposed operands are
    /// produced by long-latency instructions in *earlier* regions — a
    /// situation the paper's conservative control-flow summarisation absorbs
    /// on real SPEC basic blocks. Flooring the advertised value (at two
    /// dispatch groups' worth of instructions by default) keeps the
    /// synthetic workloads' many tiny blocks from throttling dispatch while
    /// leaving loop and large-block windows untouched.
    pub min_advertised_entries: u32,
}

impl PassConfig {
    /// The advertised-entries floor for a machine: two dispatch groups'
    /// worth of instructions (see the `min_advertised_entries` field docs).
    /// The one source of truth for the formula — retargeting re-derives it.
    fn advertised_floor(widths: MachineWidths) -> u32 {
        2 * widths.pipeline_width as u32
    }

    /// The paper's base NOOP-insertion technique (§5.2).
    pub fn noop_insertion() -> Self {
        let widths = MachineWidths::hpca2005();
        PassConfig {
            widths,
            fu_counts: FuCounts::hpca2005(),
            emit: EmitKind::NoopInsertion,
            interprocedural_fu: false,
            min_advertised_entries: PassConfig::advertised_floor(widths),
        }
    }

    /// Retargets this configuration at a different machine, keeping the
    /// emission kind and analysis flags but re-deriving the
    /// width-dependent advertised floor. Configuration sweeps use this so
    /// software techniques compile against the capacity they will run on.
    pub fn retargeted(self, widths: MachineWidths, fu_counts: FuCounts) -> Self {
        PassConfig {
            widths,
            fu_counts,
            min_advertised_entries: PassConfig::advertised_floor(widths),
            ..self
        }
    }

    /// The *Extension* technique: resize information passed via instruction
    /// tags instead of special NOOPs (§5.3).
    pub fn tagging() -> Self {
        PassConfig {
            emit: EmitKind::Tagging,
            ..PassConfig::noop_insertion()
        }
    }

    /// The *Improved* technique: tagging plus inter-procedural functional-
    /// unit contention analysis (§5.3).
    pub fn improved() -> Self {
        PassConfig {
            emit: EmitKind::Tagging,
            interprocedural_fu: true,
            ..PassConfig::noop_insertion()
        }
    }
}

impl Default for PassConfig {
    fn default() -> Self {
        PassConfig::noop_insertion()
    }
}

/// Per-procedure compile statistics (the raw material of Table 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcedureStats {
    /// Procedure name.
    pub name: String,
    /// Number of DAG blocks analysed with the pseudo issue queue.
    pub blocks_analysed: usize,
    /// Number of loops analysed with the CDS method.
    pub loops_analysed: usize,
    /// Number of DAG regions formed.
    pub dag_regions: usize,
    /// Wall-clock time spent analysing the procedure.
    pub duration: Duration,
}

/// Whole-program compile statistics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CompileStats {
    /// One entry per analysed (non-library) procedure.
    pub per_procedure: Vec<ProcedureStats>,
    /// Total wall-clock time of the pass, including annotation emission.
    pub total_duration: Duration,
    /// Number of blocks that received an annotation.
    pub annotated_blocks: usize,
    /// Number of special NOOPs present in the output program.
    pub hint_noops_inserted: usize,
}

/// Requirement computed for one loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopInfo {
    /// Procedure owning the loop.
    pub proc: ProcId,
    /// Header block of the loop.
    pub header: BlockId,
    /// The computed requirement.
    pub requirement: LoopRequirement,
}

/// The output of the compiler pass.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The rewritten program carrying the issue-queue size information.
    pub program: Program,
    /// The annotations that were emitted (useful for inspection and tests).
    pub annotations: Annotations,
    /// The configuration the pass ran with.
    pub config: PassConfig,
    /// Compile statistics.
    pub stats: CompileStats,
    /// Pseudo-issue-queue results per analysed DAG block.
    pub block_requirements: HashMap<BlockRef, BlockRequirement>,
    /// CDS results per analysed loop.
    pub loop_requirements: Vec<LoopInfo>,
}

/// The compiler pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct CompilerPass {
    config: PassConfig,
}

impl CompilerPass {
    /// Creates a pass with the given configuration.
    pub fn new(config: PassConfig) -> Self {
        CompilerPass { config }
    }

    /// The pass configuration.
    pub fn config(&self) -> &PassConfig {
        &self.config
    }

    /// Runs the pass over `program`, returning the annotated program plus
    /// all intermediate analysis results.
    pub fn run(&self, program: &Program) -> CompiledProgram {
        let start = Instant::now();
        let iq_capacity = self.config.widths.iq_capacity as u32;
        let issue_width = self.config.widths.pipeline_width;

        let mut annotations = Annotations::default();
        let mut block_requirements: HashMap<BlockRef, BlockRequirement> = HashMap::new();
        let mut loop_requirements: Vec<LoopInfo> = Vec::new();
        let mut per_procedure = Vec::new();
        // Remember which annotated blocks end in a call, and to whom, for the
        // inter-procedural adjustment below.
        let mut call_sites: Vec<(BlockRef, ProcId)> = Vec::new();

        for (pid, proc) in program.iter_procs() {
            if proc.is_library {
                continue;
            }
            let proc_start = Instant::now();
            let analysis = ProcedureAnalysis::analyse(proc);

            // Loops: analyse the exclusive body of each loop and annotate its
            // header.
            for (loop_idx, natural_loop) in analysis.loops.loops().iter().enumerate() {
                let mut blocks: Vec<BlockId> = analysis
                    .loops
                    .exclusive_blocks(loop_idx)
                    .into_iter()
                    .collect();
                blocks.sort_by_key(|b| analysis.cfg.rpo_index(*b).unwrap_or(usize::MAX));
                let body: Vec<Instruction> = blocks
                    .iter()
                    .flat_map(|b| proc.block(*b).instructions.iter().cloned())
                    .collect();
                let requirement = analyse_loop_body(&body, iq_capacity);
                let value = requirement.entries.unwrap_or(iq_capacity).clamp(
                    self.config.min_advertised_entries.min(iq_capacity),
                    iq_capacity,
                );
                // The hint is placed in the loop's pre-header(s): every CFG
                // predecessor of the header that lies outside the loop. It is
                // decoded once on entry and stays in force for the whole loop,
                // so the advertised window bounds the loop's total residency
                // (placing it inside the loop would reset the region every
                // iteration and defeat the limit).
                let mut placed = false;
                for &pred in analysis.cfg.preds(natural_loop.header) {
                    if !natural_loop.body.contains(&pred) {
                        annotations.loop_preheader_entries.insert(
                            BlockRef {
                                proc: pid,
                                block: pred,
                            },
                            value,
                        );
                        placed = true;
                    }
                }
                if !placed {
                    // Fallback (header with no out-of-loop predecessor, e.g. a
                    // procedure entry that is itself a loop header).
                    annotations.block_entries.insert(
                        BlockRef {
                            proc: pid,
                            block: natural_loop.header,
                        },
                        value,
                    );
                }
                loop_requirements.push(LoopInfo {
                    proc: pid,
                    header: natural_loop.header,
                    requirement,
                });
            }

            // DAG regions: analyse every block individually (§4.2) in
            // breadth-first region order.
            let mut blocks_analysed = 0usize;
            for region in analysis.regions.regions() {
                for &bid in &region.blocks {
                    let block = proc.block(bid);
                    let requirement =
                        analyse_block(&block.instructions, issue_width, &self.config.fu_counts);
                    let block_ref = BlockRef {
                        proc: pid,
                        block: bid,
                    };
                    let value = requirement.entries.clamp(
                        self.config.min_advertised_entries.min(iq_capacity),
                        iq_capacity,
                    );
                    annotations.block_entries.insert(block_ref, value);
                    block_requirements.insert(block_ref, requirement);
                    blocks_analysed += 1;
                }
            }

            // Call handling (§4.4): library callees force the maximum size
            // immediately before the call; other callees are recorded for the
            // optional inter-procedural adjustment.
            for (bid, block) in proc.iter_blocks() {
                if let Some(callee) = block.callee() {
                    let block_ref = BlockRef {
                        proc: pid,
                        block: bid,
                    };
                    if program.proc(callee).is_library {
                        annotations.max_before_call.push(block_ref);
                    } else {
                        call_sites.push((block_ref, callee));
                    }
                }
            }

            per_procedure.push(ProcedureStats {
                name: proc.name.clone(),
                blocks_analysed,
                loops_analysed: analysis.loops.loops().len(),
                dag_regions: analysis.regions.regions().len(),
                duration: proc_start.elapsed(),
            });
        }

        // Improved technique: functional-unit contention across procedure
        // boundaries. Instructions of the calling region are still in flight
        // (between `head` and `new_head`) while the callee starts executing,
        // competing for functional units. Giving the callee's entry region
        // and the post-call region a window that also covers the caller's
        // in-flight instructions lets the scheduler find enough independent
        // work, which is what removes most of the residual IPC loss in §5.3.
        if self.config.interprocedural_fu {
            let mut adjustments: HashMap<BlockRef, u32> = HashMap::new();
            let mut preheader_adjustments: HashMap<BlockRef, u32> = HashMap::new();
            for (caller_block, callee) in &call_sites {
                let caller_req = annotations
                    .block_entries
                    .get(caller_block)
                    .copied()
                    .unwrap_or(1);
                let callee_entry = BlockRef {
                    proc: *callee,
                    block: program.proc(*callee).entry,
                };
                let callee_req = annotations
                    .block_entries
                    .get(&callee_entry)
                    .copied()
                    .unwrap_or(1);
                // Callee entry sees the caller's leftovers.
                let e = adjustments.entry(callee_entry).or_insert(callee_req);
                *e = (*e).max(callee_req + caller_req).min(iq_capacity);
                // If the callee's entry block is also the pre-header of its
                // hot loop, widen the loop window by the same amount — the
                // loop's instructions contend for functional units with the
                // caller's still-in-flight region.
                if let Some(&loop_value) = annotations.loop_preheader_entries.get(&callee_entry) {
                    let e = preheader_adjustments
                        .entry(callee_entry)
                        .or_insert(loop_value);
                    *e = (*e).max(loop_value + caller_req).min(iq_capacity);
                }
                // The post-call block sees the callee's leftovers.
                if let Some(after) = program
                    .proc(caller_block.proc)
                    .block(caller_block.block)
                    .fallthrough
                {
                    let after_ref = BlockRef {
                        proc: caller_block.proc,
                        block: after,
                    };
                    let after_req = annotations
                        .block_entries
                        .get(&after_ref)
                        .copied()
                        .unwrap_or(1);
                    let e = adjustments.entry(after_ref).or_insert(after_req);
                    *e = (*e).max(after_req + callee_req).min(iq_capacity);
                }
            }
            for (block_ref, value) in adjustments {
                annotations.block_entries.insert(block_ref, value);
            }
            for (block_ref, value) in preheader_adjustments {
                annotations.loop_preheader_entries.insert(block_ref, value);
            }
        }

        let annotated_program = emit(program, &annotations, self.config.emit);
        let stats = CompileStats {
            annotated_blocks: annotations.block_entries.len(),
            hint_noops_inserted: annotated_program.hint_noop_count(),
            per_procedure,
            total_duration: start.elapsed(),
        };

        CompiledProgram {
            program: annotated_program,
            annotations,
            config: self.config,
            stats,
            block_requirements,
            loop_requirements,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_isa::builder::ProgramBuilder;
    use sdiq_isa::reg::int_reg;

    /// A program with a loop, a call to a helper and a call to a library
    /// routine.
    fn mixed_program() -> Program {
        let mut b = ProgramBuilder::new();
        let lib = b.library_procedure("memcpy");
        {
            let p = b.proc_mut(lib);
            let e = p.block();
            p.with_block(e, |bb| {
                bb.nop();
                bb.ret();
            });
            p.set_entry(e);
        }
        let helper = b.procedure("helper");
        {
            let p = b.proc_mut(helper);
            let e = p.block();
            p.with_block(e, |bb| {
                bb.addi(int_reg(10), int_reg(10), 1);
                bb.addi(int_reg(11), int_reg(10), 2);
                bb.addi(int_reg(12), int_reg(11), 3);
                bb.ret();
            });
            p.set_entry(e);
        }
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let loop_body = p.block();
            let after_loop = p.block();
            let after_helper = p.block();
            let after_lib = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 0);
                bb.li(int_reg(2), 0);
                bb.jump(loop_body);
            });
            p.with_block(loop_body, |bb| {
                bb.addi(int_reg(2), int_reg(2), 3);
                bb.addi(int_reg(3), int_reg(2), 1);
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.blt(int_reg(1), 50, loop_body, after_loop);
            });
            p.with_block(after_loop, |bb| {
                bb.call(helper, after_helper);
            });
            p.with_block(after_helper, |bb| {
                bb.call(lib, after_lib);
            });
            p.with_block(after_lib, |bb| {
                bb.addi(int_reg(4), int_reg(3), 1);
                bb.ret();
            });
            p.set_entry(entry);
        }
        b.finish(main).unwrap()
    }

    #[test]
    fn noop_pass_annotates_blocks_and_loops() {
        let program = mixed_program();
        let compiled = CompilerPass::new(PassConfig::noop_insertion()).run(&program);
        assert!(compiled.program.validate().is_ok());
        assert!(compiled.program.hint_noop_count() > 0);
        assert_eq!(compiled.loop_requirements.len(), 1);
        assert!(compiled.stats.annotated_blocks >= 5);
        // Library call gets a max hint just before it.
        assert_eq!(compiled.annotations.max_before_call.len(), 1);
        // The library procedure itself is not annotated.
        let lib = program.proc_by_name("memcpy").unwrap();
        assert!(!compiled
            .annotations
            .block_entries
            .keys()
            .any(|r| r.proc == lib));
    }

    #[test]
    fn tagging_pass_adds_no_instructions() {
        let program = mixed_program();
        let compiled = CompilerPass::new(PassConfig::tagging()).run(&program);
        assert_eq!(compiled.program.hint_noop_count(), 0);
        assert_eq!(
            compiled.program.static_instruction_count(),
            program.static_instruction_count()
        );
        // But the tags are present.
        let tags = compiled
            .program
            .iter_locs()
            .filter(|l| compiled.program.instruction(*l).iq_hint.is_some())
            .count();
        assert!(tags >= compiled.stats.annotated_blocks);
    }

    #[test]
    fn improved_pass_never_shrinks_windows() {
        let program = mixed_program();
        let base = CompilerPass::new(PassConfig::tagging()).run(&program);
        let improved = CompilerPass::new(PassConfig::improved()).run(&program);
        for (block, &value) in &base.annotations.block_entries {
            let new_value = improved.annotations.block_entries[block];
            assert!(
                new_value >= value,
                "{block:?} shrank from {value} to {new_value}"
            );
        }
        // At least the helper's entry block grows.
        let helper = program.proc_by_name("helper").unwrap();
        let helper_entry = BlockRef {
            proc: helper,
            block: program.proc(helper).entry,
        };
        assert!(
            improved.annotations.block_entries[&helper_entry]
                > base.annotations.block_entries[&helper_entry]
        );
    }

    #[test]
    fn loop_value_is_advertised_once_in_the_preheader() {
        let program = mixed_program();
        let compiled = CompilerPass::new(PassConfig::noop_insertion()).run(&program);
        let info = &compiled.loop_requirements[0];
        // The value lands in a pre-header block, not in the loop header
        // itself (otherwise it would be re-applied every iteration).
        let header_ref = BlockRef {
            proc: info.proc,
            block: info.header,
        };
        assert!(!compiled
            .annotations
            .loop_preheader_entries
            .contains_key(&header_ref));
        let floor = compiled.config.min_advertised_entries;
        let expected = info.requirement.entries.unwrap().max(floor);
        assert!(compiled
            .annotations
            .loop_preheader_entries
            .values()
            .any(|&v| v == expected));
        // And the emitted program still validates.
        assert!(compiled.program.validate().is_ok());
    }

    #[test]
    fn requirements_never_exceed_queue_capacity() {
        let program = mixed_program();
        let compiled = CompilerPass::new(PassConfig::improved()).run(&program);
        let cap = compiled.config.widths.iq_capacity as u32;
        for &v in compiled.annotations.block_entries.values() {
            assert!(v >= 1 && v <= cap);
        }
    }

    #[test]
    fn stats_cover_all_non_library_procedures() {
        let program = mixed_program();
        let compiled = CompilerPass::new(PassConfig::noop_insertion()).run(&program);
        let names: Vec<_> = compiled
            .stats
            .per_procedure
            .iter()
            .map(|p| p.name.as_str())
            .collect();
        assert!(names.contains(&"main"));
        assert!(names.contains(&"helper"));
        assert!(!names.contains(&"memcpy"));
        assert!(compiled.stats.total_duration.as_nanos() > 0);
    }
}
