//! Content-addressed artifact cache shared by every cell of an experiment
//! matrix.
//!
//! A (benchmark × technique × configuration) sweep re-uses two expensive,
//! fully deterministic artifacts across many cells:
//!
//! * the **built program** — a function of `(benchmark, scale)` only: all
//!   six techniques and every `SimConfig` variant at the same scale
//!   simulate the same synthetic program, and
//! * the **compiler-pass output** — a function of
//!   `(benchmark, scale, PassConfig)` only: the three software techniques
//!   differ per pass configuration, not per simulator configuration
//!   (unless the sweep changes the machine widths the pass targets, which
//!   changes the `PassConfig` and therefore the key).
//!
//! The cache keys artifacts by exactly those inputs and hands out
//! `Arc`-shared handles, so a full 11 × 6 × K sweep builds each program
//! once per scale and runs each compiler pass once per key — instead of
//! once per cell, as the old one-thread-per-benchmark matrix runner did.
//!
//! # Determinism
//!
//! Cached content is a *pure function of its key*. Wall-clock compile
//! durations are not content, so they are zeroed in the cached
//! [`CompileStats`]; this is what makes a parallel matrix run bit-identical
//! to a serial one (the engine's hard guarantee). Timing measurement
//! belongs to [`crate::Experiment::compile_times`], which deliberately
//! bypasses the cache.
//!
//! # Concurrency
//!
//! Each key maps to a [`OnceLock`] slot: the first worker to reach a key
//! runs the build/compile, any concurrent worker blocks on the same slot
//! and receives the same `Arc` — an artifact is never computed twice, which
//! the instrumented [`ArtifactCache::program_builds`] /
//! [`ArtifactCache::compile_runs`] counters let tests assert exactly.

use sdiq_compiler::{CompileStats, CompilerPass, PassConfig};
use sdiq_isa::{Executor, Program};
use sdiq_sim::{ExecPlan, SimConfig};
use sdiq_verify::{has_errors, lint_plan, verify_compiled, Severity, StandardVerifier};
use sdiq_workloads::Benchmark;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// Content address of one built benchmark program: the benchmark plus the
/// exact bit pattern of the scale factor (quantising would alias distinct
/// workload lengths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProgramKey {
    /// The benchmark whose synthetic analogue is built.
    pub benchmark: Benchmark,
    scale_bits: u64,
}

impl ProgramKey {
    /// Key for `benchmark` built at `scale`.
    pub fn new(benchmark: Benchmark, scale: f64) -> Self {
        ProgramKey {
            benchmark,
            scale_bits: scale.to_bits(),
        }
    }

    /// The scale factor this key addresses.
    pub fn scale(&self) -> f64 {
        f64::from_bits(self.scale_bits)
    }
}

/// Content address of one compiler-pass output: the program it ran over
/// plus the full pass configuration (machine widths, functional units,
/// emission kind, inter-procedural flag, advertised floor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompileKey {
    /// The input program.
    pub program: ProgramKey,
    /// The pass configuration.
    pub pass: PassConfig,
}

/// A cached compiler-pass output: the annotated program plus the
/// deterministic parts of the compile statistics.
#[derive(Debug)]
pub struct CompiledArtifact {
    /// The annotated program, shared across every cell with this key.
    pub program: Arc<Program>,
    /// Compile statistics with wall-clock durations zeroed (see the module
    /// docs: cached content is a pure function of the key).
    pub stats: CompileStats,
    /// Special NOOPs present in the annotated program.
    pub hint_noops_inserted: usize,
}

/// The program an execution plan is lowered from: either the raw built
/// benchmark (hardware techniques) or a compiler-pass output (software
/// techniques). Both are themselves cache keys, so a plan key is a pure
/// content address all the way down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanSource {
    /// The built benchmark program, unannotated.
    Program(ProgramKey),
    /// The output of a compiler pass over the built program.
    Compiled(CompileKey),
}

/// Content address of one lowered [`ExecPlan`]: the exact program it
/// replays, the full simulator configuration it was lowered under (plan
/// contents bake in cache geometry, predictor behaviour and decode
/// timing), and the instruction budget bounding its trace.
///
/// The resize policy is deliberately **absent**: nothing in a plan depends
/// on it, so one plan serves all techniques of a cell shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// The program the plan replays.
    pub source: PlanSource,
    /// The machine configuration the plan was lowered for.
    pub sim_config: SimConfig,
    /// The dynamic-instruction cap used when tracing the program.
    pub max_dynamic_instructions: u64,
}

/// The shared artifact cache. One instance serves a whole sweep; creating
/// it is free, so ad-hoc callers can also pass a fresh one per run.
///
/// # Verification
///
/// When [`ArtifactCache::set_verify`] is on (the default in debug builds
/// and under `cargo test`; release matrix runs leave it off unless
/// `--verify` is passed), every cached artifact is statically verified
/// **once**, at the moment it is first built: compiles run through the
/// pass manager with the inter-pass [`StandardVerifier`] plus the full
/// `sdiq_verify::verify_compiled` suite, and lowered plans are
/// cross-checked against their source program and trace with
/// `sdiq_verify::lint_plan`. A failed check is a logic error in this
/// repository, not a user error, so it panics with the full diagnostic
/// listing. Because verification happens inside the [`OnceLock`]
/// initialiser, a sweep touching the same key a thousand times pays for
/// the check exactly once.
#[derive(Debug)]
pub struct ArtifactCache {
    programs: Mutex<HashMap<ProgramKey, Arc<OnceLock<Arc<Program>>>>>,
    compiles: Mutex<HashMap<CompileKey, Arc<OnceLock<Arc<CompiledArtifact>>>>>,
    plans: Mutex<HashMap<PlanKey, Arc<OnceLock<Arc<ExecPlan>>>>>,
    program_builds: AtomicU64,
    compile_runs: AtomicU64,
    plan_builds: AtomicU64,
    verify: AtomicBool,
}

impl Default for ArtifactCache {
    fn default() -> Self {
        ArtifactCache {
            programs: Mutex::default(),
            compiles: Mutex::default(),
            plans: Mutex::default(),
            program_builds: AtomicU64::new(0),
            compile_runs: AtomicU64::new(0),
            plan_builds: AtomicU64::new(0),
            verify: AtomicBool::new(cfg!(debug_assertions)),
        }
    }
}

/// Fetches (or inserts) the once-initialisable slot for `key`. The map
/// lock is held only for the slot lookup, never across a build. A
/// poisoned map lock is recovered: the critical section is a pure
/// `HashMap` entry lookup, which cannot leave the map inconsistent.
fn slot<K: Eq + Hash + Copy, V>(
    map: &Mutex<HashMap<K, Arc<OnceLock<V>>>>,
    key: K,
) -> Arc<OnceLock<V>> {
    map.lock()
        .unwrap_or_else(PoisonError::into_inner)
        .entry(key)
        .or_default()
        .clone()
}

impl ArtifactCache {
    /// Creates an empty cache. Verification defaults to on in debug builds
    /// (and therefore under `cargo test`) and off in release builds.
    pub fn new() -> Self {
        ArtifactCache::default()
    }

    /// Turns per-artifact static verification on or off (see the type-level
    /// docs). Takes effect for artifacts not yet built; already-cached
    /// artifacts are not re-checked.
    pub fn set_verify(&self, on: bool) {
        self.verify.store(on, Ordering::Relaxed);
    }

    /// Whether artifacts built by this cache are statically verified.
    pub fn verify_enabled(&self) -> bool {
        self.verify.load(Ordering::Relaxed)
    }

    /// The program for `key`, building it exactly once per key.
    pub fn program(&self, key: ProgramKey) -> Arc<Program> {
        let slot = slot(&self.programs, key);
        if slot.get().is_some() {
            sdiq_obs::metrics().cache_program_hits.inc();
        }
        slot.get_or_init(|| {
            let metrics = sdiq_obs::metrics();
            metrics.cache_program_misses.inc();
            let _span = sdiq_obs::span("build-program", "cache");
            self.program_builds.fetch_add(1, Ordering::Relaxed);
            key.benchmark.build_scaled_shared(key.scale())
        })
        .clone()
    }

    /// The compiler-pass output for `key`, running the pass exactly once
    /// per key (building the input program through the cache if needed).
    pub fn compiled(&self, key: CompileKey) -> Arc<CompiledArtifact> {
        let input = self.program(key.program);
        let slot = slot(&self.compiles, key);
        if slot.get().is_some() {
            sdiq_obs::metrics().cache_compile_hits.inc();
        }
        slot.get_or_init(|| {
            let metrics = sdiq_obs::metrics();
            metrics.cache_compile_misses.inc();
            let _span = sdiq_obs::span("compile", "cache");
            self.compile_runs.fetch_add(1, Ordering::Relaxed);
            let compiled = if self.verify_enabled() {
                let compiled = match CompilerPass::new(key.pass)
                    .run_verified(&input, Box::new(StandardVerifier))
                {
                    Ok(compiled) => compiled,
                    Err(err) => panic!(
                        "compile of `{}` failed inter-pass verification: {err}",
                        key.program.benchmark.name()
                    ),
                };
                let errors: Vec<String> = verify_compiled(&compiled)
                    .into_iter()
                    .filter(|d| d.severity == Severity::Error)
                    .map(|d| d.to_string())
                    .collect();
                if !errors.is_empty() {
                    panic!(
                        "compiled artifact for `{}` failed verification:\n  {}",
                        key.program.benchmark.name(),
                        errors.join("\n  ")
                    );
                }
                compiled
            } else {
                CompilerPass::new(key.pass).run(&input)
            };
            let mut stats = compiled.stats;
            stats.total_duration = Duration::ZERO;
            for proc_stats in &mut stats.per_procedure {
                proc_stats.duration = Duration::ZERO;
            }
            let hint_noops_inserted = stats.hint_noops_inserted;
            Arc::new(CompiledArtifact {
                program: Arc::new(compiled.program),
                stats,
                hint_noops_inserted,
            })
        })
        .clone()
    }

    /// The execution plan for `key`, lowering it exactly once per key
    /// (building the source program — and running its compiler pass, for
    /// [`PlanSource::Compiled`] — through the cache if needed). The
    /// functional execution producing the trace happens here too: the
    /// trace is consumed by the lowering and never stored.
    pub fn planned(&self, key: PlanKey) -> Arc<ExecPlan> {
        let program = match key.source {
            PlanSource::Program(program) => self.program(program),
            PlanSource::Compiled(compile) => self.compiled(compile).program.clone(),
        };
        let slot = slot(&self.plans, key);
        if slot.get().is_some() {
            sdiq_obs::metrics().cache_plan_hits.inc();
        }
        slot.get_or_init(|| {
            let metrics = sdiq_obs::metrics();
            metrics.cache_plan_misses.inc();
            let _span = sdiq_obs::span("lower-plan", "cache");
            self.plan_builds.fetch_add(1, Ordering::Relaxed);
            let trace = match Executor::new(&program).run(key.max_dynamic_instructions) {
                Ok(trace) => trace,
                Err(fault) => panic!("workload must execute cleanly, faulted with {fault:?}"),
            };
            let plan = ExecPlan::build(key.sim_config, &program, &trace);
            if self.verify_enabled() {
                let diags = lint_plan(&plan, &program, &trace);
                if has_errors(&diags) {
                    let listing: Vec<String> = diags.iter().map(ToString::to_string).collect();
                    panic!("execution plan failed lint:\n  {}", listing.join("\n  "));
                }
            }
            Arc::new(plan)
        })
        .clone()
    }

    /// Number of programs actually built (one per unique [`ProgramKey`]
    /// requested, regardless of concurrency).
    pub fn program_builds(&self) -> u64 {
        self.program_builds.load(Ordering::Relaxed)
    }

    /// Number of compiler-pass executions (one per unique [`CompileKey`]
    /// requested, regardless of concurrency).
    pub fn compile_runs(&self) -> u64 {
        self.compile_runs.load(Ordering::Relaxed)
    }

    /// Number of execution plans lowered (one per unique [`PlanKey`]
    /// requested, regardless of concurrency).
    pub fn plan_builds(&self) -> u64 {
        self.plan_builds.load(Ordering::Relaxed)
    }
}

/// Verdict of [`ResultStore::insert`]: what a delivered cell report turned
/// out to be relative to what the store already holds for its key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stored {
    /// First report for this key — stored.
    New,
    /// A byte-identical copy of the report already held for this key
    /// (speculative double-issue, a retried cell, overlapping clients) —
    /// recognised by fingerprint in O(1) and not stored again.
    DuplicateIdentical,
    /// A *different* report for an already-completed key — the
    /// determinism contract is broken and the caller must treat the run
    /// as poisoned.
    DuplicateDivergent,
}

/// Content-addressed store of completed cell reports.
///
/// The remote scheduler can legitimately receive the same cell more than
/// once (speculation issues straggler cells twice, a re-queued batch can
/// race its original, overlapping clients can submit the same spec), and
/// distinct cells routinely produce byte-identical reports (every
/// benchmark's `baseline` vs `nonEmpty` at the same config, for one).
/// This store keys reports two ways:
///
/// * **by cell key** — the result map callers ultimately want, and
/// * **by content fingerprint** ([`crate::persist_bin::report_fingerprint`],
///   FNV-1a over the canonical binary encoding) — so a duplicate delivery
///   is judged identical-or-divergent by a single `u64` compare instead
///   of a deep structural walk, and byte-identical reports are stored
///   once and `Arc`-shared across all their keys.
#[derive(Debug, Default)]
pub struct ResultStore {
    by_key: HashMap<String, (u64, Arc<crate::runner::RunReport>)>,
    by_fingerprint: HashMap<u64, Arc<crate::runner::RunReport>>,
}

impl ResultStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ResultStore::default()
    }

    /// Records `report` for `key`, deduplicating by content fingerprint.
    /// See [`Stored`] for the three outcomes; only [`Stored::New`] stores
    /// anything (and even then the bytes are shared if some other key
    /// already holds an identical report).
    pub fn insert(&mut self, key: &str, report: &crate::runner::RunReport) -> Stored {
        let fingerprint = crate::persist_bin::report_fingerprint(report);
        if let Some((existing, held)) = self.by_key.get(key) {
            return if *existing == fingerprint {
                debug_assert_eq!(
                    **held, *report,
                    "fingerprint collision between distinct reports for key `{key}`"
                );
                Stored::DuplicateIdentical
            } else {
                Stored::DuplicateDivergent
            };
        }
        let shared = self
            .by_fingerprint
            .entry(fingerprint)
            .or_insert_with(|| Arc::new(report.clone()))
            .clone();
        debug_assert_eq!(
            *shared, *report,
            "fingerprint collision between distinct reports"
        );
        self.by_key.insert(key.to_string(), (fingerprint, shared));
        Stored::New
    }

    /// `true` if a report has been recorded for `key`.
    pub fn contains(&self, key: &str) -> bool {
        self.by_key.contains_key(key)
    }

    /// The report recorded for `key`, if any.
    pub fn get(&self, key: &str) -> Option<&crate::runner::RunReport> {
        self.by_key.get(key).map(|(_, report)| &**report)
    }

    /// Number of keys with a recorded report.
    pub fn len(&self) -> usize {
        self.by_key.len()
    }

    /// `true` if no report has been recorded.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Number of *distinct* report payloads held (≤ [`ResultStore::len`];
    /// the gap is what deduplication saved).
    pub fn unique_reports(&self) -> usize {
        self.by_fingerprint.len()
    }

    /// Consumes the store into the plain `key → report` map the engine
    /// merges with its seed (shared payloads are unshared here, at the
    /// one point a private copy per key is actually required).
    pub fn into_cells(self) -> HashMap<String, crate::runner::RunReport> {
        self.by_key
            .into_iter()
            .map(|(key, (_, report))| {
                let report = Arc::try_unwrap(report).unwrap_or_else(|shared| (*shared).clone());
                (key, report)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_is_built_once_per_key_and_shared() {
        let cache = ArtifactCache::new();
        let key = ProgramKey::new(Benchmark::Gzip, 0.05);
        let a = cache.program(key);
        let b = cache.program(key);
        assert!(Arc::ptr_eq(&a, &b), "same handle");
        assert_eq!(cache.program_builds(), 1);
        // A different scale is a different artifact.
        let c = cache.program(ProgramKey::new(Benchmark::Gzip, 0.1));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.program_builds(), 2);
    }

    #[test]
    fn compile_is_run_once_per_pass_config() {
        use crate::technique::Technique;
        let cache = ArtifactCache::new();
        let program = ProgramKey::new(Benchmark::Mcf, 0.05);
        let noop = Technique::Noop.pass_config().unwrap();
        let tagging = Technique::Extension.pass_config().unwrap();
        let a = cache.compiled(CompileKey {
            program,
            pass: noop,
        });
        let b = cache.compiled(CompileKey {
            program,
            pass: noop,
        });
        assert!(Arc::ptr_eq(&a, &b));
        let c = cache.compiled(CompileKey {
            program,
            pass: tagging,
        });
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.compile_runs(), 2);
        // The input program was built once, through the cache.
        assert_eq!(cache.program_builds(), 1);
        assert!(a.hint_noops_inserted > 0, "noop pass inserts hints");
        assert_eq!(c.hint_noops_inserted, 0, "tagging pass does not");
    }

    #[test]
    fn cached_compile_stats_are_deterministic_content() {
        use crate::technique::Technique;
        let key = CompileKey {
            program: ProgramKey::new(Benchmark::Gzip, 0.05),
            pass: Technique::Noop.pass_config().unwrap(),
        };
        let a = ArtifactCache::new().compiled(key);
        let b = ArtifactCache::new().compiled(key);
        assert_eq!(a.stats, b.stats, "durations zeroed → stats bit-identical");
        assert_eq!(a.program, b.program);
        assert_eq!(a.stats.total_duration, Duration::ZERO);
    }

    #[test]
    fn plan_is_lowered_once_per_key_and_shared() {
        let cache = ArtifactCache::new();
        let key = PlanKey {
            source: PlanSource::Program(ProgramKey::new(Benchmark::Gzip, 0.05)),
            sim_config: SimConfig::hpca2005(),
            max_dynamic_instructions: 2_000_000,
        };
        let a = cache.planned(key);
        let b = cache.planned(key);
        assert!(Arc::ptr_eq(&a, &b), "same handle");
        assert_eq!(cache.plan_builds(), 1);
        assert_eq!(cache.program_builds(), 1, "program built through the cache");
        // A different machine configuration is a different plan over the
        // same built program.
        let c = cache.planned(PlanKey {
            sim_config: SimConfig::small_for_tests(),
            ..key
        });
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(cache.plan_builds(), 2);
        assert_eq!(cache.program_builds(), 1);
    }

    #[test]
    fn compiled_source_plans_lower_the_annotated_program() {
        use crate::technique::Technique;
        let cache = ArtifactCache::new();
        let program = ProgramKey::new(Benchmark::Gzip, 0.05);
        let compile = CompileKey {
            program,
            pass: Technique::Noop.pass_config().unwrap(),
        };
        let annotated = cache.planned(PlanKey {
            source: PlanSource::Compiled(compile),
            sim_config: SimConfig::hpca2005(),
            max_dynamic_instructions: 2_000_000,
        });
        let raw = cache.planned(PlanKey {
            source: PlanSource::Program(program),
            sim_config: SimConfig::hpca2005(),
            max_dynamic_instructions: 2_000_000,
        });
        assert_eq!(cache.compile_runs(), 1);
        assert_eq!(cache.plan_builds(), 2);
        // The annotated program carries the inserted hint NOOPs; the raw
        // one does not — the two sources must not alias.
        assert!(annotated.len() > raw.len());
    }

    #[test]
    fn concurrent_requests_build_exactly_once() {
        let cache = ArtifactCache::new();
        let key = ProgramKey::new(Benchmark::Vortex, 0.05);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| cache.program(key));
            }
        });
        assert_eq!(cache.program_builds(), 1);
    }

    #[test]
    fn result_store_dedups_identical_reports_and_flags_divergence() {
        use crate::runner::Experiment;
        use crate::technique::Technique;
        let exp = Experiment {
            scale: 0.05,
            ..Experiment::paper()
        };
        let baseline = exp.run(Benchmark::Gzip, Technique::Baseline);
        let noop = exp.run(Benchmark::Gzip, Technique::Noop);
        assert_ne!(baseline, noop);

        let mut store = ResultStore::new();
        assert_eq!(store.insert("k1", &baseline), Stored::New);
        // Same key, same bytes: recognised, not re-stored.
        assert_eq!(store.insert("k1", &baseline), Stored::DuplicateIdentical);
        // Same key, different bytes: determinism violation.
        assert_eq!(store.insert("k1", &noop), Stored::DuplicateDivergent);
        // Different key, identical bytes: stored once, shared.
        assert_eq!(store.insert("k2", &baseline), Stored::New);
        assert_eq!(store.insert("k3", &noop), Stored::New);
        assert_eq!(store.len(), 3);
        assert_eq!(store.unique_reports(), 2);
        assert!(store.contains("k2"));
        assert_eq!(store.get("k1"), Some(&baseline));

        let cells = store.into_cells();
        assert_eq!(cells.len(), 3);
        assert_eq!(cells["k1"], baseline);
        assert_eq!(cells["k2"], baseline);
        assert_eq!(cells["k3"], noop);
    }
}
