//! The experiment job engine: a fixed worker pool over a shared queue of
//! (workload, technique, configuration) cells.
//!
//! The previous matrix runner spawned one thread per benchmark, which is
//! unbalanced (a `gcc`-analogue column takes far longer than a `gzip` one)
//! and caps parallelism at the benchmark count regardless of the machine.
//! The engine instead flattens the whole
//! (benchmark × technique × [`ConfigVariant`]) cross product into a cell
//! list, sizes a worker pool to `std::thread::available_parallelism`, and
//! lets idle workers pull the next unclaimed cell from a shared atomic
//! cursor — so an 11 × 6 × K sweep saturates every core no matter how the
//! axes are shaped, and a long cell never strands the rest of its row.
//!
//! Expensive per-cell work that is shared between cells (program
//! generation, compiler passes) goes through the [`ArtifactCache`], and
//! every cell's result is a pure function of its cell key, which yields the
//! engine's hard guarantee: **the assembled [`Sweep`] is bit-identical for
//! any worker count**, `jobs = 1` included. The integration suite asserts
//! this.
//!
//! # Scaling beyond one process
//!
//! The same cell space shards across processes: [`shard_of`] assigns every
//! cell key to one of `N` shards by a stable fingerprint, [`Matrix::shard`]
//! restricts a matrix to exactly its shard's cells, and [`Backend`] chooses
//! between the in-process pool, a coordinator that spawns one worker
//! subprocess per shard, and a coordinator that distributes cells over
//! networked worker daemons ([`Backend::Remote`]; the TCP transport and
//! fault-tolerant scheduler live in the `sdiq-remote` crate, wired in via
//! [`RemoteSpec::launch`] so this crate stays transport-free) — all with
//! the same hard guarantee: the merged sweep is bit-identical to a serial
//! run. Completed cells can additionally stream into a [`CellSink`] (the
//! engine's crash-resume hook: [`crate::persist::CheckpointWriter`] appends
//! each one to disk the moment it exists). A [`MatrixSpec`] is the portable
//! matrix description distribution backends ship to processes that never
//! saw the coordinator's command line.

use crate::cache::{ArtifactCache, CompileKey, PlanKey, PlanSource, ProgramKey};
use crate::runner::{Experiment, RunReport, SimBackend, Suite};
use crate::technique::Technique;
use sdiq_sim::SimConfig;
use sdiq_workloads::Benchmark;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

/// One point on the configuration sweep axis: a simulator configuration
/// plus the workload scale to run it at.
///
/// The paper's Figure-10-style sensitivity studies vary the machine under
/// a fixed workload set; a sweep here is a list of variants, each labelled
/// for reporting and keyed (together with the experiment's energy model
/// and instruction budget) into every cell's cache key.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigVariant {
    /// Label used in reports and cell keys (e.g. `base`, `iq64`).
    pub label: String,
    /// The simulator configuration for this variant.
    pub sim_config: SimConfig,
    /// Workload scale factor for this variant.
    pub scale: f64,
}

impl ConfigVariant {
    /// The experiment's own configuration, labelled `base`.
    pub fn base(experiment: &Experiment) -> Self {
        ConfigVariant {
            label: "base".to_string(),
            sim_config: experiment.sim_config,
            scale: experiment.scale,
        }
    }

    /// A variant of the experiment's machine with a different issue-queue
    /// capacity (both the queue geometry and the machine width the
    /// compiler pass targets follow).
    ///
    /// # Panics
    ///
    /// If `entries` is zero — a zero-capacity queue can never dispatch,
    /// and catching it at construction beats a panic inside a worker
    /// thread.
    pub fn with_iq_entries(experiment: &Experiment, entries: usize) -> Self {
        assert!(entries >= 1, "issue-queue capacity must be at least 1");
        let mut sim_config = experiment.sim_config;
        sim_config.iq.entries = entries;
        sim_config.widths.iq_capacity = entries;
        ConfigVariant {
            label: format!("iq{entries}"),
            sim_config,
            scale: experiment.scale,
        }
    }

    /// A variant of the experiment's machine with a different issue-queue
    /// bank size (same capacity, different gating granularity).
    ///
    /// # Panics
    ///
    /// If `bank_size` is zero (the bank count would divide by it).
    pub fn with_iq_bank_size(experiment: &Experiment, bank_size: usize) -> Self {
        assert!(bank_size >= 1, "issue-queue bank size must be at least 1");
        let mut sim_config = experiment.sim_config;
        sim_config.iq.bank_size = bank_size;
        ConfigVariant {
            label: format!("bank{bank_size}"),
            sim_config,
            scale: experiment.scale,
        }
    }

    /// A variant running the experiment's machine at a different workload
    /// scale.
    ///
    /// # Panics
    ///
    /// If `scale` is not a positive finite number.
    pub fn with_scale(experiment: &Experiment, scale: f64) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "workload scale must be positive and finite"
        );
        ConfigVariant {
            label: format!("scale{scale}"),
            sim_config: experiment.sim_config,
            scale,
        }
    }
}

/// Results of a configuration sweep: one [`Suite`] per [`ConfigVariant`],
/// in the order the variants were declared.
#[derive(Debug, Clone, PartialEq)]
pub struct Sweep {
    points: Vec<(ConfigVariant, Suite)>,
}

impl Sweep {
    /// The sweep points in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = &(ConfigVariant, Suite)> {
        self.points.iter()
    }

    /// The suite of the `index`-th variant.
    pub fn suite(&self, index: usize) -> &Suite {
        &self.points[index].1
    }

    /// The variant of the `index`-th point.
    pub fn variant(&self, index: usize) -> &ConfigVariant {
        &self.points[index].0
    }

    /// The suite for the variant with the given label, if present.
    pub fn suite_for(&self, label: &str) -> Option<&Suite> {
        self.points
            .iter()
            .find(|(v, _)| v.label == label)
            .map(|(_, s)| s)
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the sweep holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Collapses a single-point sweep (the common non-sweeping case) into
    /// its one suite.
    pub fn into_suite(mut self) -> Suite {
        assert!(
            self.points.len() == 1,
            "into_suite on a {}-point sweep; pick a variant instead",
            self.points.len()
        );
        match self.points.pop() {
            Some((_, suite)) => suite,
            None => unreachable!("asserted exactly one point above"),
        }
    }
}

/// A self-contained, serialisable description of a matrix: everything a
/// process that did **not** parse this run's command line needs to rebuild
/// the identical cell space (experiment scale, sweep axes, benchmark and
/// technique names).
///
/// This is the portable twin of [`SubprocessSpec::worker_args`]: the
/// subprocess backend re-ships the coordinator's CLI flags, while the
/// remote backend ships a `MatrixSpec` inside its `RunCells` frame (see
/// `sdiq-remote`) so a worker daemon on another machine rebuilds the same
/// matrix. Both the coordinator and the worker derive their [`Matrix`]
/// from the same spec via [`MatrixSpec::matrix`], so they cannot drift.
///
/// The parts of an [`Experiment`] that are not spelled out here (energy
/// model, instruction budget) are pinned to [`Experiment::paper`]; the
/// per-cell key fingerprint covers them, so any future divergence shows up
/// as a key mismatch, never as a silently different result.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixSpec {
    /// Workload scale ([`Experiment::scale`]).
    pub scale: f64,
    /// Sweep axes in declaration order: `(axis, values)` with axis one of
    /// `iq`, `bank`, `scale` (the `repro --sweep` grammar).
    pub sweeps: Vec<(String, Vec<f64>)>,
    /// Benchmark names ([`Benchmark::name`]) of the benchmark axis.
    pub benchmarks: Vec<String>,
    /// Technique names ([`Technique::name`]) of the technique axis.
    pub techniques: Vec<String>,
}

impl MatrixSpec {
    /// The experiment this spec describes: the paper's machine at the
    /// spec's workload scale.
    pub fn experiment(&self) -> Experiment {
        Experiment {
            scale: self.scale,
            ..Experiment::paper()
        }
    }

    /// Builds the matrix this spec describes over `experiment` (which must
    /// come from [`MatrixSpec::experiment`] — split only because [`Matrix`]
    /// borrows it). Returns an error for unknown benchmark, technique or
    /// axis names and for out-of-range sweep values: a spec arriving over
    /// the wire is input, not an invariant, so nothing here panics.
    pub fn matrix<'a>(&self, experiment: &'a Experiment) -> Result<Matrix<'a>, String> {
        let benchmarks = self
            .benchmarks
            .iter()
            .map(|name| {
                Benchmark::from_name(name).ok_or_else(|| format!("unknown benchmark `{name}`"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let techniques = self
            .techniques
            .iter()
            .map(|name| {
                Technique::from_name(name).ok_or_else(|| {
                    format!(
                        "unknown technique `{name}` (registered: {})",
                        crate::TechniqueRegistry::names().join(", ")
                    )
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let mut matrix = Matrix::new(experiment)
            .benchmarks(&benchmarks)
            .techniques(&techniques);
        for (axis, values) in &self.sweeps {
            matrix = match axis.as_str() {
                "iq" | "bank" => {
                    // Machine geometry: zero would panic in `banks()`,
                    // fractions would silently truncate, huge values OOM
                    // the simulator (the CLI enforces the same bound).
                    const MAX_GEOMETRY: f64 = 65536.0;
                    let entries = values
                        .iter()
                        .map(|&v| {
                            if v >= 1.0 && v.fract() == 0.0 && v <= MAX_GEOMETRY {
                                Ok(v as usize)
                            } else {
                                Err(format!(
                                    "sweep axis `{axis}` wants integers in 1..={MAX_GEOMETRY}, got `{v}`"
                                ))
                            }
                        })
                        .collect::<Result<Vec<_>, String>>()?;
                    if axis == "iq" {
                        matrix.sweep_iq_entries(&entries)
                    } else {
                        matrix.sweep_iq_bank_sizes(&entries)
                    }
                }
                "scale" => {
                    for &v in values {
                        if !(v > 0.0 && v.is_finite()) {
                            return Err(format!(
                                "sweep axis `scale` wants positive values, got `{v}`"
                            ));
                        }
                    }
                    matrix.sweep_scales(values)
                }
                other => return Err(format!("unknown sweep axis `{other}` (iq, bank, scale)")),
            };
        }
        Ok(matrix)
    }
}

/// A stable fingerprint of a matrix's whole cell-key space (order
/// independent). The remote coordinator sends it with every `RunCells`
/// frame and the worker daemon recomputes it from the shipped
/// [`MatrixSpec`]: a mismatch means the two processes disagree about what
/// the matrix *is* (version skew, a hand-edited spec) and is rejected
/// before any cell runs.
pub fn matrix_fingerprint(keys: &[String]) -> u64 {
    let mut sorted: Vec<&String> = keys.iter().collect();
    sorted.sort();
    let mut hasher = Fnv1a::default();
    for key in sorted {
        hasher.write(key.as_bytes());
        hasher.write_u8(0); // unambiguous key boundary
    }
    hasher.finish()
}

/// One cell of the flattened cross product (see [`Matrix`]).
#[derive(Debug, Clone, Copy)]
struct Cell {
    variant: usize,
    benchmark: Benchmark,
    technique: Technique,
}

/// `true` if a seeded report genuinely describes the cell it is keyed as
/// (guards suite assembly against corrupted or hand-edited save files).
fn seed_matches(report: &RunReport, benchmark: Benchmark, technique: Technique) -> bool {
    report.technique == technique && report.workload == benchmark.name()
}

/// Builder for a full (benchmark × technique × configuration) sweep run on
/// the job engine.
///
/// ```
/// use sdiq_core::{Experiment, Matrix, Technique};
/// use sdiq_workloads::Benchmark;
///
/// let experiment = Experiment { scale: 0.05, ..Experiment::paper() };
/// let sweep = Matrix::new(&experiment)
///     .benchmarks(&[Benchmark::Gzip])
///     .techniques(&[Technique::Baseline, Technique::Noop])
///     .jobs(2)
///     .run();
/// assert_eq!(sweep.len(), 1); // no sweep axis declared → just `base`
/// assert_eq!(sweep.suite(0).len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Matrix<'a> {
    experiment: &'a Experiment,
    benchmarks: Vec<Benchmark>,
    techniques: Vec<Technique>,
    variants: Vec<ConfigVariant>,
    jobs: usize,
    /// `(index, count)`: restrict to the cells [`shard_of`] assigns to
    /// `index` (zero-based) out of `count` shards. `None` = every cell.
    shard: Option<(usize, usize)>,
}

impl<'a> Matrix<'a> {
    /// A matrix over every benchmark and technique of `experiment`'s base
    /// configuration, auto-sized worker pool.
    pub fn new(experiment: &'a Experiment) -> Self {
        Matrix {
            experiment,
            benchmarks: Benchmark::ALL.to_vec(),
            techniques: Technique::all(),
            variants: Vec::new(),
            jobs: 0,
            shard: None,
        }
    }

    /// Restricts the benchmark axis.
    pub fn benchmarks(mut self, benchmarks: &[Benchmark]) -> Self {
        self.benchmarks = benchmarks.to_vec();
        self
    }

    /// Restricts the technique axis.
    pub fn techniques(mut self, techniques: &[Technique]) -> Self {
        self.techniques = techniques.to_vec();
        self
    }

    /// Replaces the configuration axis with an explicit variant list.
    pub fn variants(mut self, variants: Vec<ConfigVariant>) -> Self {
        self.variants = variants;
        self
    }

    /// Appends issue-queue-capacity variants to the configuration axis
    /// (the base configuration is kept as the first point).
    pub fn sweep_iq_entries(mut self, entries: &[usize]) -> Self {
        self.ensure_base();
        self.variants.extend(
            entries
                .iter()
                .map(|&e| ConfigVariant::with_iq_entries(self.experiment, e)),
        );
        self
    }

    /// Appends issue-queue bank-size variants to the configuration axis.
    pub fn sweep_iq_bank_sizes(mut self, bank_sizes: &[usize]) -> Self {
        self.ensure_base();
        self.variants.extend(
            bank_sizes
                .iter()
                .map(|&b| ConfigVariant::with_iq_bank_size(self.experiment, b)),
        );
        self
    }

    /// Appends workload-scale variants to the configuration axis.
    pub fn sweep_scales(mut self, scales: &[f64]) -> Self {
        self.ensure_base();
        self.variants.extend(
            scales
                .iter()
                .map(|&s| ConfigVariant::with_scale(self.experiment, s)),
        );
        self
    }

    /// Fixes the worker-pool size (`0` = auto:
    /// `std::thread::available_parallelism`).
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs;
        self
    }

    /// Restricts the matrix to shard `index` (zero-based) of `count`:
    /// exactly the cells whose key [`shard_of`] assigns to that shard, and
    /// nothing else — key generation, execution, persistence and seed
    /// accounting all see only the owned cells. The partition is a pure
    /// function of the cell keys, so every process of a sharded run
    /// computes the same assignment without coordination.
    ///
    /// # Panics
    ///
    /// If `count` is zero or `index >= count`.
    pub fn shard(mut self, index: usize, count: usize) -> Self {
        assert!(count >= 1, "shard count must be at least 1");
        assert!(
            index < count,
            "shard index {index} out of range for {count} shards"
        );
        self.shard = Some((index, count));
        self
    }

    fn ensure_base(&mut self) {
        if self.variants.is_empty() {
            self.variants.push(ConfigVariant::base(self.experiment));
        }
    }

    /// The configuration-axis points this matrix sweeps (`base` alone if
    /// no axis was declared) — the same list the cell space is built
    /// from, so external checkers (`repro lint`) cover exactly the
    /// variants a run would execute.
    pub fn config_variants(&self) -> Vec<ConfigVariant> {
        self.effective_variants()
    }

    /// The effective variant list (`base` alone if no axis was declared).
    fn effective_variants(&self) -> Vec<ConfigVariant> {
        if self.variants.is_empty() {
            vec![ConfigVariant::base(self.experiment)]
        } else {
            self.variants.clone()
        }
    }

    /// Total number of cells this matrix owns: the full cross product, or
    /// only this shard's share of it when [`Matrix::shard`] is set.
    pub fn cell_count(&self) -> usize {
        match self.shard {
            None => self.effective_variants().len() * self.benchmarks.len() * self.techniques.len(),
            Some(_) => self.cells(&self.effective_variants()).len(),
        }
    }

    /// The full cross-product size, ignoring any shard restriction.
    pub fn unsharded_cell_count(&self) -> usize {
        self.effective_variants().len() * self.benchmarks.len() * self.techniques.len()
    }

    /// The flattened (variant × technique × benchmark) cell list — the
    /// single definition of cell order: key generation, execution,
    /// reassembly and seed accounting all iterate this, so they cannot
    /// drift apart. Benchmark is the *innermost* axis so that the first
    /// `jobs` cells a cold worker pool claims span `jobs` distinct
    /// benchmarks: their program builds overlap instead of piling up on
    /// one `OnceLock` (suite assembly keys by cell, so the order is free
    /// to serve the cache).
    fn cells(&self, variants: &[ConfigVariant]) -> Vec<Cell> {
        let mut cells =
            Vec::with_capacity(variants.len() * self.benchmarks.len() * self.techniques.len());
        for (variant, _) in variants.iter().enumerate() {
            for &technique in &self.techniques {
                for &benchmark in &self.benchmarks {
                    cells.push(Cell {
                        variant,
                        benchmark,
                        technique,
                    });
                }
            }
        }
        // Shard restriction: keep only the cells whose key this shard owns.
        // Filtering the canonical list (instead of building a different
        // one) preserves the relative cell order, so a sharded save file
        // merges back into exactly the serial key space.
        if let Some((index, count)) = self.shard {
            cells.retain(|cell| {
                let key = cell_key(
                    self.experiment,
                    &variants[cell.variant],
                    cell.benchmark,
                    cell.technique,
                );
                shard_of(&key, count) == index
            });
        }
        cells
    }

    /// The cache key of every cell, in deterministic cell order. This is
    /// the key space `--save`/`--load` persistence is indexed by.
    pub fn cell_keys(&self) -> Vec<String> {
        let variants = self.effective_variants();
        self.cells(&variants)
            .iter()
            .map(|cell| {
                cell_key(
                    self.experiment,
                    &variants[cell.variant],
                    cell.benchmark,
                    cell.technique,
                )
            })
            .collect()
    }

    /// Number of cells [`Matrix::run_with`] would actually compute given
    /// `seed`: cells whose key is absent *plus* cells whose seeded report
    /// fails the integrity check (wrong technique/workload under the key)
    /// and is therefore recomputed.
    pub fn missing_cells(&self, seed: &HashMap<String, RunReport>) -> usize {
        self.missing_cell_keys(seed).len()
    }

    /// The keys of exactly the cells [`Matrix::run_with`] would compute
    /// given `seed`, in canonical cell order (the same predicate as
    /// [`Matrix::missing_cells`]). This is the work list a distribution
    /// backend schedules: seeded cells are already durable and never leave
    /// the coordinator.
    pub fn missing_cell_keys(&self, seed: &HashMap<String, RunReport>) -> Vec<String> {
        let variants = self.effective_variants();
        self.cells(&variants)
            .iter()
            .filter_map(|cell| {
                let key = cell_key(
                    self.experiment,
                    &variants[cell.variant],
                    cell.benchmark,
                    cell.technique,
                );
                let seeded = seed
                    .get(&key)
                    .is_some_and(|report| seed_matches(report, cell.benchmark, cell.technique));
                (!seeded).then_some(key)
            })
            .collect()
    }

    /// Runs exactly the cells named by `requested` (a subset of this
    /// matrix's key space) on the worker pool, streaming each computed
    /// report into `sink` as it lands, and returns the key-addressed
    /// results. A requested key this matrix does not own is an error —
    /// it means the requester built a different matrix (the remote worker
    /// daemon's defence against version skew, mirroring the subprocess
    /// coordinator's foreign-key check from the other side).
    pub fn run_cells_by_key(
        &self,
        cache: &ArtifactCache,
        requested: &std::collections::HashSet<String>,
        sink: Option<&dyn CellSink>,
    ) -> Result<HashMap<String, RunReport>, String> {
        let variants = self.effective_variants();
        let keyed: Vec<(String, Cell)> = self
            .cells(&variants)
            .into_iter()
            .map(|cell| {
                (
                    cell_key(
                        self.experiment,
                        &variants[cell.variant],
                        cell.benchmark,
                        cell.technique,
                    ),
                    cell,
                )
            })
            .collect();
        {
            let own: std::collections::HashSet<&str> =
                keyed.iter().map(|(key, _)| key.as_str()).collect();
            let mut foreign: Vec<&str> = requested
                .iter()
                .map(String::as_str)
                .filter(|key| !own.contains(key))
                .collect();
            if !foreign.is_empty() {
                foreign.sort();
                return Err(format!(
                    "{} requested cell key(s) not in this matrix (configurations \
                     disagree), first: `{}`",
                    foreign.len(),
                    foreign[0]
                ));
            }
        }
        let todo: Vec<&(String, Cell)> = keyed
            .iter()
            .filter(|(key, _)| requested.contains(key))
            .collect();

        let results: Vec<OnceLock<RunReport>> = todo.iter().map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);
        let jobs = self.effective_jobs(todo.len());
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| {
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some((key, cell)) = todo.get(index).map(|entry| (&entry.0, &entry.1))
                        else {
                            break;
                        };
                        let report = observed_cell(
                            self.experiment,
                            cache,
                            &variants[cell.variant],
                            key,
                            cell.benchmark,
                            cell.technique,
                        );
                        if let Some(sink) = sink {
                            let _span = sdiq_obs::span("persist-cell", "persist");
                            sink.cell_complete(key, &report);
                        }
                        results[index].set(report).unwrap_or_else(|_| {
                            unreachable!("each cell is claimed by exactly one worker")
                        });
                    }
                    // Last act, not left to TLS teardown: the scope owner
                    // unblocks the moment this closure returns and may
                    // drain immediately.
                    sdiq_obs::flush();
                });
            }
        });
        Ok(todo
            .into_iter()
            .zip(results)
            .map(|((key, _), slot)| {
                (
                    key.clone(),
                    slot.into_inner()
                        .unwrap_or_else(|| unreachable!("worker pool filled every requested cell")),
                )
            })
            .collect())
    }

    /// Runs the matrix on a private artifact cache with no seeded cells.
    pub fn run(&self) -> Sweep {
        self.run_with(&ArtifactCache::new(), &HashMap::new())
    }

    /// Runs the matrix: cells whose key appears in `seed` are taken from
    /// it verbatim (the `--load` path re-runs only missing cells), the
    /// rest are computed on the worker pool through `cache`.
    pub fn run_with(&self, cache: &ArtifactCache, seed: &HashMap<String, RunReport>) -> Sweep {
        self.run_with_sink(cache, seed, None)
    }

    /// [`Matrix::run_with`], additionally streaming every **computed**
    /// cell (not the seeded ones — they are already durable wherever the
    /// seed came from) into `sink` the moment its report exists. This is
    /// the crash-resume hook: with a
    /// [`crate::persist::CheckpointWriter`] as the sink, a killed run
    /// loses at most the cells that were still in flight.
    pub fn run_with_sink(
        &self,
        cache: &ArtifactCache,
        seed: &HashMap<String, RunReport>,
        sink: Option<&dyn CellSink>,
    ) -> Sweep {
        let variants = self.effective_variants();
        let cells = self.cells(&variants);

        let results: Vec<OnceLock<RunReport>> = cells.iter().map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);
        let jobs = self.effective_jobs(cells.len());
        std::thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(|| {
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(cell) = cells.get(index) else {
                            break;
                        };
                        let variant = &variants[cell.variant];
                        let key =
                            cell_key(self.experiment, variant, cell.benchmark, cell.technique);
                        // A seeded report must actually describe this cell —
                        // `Suite::insert` slots by the report's own technique,
                        // so a corrupted save file could otherwise mis-file a
                        // cell and silently leave another empty. Mismatched
                        // seeds are treated as missing and recomputed
                        // (`missing_cells` applies the same predicate).
                        let seeded = seed
                            .get(&key)
                            .filter(|report| seed_matches(report, cell.benchmark, cell.technique));
                        let report = match seeded {
                            Some(seeded) => seeded.clone(),
                            None => {
                                let report = observed_cell(
                                    self.experiment,
                                    cache,
                                    variant,
                                    &key,
                                    cell.benchmark,
                                    cell.technique,
                                );
                                if let Some(sink) = sink {
                                    let _span = sdiq_obs::span("persist-cell", "persist");
                                    sink.cell_complete(&key, &report);
                                }
                                report
                            }
                        };
                        results[index].set(report).unwrap_or_else(|_| {
                            unreachable!("each cell is claimed by exactly one worker")
                        });
                    }
                    // See run_cells_by_key: flush before the scope owner
                    // can observe this thread as finished.
                    sdiq_obs::flush();
                });
            }
        });

        // Reassembly is keyed by each result's own cell, not by position,
        // so it is independent of whatever order `cells()` chooses.
        let mut suites: Vec<Suite> = variants.iter().map(|_| Suite::default()).collect();
        for (cell, slot) in cells.iter().zip(results) {
            let report = slot
                .into_inner()
                .unwrap_or_else(|| unreachable!("worker pool filled every cell before exiting"));
            suites[cell.variant].insert(cell.benchmark, report);
        }
        Sweep {
            points: variants.into_iter().zip(suites).collect(),
        }
    }

    /// Flattens a sweep produced by this matrix back into its
    /// key-addressed cells (the `--save` path).
    pub fn collect_cells(&self, sweep: &Sweep) -> std::collections::BTreeMap<String, RunReport> {
        let variants = self.effective_variants();
        let mut cells = std::collections::BTreeMap::new();
        for cell in self.cells(&variants) {
            if let Some(report) = sweep
                .suite(cell.variant)
                .get(cell.benchmark, cell.technique)
            {
                cells.insert(
                    cell_key(
                        self.experiment,
                        &variants[cell.variant],
                        cell.benchmark,
                        cell.technique,
                    ),
                    report.clone(),
                );
            }
        }
        cells
    }

    fn effective_jobs(&self, cells: usize) -> usize {
        let auto = || {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let jobs = if self.jobs == 0 { auto() } else { self.jobs };
        jobs.clamp(1, cells.max(1))
    }

    /// Runs the matrix on the chosen [`Backend`].
    ///
    /// * [`Backend::InProcess`] is [`Matrix::run_with_sink`] with a fresh
    ///   cache and the given seed — infallible, same-process.
    /// * [`Backend::Subprocess`] turns this process into a coordinator: it
    ///   spawns one worker per shard (the worker protocol is documented on
    ///   [`SubprocessSpec`]), waits for all of them, loads their partial
    ///   cell maps and assembles the merged sweep, which is bit-identical
    ///   to a serial run because every cell is a pure function of its key.
    /// * [`Backend::Remote`] distributes the missing cells over networked
    ///   worker daemons through the [`RemoteSpec::launch`] hook (the TCP
    ///   transport and scheduler live in the `sdiq-remote` crate; the
    ///   engine stays transport-free). Same hard guarantee: the assembled
    ///   sweep is bit-identical to a serial run.
    ///
    /// Either way, `sink` observes every cell that was not already in
    /// `seed`: computed locally for the in-process backend, returned by a
    /// worker for the distributed ones (delivered as each shard lands /
    /// each remote cell streams in, so a killed coordinator keeps what
    /// finished).
    pub fn run_on(
        &self,
        backend: &Backend,
        seed: &HashMap<String, RunReport>,
        sink: Option<&dyn CellSink>,
    ) -> Result<Sweep, BackendError> {
        match backend {
            Backend::InProcess { jobs } => {
                let mut matrix = self.clone();
                matrix.jobs = *jobs;
                Ok(matrix.run_with_sink(&ArtifactCache::new(), seed, sink))
            }
            Backend::Subprocess(spec) => self.run_subprocess(spec, seed, sink),
            Backend::Remote(spec) => (spec.launch)(self, spec, seed, sink),
        }
    }

    fn run_subprocess(
        &self,
        spec: &SubprocessSpec,
        seed: &HashMap<String, RunReport>,
        sink: Option<&dyn CellSink>,
    ) -> Result<Sweep, BackendError> {
        assert!(
            self.shard.is_none(),
            "the subprocess coordinator owns the whole matrix; shard() is for workers"
        );
        assert!(spec.shards >= 1, "need at least one shard");
        std::fs::create_dir_all(&spec.scratch_dir).map_err(|e| {
            BackendError::new(format!(
                "creating scratch dir {}: {e}",
                spec.scratch_dir.display()
            ))
        })?;

        // The coordinator's whole seed (loaded save files, its checkpoint)
        // travels to the workers as one extra `--load` file, so cells that
        // are already durable are never recomputed — including across a
        // serial-checkpoint → sharded mode switch.
        let seed_path = (!seed.is_empty()).then(|| {
            let path = spec.scratch_dir.join("seed.json");
            let cells: std::collections::BTreeMap<String, RunReport> =
                seed.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
            std::fs::write(&path, crate::persist::save_cells(&cells)).map(|()| path)
        });
        let seed_path = match seed_path {
            None => None,
            Some(Ok(path)) => Some(path),
            Some(Err(e)) => {
                return Err(BackendError::new(format!("writing worker seed file: {e}")))
            }
        };

        // Spawn every worker first, then wait: shards run concurrently.
        let mut children = Vec::with_capacity(spec.shards);
        for shard in 0..spec.shards {
            let save_path =
                spec.scratch_dir
                    .join(format!("shard-{}-of-{}.json", shard + 1, spec.shards));
            let mut command = std::process::Command::new(&spec.worker_exe);
            command.args(&spec.worker_args);
            if let Some(seed_path) = &seed_path {
                command.arg("--load").arg(seed_path);
            }
            command
                .arg("--shard")
                .arg(format!("{}/{}", shard + 1, spec.shards))
                .arg("--save")
                .arg(&save_path);
            if let Some(stem) = &spec.worker_checkpoint_stem {
                // Per-shard crash durability: each worker appends its
                // completed cells to its own *stable* checkpoint path (not
                // in the scratch dir) and seeds itself from it when the
                // coordinator is re-run after a kill.
                command.arg("--checkpoint").arg(format!(
                    "{}.shard-{}-of-{}",
                    stem.display(),
                    shard + 1,
                    spec.shards
                ));
            }
            let child = command
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::inherit())
                .spawn()
                .map_err(|e| {
                    BackendError::new(format!(
                        "spawning worker {} ({}): {e}",
                        shard + 1,
                        spec.worker_exe.display()
                    ))
                });
            match child {
                Ok(child) => children.push((shard, save_path, child)),
                Err(error) => {
                    // Don't strand the workers that did spawn.
                    reap(children);
                    return Err(error);
                }
            }
        }

        // Wait for every worker. After the first failure the remaining
        // children are killed and reaped instead of being dropped — a
        // dropped `Child` keeps running (and burning CPU on its whole
        // shard) with nobody left to collect it.
        let expected: std::collections::HashSet<String> = self.cell_keys().into_iter().collect();
        let mut merged: HashMap<String, RunReport> = seed.clone();
        let mut failure: Option<BackendError> = None;
        for (shard, save_path, mut child) in children {
            if failure.is_some() {
                reap(vec![(shard, save_path, child)]);
                continue;
            }
            let cells = wait_for_worker(shard, spec.shards, &save_path, &mut child);
            let cells = match cells {
                Ok(cells) => cells,
                Err(error) => {
                    failure = Some(error);
                    continue;
                }
            };
            for (key, report) in cells {
                // A well-behaved worker only writes keys from this matrix's
                // key space; anything else means the worker ran a different
                // configuration than the coordinator.
                if !expected.contains(&key) {
                    failure = Some(BackendError::new(format!(
                        "worker {} produced foreign cell key `{key}` — \
                         worker and coordinator configurations disagree",
                        shard + 1
                    )));
                    break;
                }
                // Cells the seed already held were durable before this run;
                // everything a worker newly delivered streams to the sink
                // (the coordinator's own checkpoint) as its shard lands.
                if let Some(sink) = sink {
                    if !seed.contains_key(&key) {
                        sink.cell_complete(&key, &report);
                    }
                }
                merged.insert(key, report);
            }
        }
        if let Some(failure) = failure {
            return Err(failure);
        }

        let missing = self.missing_cells(&merged);
        if missing > 0 {
            return Err(BackendError::new(format!(
                "merged worker outputs still miss {missing} cells — \
                 a worker under-covered its shard"
            )));
        }
        // Assembly only: every cell is seeded, so nothing is recomputed and
        // the merged sweep is bit-identical to a serial run.
        Ok(self.run_with(&ArtifactCache::new(), &merged))
    }
}

/// Kills and reaps worker children that are no longer wanted (spawn
/// failure or an earlier worker's error). Best-effort: a child that
/// already exited makes `kill` a no-op and `wait` collects it.
fn reap(children: Vec<(usize, PathBuf, std::process::Child)>) {
    for (_, _, mut child) in children {
        let _ = child.kill();
        let _ = child.wait();
    }
}

/// Waits for one worker and loads its delivered cell map.
fn wait_for_worker(
    shard: usize,
    shards: usize,
    save_path: &std::path::Path,
    child: &mut std::process::Child,
) -> Result<HashMap<String, RunReport>, BackendError> {
    let status = child
        .wait()
        .map_err(|e| BackendError::new(format!("waiting for worker {}: {e}", shard + 1)))?;
    if !status.success() {
        return Err(BackendError::new(format!(
            "worker {}/{shards} exited with {status}",
            shard + 1
        )));
    }
    let text = std::fs::read_to_string(save_path).map_err(|e| {
        BackendError::new(format!(
            "reading worker {} output {}: {e}",
            shard + 1,
            save_path.display()
        ))
    })?;
    crate::persist::load_cells_any(&text)
        .map_err(|e| BackendError::new(format!("worker {} output: {e}", shard + 1)))
}

/// Observer of completed cells (see [`Matrix::run_with_sink`]). Called from
/// worker threads, hence `Sync`; implementations serialise internally.
pub trait CellSink: Sync {
    /// One computed cell's report, delivered as soon as it exists.
    fn cell_complete(&self, key: &str, report: &RunReport);
}

/// Where a matrix run executes.
#[derive(Debug, Clone)]
pub enum Backend {
    /// The in-process worker pool (`jobs = 0` → one worker per hardware
    /// thread) — the default, and the execution layer every other backend
    /// bottoms out in.
    InProcess {
        /// Worker-pool size (`0` = auto).
        jobs: usize,
    },
    /// A coordinator spawning one worker subprocess per shard and merging
    /// their partial suites.
    Subprocess(SubprocessSpec),
    /// A coordinator distributing cells over networked worker daemons
    /// (`repro serve` instances) and streaming their results back — the
    /// scheduler and TCP transport live in the `sdiq-remote` crate.
    Remote(RemoteSpec),
}

/// The remote backend's launch hook: given the coordinator's matrix, the
/// spec, the seed and the streaming sink, distribute the missing cells and
/// assemble the sweep. `sdiq-remote` provides the implementation
/// (`sdiq_remote::backend` fills this in); keeping it a plain function
/// pointer keeps `sdiq-core` free of any transport code while letting
/// [`Matrix::run_on`] treat all backends uniformly.
pub type RemoteLaunch = fn(
    &Matrix<'_>,
    &RemoteSpec,
    &HashMap<String, RunReport>,
    Option<&dyn CellSink>,
) -> Result<Sweep, BackendError>;

/// The remote backend: which worker daemons to dial and how to describe
/// this matrix to them (see `sdiq-remote` for the wire protocol and the
/// fault-tolerant scheduler behind [`RemoteSpec::launch`]).
#[derive(Debug, Clone)]
pub struct RemoteSpec {
    /// Worker daemon addresses (`host:port`), one entry per worker.
    pub workers: Vec<String>,
    /// When set, the coordinator additionally listens for worker daemons
    /// that dial *it* (`repro serve --register`) and waits for this many
    /// registrations before scheduling — the NAT'd-fleet rendezvous.
    pub registration: Option<Registration>,
    /// The portable matrix description shipped to every worker, so a
    /// daemon that never saw this run's command line rebuilds the
    /// identical cell space. Must describe the same matrix `run_on` is
    /// called on — deriving both from one [`MatrixSpec`] guarantees it.
    pub spec: MatrixSpec,
    /// How many times a single cell may be re-queued after worker
    /// failures before the whole run aborts (guards against a cell that
    /// kills every worker it lands on).
    pub retry_budget: usize,
    /// How long one dial attempt may take before the worker counts as
    /// unreachable. Without this a single blackholed address stalls
    /// coordinator startup for the OS connect default (minutes).
    pub connect_timeout: Duration,
    /// Declare a worker dead after this much silence on its socket.
    /// Healthy daemons heartbeat every few seconds even mid-cell, so any
    /// silence past this deadline means the worker is hung (frozen OS,
    /// blackholed network) and its in-flight cells must re-queue.
    /// `Duration::ZERO` disables the deadline (reads block forever — the
    /// pre-liveness behaviour; only sensible for debugging).
    pub heartbeat_deadline: Duration,
    /// When the shared queue drains but cells are still in flight, let
    /// idle drivers speculatively re-issue straggler cells to their
    /// workers. First result wins; duplicates are benign because cell
    /// results are deterministic (MapReduce-style backup tasks).
    pub speculate: bool,
    /// Offer workers the compact binary frame codec at `Hello` time
    /// (workers that don't advertise it keep speaking JSON — the two
    /// codecs interoperate per connection). Off forces JSON everywhere,
    /// for debugging and for pricing the codecs against each other.
    pub binary_wire: bool,
    /// Per-worker pipelining window: how many cells the scheduler keeps
    /// outstanding on one connection so the worker never idles between
    /// batches. `0` means the default, 2× the worker's advertised
    /// capacity.
    pub pipeline_window: usize,
    /// Shared secret for the HMAC handshake. When set, every connection
    /// (dialed and registered) must prove knowledge of the key before
    /// any protocol frame; when unset, connections are unauthenticated
    /// (trusted networks only). Both sides must agree.
    pub auth_key: Option<String>,
    /// What observability the coordinator asks of the fleet (metrics
    /// piggybacked on heartbeats, span recording shipped back before
    /// `Done`). Strictly out-of-band: results are bit-identical whatever
    /// this says, and workers that predate the `obs1` capability simply
    /// never see the request.
    pub observe: ObserveSpec,
    /// The scheduler implementation (see [`RemoteLaunch`]).
    pub launch: RemoteLaunch,
}

/// What a run observes about itself (see `sdiq-obs`): live fleet metrics,
/// span tracing, or neither. Never affects results — only what gets
/// reported on stderr and what `--trace` writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObserveSpec {
    /// Workers report a compact metrics delta with every heartbeat and
    /// the coordinator aggregates per-worker rates.
    pub metrics: bool,
    /// Workers record spans and ship them back before `Done`, for the
    /// coordinator's Chrome-trace export.
    pub trace: bool,
}

/// Rendezvous configuration for worker self-registration: instead of the
/// coordinator dialing `host:port` workers, daemons behind NAT dial the
/// coordinator and announce themselves with a `Register` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Registration {
    /// Address the coordinator binds for incoming registrations
    /// (`host:port`; port `0` picks a free one).
    pub listen: String,
    /// How many worker registrations to wait for before scheduling.
    pub expect: usize,
}

/// The subprocess backend's worker protocol.
///
/// For shard `k` of `n` (1-based), the coordinator invokes
///
/// ```text
/// <worker_exe> <worker_args...> --shard k/n --save <scratch_dir>/shard-k-of-n.json
///              [--checkpoint <stem>.shard-k-of-n]
/// ```
///
/// and expects the worker to (1) construct the *same* matrix the
/// coordinator holds from `worker_args` alone, (2) compute exactly the
/// cells [`shard_of`] assigns to shard `k−1`, (3) write them as a
/// cell-keyed save file (or checkpoint file) at the given path, and
/// (4) exit 0. `repro` implements this protocol; the coordinator verifies
/// it (exit status, key-space membership, full coverage of the merged
/// map) rather than trusting it.
#[derive(Debug, Clone)]
pub struct SubprocessSpec {
    /// The worker binary (normally `std::env::current_exe()`).
    pub worker_exe: PathBuf,
    /// Arguments that reproduce this matrix in the worker, *excluding* the
    /// `--shard`/`--save` pair the coordinator appends.
    pub worker_args: Vec<String>,
    /// Number of worker processes (= shards).
    pub shards: usize,
    /// Directory for the per-shard save files.
    pub scratch_dir: PathBuf,
    /// When set, each worker additionally gets
    /// `--checkpoint <stem>.shard-<k>-of-<n>` so its completed cells are
    /// crash-durable per cell (and the worker seeds itself from that file
    /// when the coordinator is re-run). `None` = workers don't checkpoint.
    pub worker_checkpoint_stem: Option<PathBuf>,
}

/// A failure of a distribution backend (worker spawn/dial, worker exit or
/// death, unreadable or protocol-violating worker output, a drained pool).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendError {
    message: String,
}

impl BackendError {
    /// Wraps a backend failure message (public so out-of-crate backends —
    /// the `sdiq-remote` scheduler — report through the same type).
    pub fn new(message: impl Into<String>) -> Self {
        BackendError {
            message: message.into(),
        }
    }
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "matrix backend: {}", self.message)
    }
}

impl std::error::Error for BackendError {}

/// The shard a cell key belongs to, out of `count` shards: a stable
/// FNV-1a fingerprint of the key text, reduced mod `count`. Pure function
/// of `(key, count)` — every process computes the same partition, so a
/// worker needs no coordination to know which cells are its own.
///
/// # Panics
///
/// If `count` is zero.
pub fn shard_of(key: &str, count: usize) -> usize {
    assert!(count >= 1, "shard count must be at least 1");
    let mut hasher = Fnv1a::default();
    hasher.write(key.as_bytes());
    (hasher.finish() % count as u64) as usize
}

/// [`run_cell`] wrapped in the observability instrumentation shared by
/// both engine loops: the in-flight gauge, a traced `cell` span carrying
/// the cell key, and the per-cell counters/histogram (`sdiq-obs` metrics
/// are always on; the span is a no-op unless tracing was enabled).
/// Strictly out-of-band — the report is returned untouched, so results
/// are bit-identical with observability on or off.
fn observed_cell(
    experiment: &Experiment,
    cache: &ArtifactCache,
    variant: &ConfigVariant,
    key: &str,
    benchmark: Benchmark,
    technique: Technique,
) -> RunReport {
    let metrics = sdiq_obs::metrics();
    metrics.cells_in_flight.add(1);
    let started = std::time::Instant::now();
    let span = sdiq_obs::span("cell", "cell").map(|s| s.arg("key", key));
    let report = run_cell(experiment, cache, variant, benchmark, technique);
    drop(span);
    metrics.cells_in_flight.sub(1);
    metrics.cells_done.inc();
    metrics.sim_instructions.add(report.stats.committed);
    metrics
        .cell_wall_nanos
        .observe(started.elapsed().as_nanos() as u64);
    report
}

/// Runs one cell through the artifact cache: software techniques reuse the
/// cached compiler-pass output, hardware techniques run the shared built
/// program directly — no per-cell `Program` clone in either path. Under
/// the compiled backend (the default) the cell's execution plan is also
/// cached: the trace and lowering happen once per (source, SimConfig)
/// shape and every technique/policy of that shape replays the shared plan.
fn run_cell(
    experiment: &Experiment,
    cache: &ArtifactCache,
    variant: &ConfigVariant,
    benchmark: Benchmark,
    technique: Technique,
) -> RunReport {
    let program_key = ProgramKey::new(benchmark, variant.scale);
    let source_and_compile =
        match technique.pass_config_for(variant.sim_config.widths, variant.sim_config.fu_counts) {
            Some(pass) => {
                let compile_key = CompileKey {
                    program: program_key,
                    pass,
                };
                let artifact = cache.compiled(compile_key);
                (PlanSource::Compiled(compile_key), Some(artifact))
            }
            None => (PlanSource::Program(program_key), None),
        };
    match experiment.backend {
        SimBackend::Compiled => {
            let (source, artifact) = source_and_compile;
            let plan = cache.planned(PlanKey {
                source,
                sim_config: variant.sim_config,
                max_dynamic_instructions: experiment.max_dynamic_instructions,
            });
            let (compile, hint_noops) = match artifact {
                Some(artifact) => (Some(artifact.stats.clone()), artifact.hint_noops_inserted),
                None => (None, 0),
            };
            experiment.run_planned(&plan, technique, compile, hint_noops)
        }
        SimBackend::Interpreted => match source_and_compile {
            (_, Some(artifact)) => experiment.run_prepared(
                &artifact.program,
                technique,
                variant.sim_config,
                Some(artifact.stats.clone()),
                artifact.hint_noops_inserted,
            ),
            (_, None) => {
                let program = cache.program(program_key);
                experiment.run_prepared(&program, technique, variant.sim_config, None, 0)
            }
        },
    }
}

/// The cache key of one cell: human-readable axes plus a fingerprint of
/// everything else the result depends on (simulator configuration, scale,
/// energy model, instruction budget). Loading a save file produced under a
/// different configuration therefore never aliases into the wrong cell.
pub fn cell_key(
    experiment: &Experiment,
    variant: &ConfigVariant,
    benchmark: Benchmark,
    technique: Technique,
) -> String {
    let mut hasher = Fnv1a::default();
    variant.sim_config.hash(&mut hasher);
    hasher.write_u64(variant.scale.to_bits());
    hasher.write_u64(experiment.max_dynamic_instructions);
    let energy = &experiment.energy_model;
    for field in [
        energy.iq_wakeup_comparison,
        energy.iq_write,
        energy.iq_read,
        energy.iq_selection_per_cycle,
        energy.iq_bank_leakage_per_cycle,
        energy.rf_access,
        energy.rf_bank_leakage_per_cycle,
    ] {
        hasher.write_u64(field.to_bits());
    }
    format!(
        "{}|{}|{}|{:016x}",
        benchmark.name(),
        technique.name(),
        variant.label,
        hasher.finish()
    )
}

/// FNV-1a, used for cell-key fingerprints because (unlike the std hasher)
/// its output is stable across processes — save files written by one run
/// must be readable by the next. The integer methods are overridden to
/// canonical little-endian 64-bit writes: the defaults use native byte
/// order and pointer width, which would make fingerprints differ across
/// architectures (derived `Hash` impls funnel `usize` fields and enum
/// discriminants through them).
#[derive(Debug)]
struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf29ce484222325)
    }
}

impl Hasher for Fnv1a {
    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.write_u64(u64::from(i));
    }

    fn write_u16(&mut self, i: u16) {
        self.write_u64(u64::from(i));
    }

    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }

    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }

    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    fn write_i8(&mut self, i: i8) {
        self.write_u64(i as u8 as u64);
    }

    fn write_i16(&mut self, i: i16) {
        self.write_u64(i as u16 as u64);
    }

    fn write_i32(&mut self, i: i32) {
        self.write_u64(i as u32 as u64);
    }

    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }

    fn write_isize(&mut self, i: isize) {
        self.write_u64(i as i64 as u64);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_experiment() -> Experiment {
        Experiment {
            scale: 0.05,
            ..Experiment::paper()
        }
    }

    #[test]
    fn matrix_fills_every_cell_of_every_variant() {
        let exp = tiny_experiment();
        let sweep = Matrix::new(&exp)
            .benchmarks(&[Benchmark::Gzip, Benchmark::Mcf])
            .techniques(&[Technique::Baseline, Technique::Noop])
            .sweep_iq_entries(&[48])
            .jobs(2)
            .run();
        assert_eq!(sweep.len(), 2, "base + iq48");
        assert_eq!(sweep.variant(0).label, "base");
        assert_eq!(sweep.variant(1).label, "iq48");
        assert_eq!(sweep.variant(1).sim_config.iq.entries, 48);
        for (_, suite) in sweep.iter() {
            assert_eq!(suite.len(), 4);
        }
        assert!(sweep.suite_for("iq48").is_some());
        assert!(sweep.suite_for("iq64").is_none());
    }

    #[test]
    fn shrinking_the_queue_cannot_increase_committed_work() {
        let exp = tiny_experiment();
        let sweep = Matrix::new(&exp)
            .benchmarks(&[Benchmark::Gzip])
            .techniques(&[Technique::Baseline])
            .sweep_iq_entries(&[32])
            .run();
        let base = sweep.suite(0).get(Benchmark::Gzip, Technique::Baseline);
        let small = sweep.suite(1).get(Benchmark::Gzip, Technique::Baseline);
        let (base, small) = (base.unwrap(), small.unwrap());
        // Same program, same committed work; the smaller queue can only
        // cost cycles.
        assert_eq!(base.stats.committed, small.stats.committed);
        assert!(small.stats.cycles >= base.stats.cycles);
        assert_eq!(small.stats.iq_total_entries, 32);
    }

    #[test]
    fn cell_keys_distinguish_configuration_content_not_just_labels() {
        let exp = tiny_experiment();
        let mut renamed = ConfigVariant::with_iq_entries(&exp, 48);
        renamed.label = "base".to_string(); // masquerade as the base label
        let base = ConfigVariant::base(&exp);
        let a = cell_key(&exp, &base, Benchmark::Gzip, Technique::Noop);
        let b = cell_key(&exp, &renamed, Benchmark::Gzip, Technique::Noop);
        assert_ne!(a, b, "fingerprint catches the different machine");
        // And the key is stable across calls (it seeds save files).
        assert_eq!(a, cell_key(&exp, &base, Benchmark::Gzip, Technique::Noop));
    }

    #[test]
    fn seeded_cells_are_returned_verbatim_without_recomputation() {
        let exp = tiny_experiment();
        let matrix = Matrix::new(&exp)
            .benchmarks(&[Benchmark::Gzip])
            .techniques(&[Technique::Baseline, Technique::NonEmpty]);
        let sweep = matrix.run();
        let cells = matrix.collect_cells(&sweep);
        assert_eq!(cells.len(), 2);
        let cache = ArtifactCache::new();
        let seeded: HashMap<String, RunReport> = cells.into_iter().collect();
        let again = matrix.run_with(&cache, &seeded);
        assert_eq!(sweep, again, "seeded run reproduces the original");
        assert_eq!(cache.program_builds(), 0, "nothing was rebuilt");
    }
}
