//! Regeneration of the paper's tables and figures from a [`Suite`] of runs.
//!
//! Every public function here corresponds to one table or figure of the
//! paper's evaluation (§5); the `repro` binary in `sdiq-bench` prints their
//! output, and `EXPERIMENTS.md` records the measured values next to the
//! paper's.

use crate::runner::Suite;
use crate::technique::Technique;
use sdiq_sim::SimConfig;
use sdiq_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One series of per-benchmark values plus its average — one group of bars
/// in a paper figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureSeries {
    /// Series label (technique name).
    pub label: String,
    /// `(benchmark, value)` pairs in figure order.
    pub points: Vec<(String, f64)>,
    /// Arithmetic mean over the benchmarks (the paper's `SPECINT` bar).
    pub average: f64,
}

impl FigureSeries {
    fn from_values(label: &str, points: Vec<(String, f64)>) -> Self {
        let average = if points.is_empty() {
            0.0
        } else {
            points.iter().map(|(_, v)| v).sum::<f64>() / points.len() as f64
        };
        FigureSeries {
            label: label.to_string(),
            points,
            average,
        }
    }

    /// Renders the series as an aligned text table row block.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "  {}:", self.label);
        for (name, value) in &self.points {
            let _ = writeln!(out, "    {name:10} {value:8.2}");
        }
        let _ = writeln!(out, "    {:10} {:8.2}", "AVERAGE", self.average);
        out
    }
}

/// A figure with a dynamic-power panel and a static-power panel (Figures 8,
/// 9, 11 and 12 all have this two-panel shape).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerFigure {
    /// Left panel: dynamic power savings (percent).
    pub dynamic: Vec<FigureSeries>,
    /// Right panel: static power savings (percent).
    pub static_: Vec<FigureSeries>,
}

fn series_over<F>(suite: &Suite, technique: Technique, f: F) -> FigureSeries
where
    F: Fn(Benchmark) -> Option<f64>,
{
    let points: Vec<(String, f64)> = suite
        .benchmarks()
        .into_iter()
        .filter_map(|b| f(b).map(|v| (b.name().to_string(), v)))
        .collect();
    FigureSeries::from_values(technique.name(), points)
}

/// Figure 6: normalised IPC loss for the NOOP technique, with the `abella`
/// comparator.
pub fn figure6(suite: &Suite) -> Vec<FigureSeries> {
    [Technique::Noop, Technique::Abella]
        .iter()
        .map(|&t| {
            series_over(suite, t, |b| {
                suite.comparison(b, t).map(|c| c.ipc_loss_percent)
            })
        })
        .collect()
}

/// Figure 7: normalised issue-queue occupancy reduction for the NOOP
/// technique.
pub fn figure7(suite: &Suite) -> FigureSeries {
    series_over(suite, Technique::Noop, |b| {
        suite
            .comparison(b, Technique::Noop)
            .map(|c| c.iq_occupancy_reduction_percent)
    })
}

/// Figure 8: issue-queue dynamic and static power savings for the NOOP
/// technique, with the `nonEmpty` and `abella` comparators.
pub fn figure8(suite: &Suite) -> PowerFigure {
    let techniques = [Technique::NonEmpty, Technique::Noop, Technique::Abella];
    PowerFigure {
        dynamic: techniques
            .iter()
            .map(|&t| {
                series_over(suite, t, |b| {
                    suite.comparison(b, t).map(|c| c.savings.iq_dynamic_pct)
                })
            })
            .collect(),
        static_: techniques
            .iter()
            .map(|&t| {
                series_over(suite, t, |b| {
                    suite.comparison(b, t).map(|c| c.savings.iq_static_pct)
                })
            })
            .collect(),
    }
}

/// Figure 9: integer register-file dynamic and static power savings for the
/// NOOP technique and the `abella` comparator.
pub fn figure9(suite: &Suite) -> PowerFigure {
    let techniques = [Technique::Noop, Technique::Abella];
    PowerFigure {
        dynamic: techniques
            .iter()
            .map(|&t| {
                series_over(suite, t, |b| {
                    suite.comparison(b, t).map(|c| c.savings.rf_dynamic_pct)
                })
            })
            .collect(),
        static_: techniques
            .iter()
            .map(|&t| {
                series_over(suite, t, |b| {
                    suite.comparison(b, t).map(|c| c.savings.rf_static_pct)
                })
            })
            .collect(),
    }
}

/// Figure 10: normalised IPC loss for the Extension and Improved techniques
/// (with the NOOP scheme and `abella` shown for comparison, as in the
/// paper).
pub fn figure10(suite: &Suite) -> Vec<FigureSeries> {
    [
        Technique::Extension,
        Technique::Improved,
        Technique::Noop,
        Technique::Abella,
    ]
    .iter()
    .map(|&t| {
        series_over(suite, t, |b| {
            suite.comparison(b, t).map(|c| c.ipc_loss_percent)
        })
    })
    .collect()
}

/// Figure 11: issue-queue power savings for Extension and Improved.
pub fn figure11(suite: &Suite) -> PowerFigure {
    let techniques = [Technique::Extension, Technique::Improved];
    PowerFigure {
        dynamic: techniques
            .iter()
            .map(|&t| {
                series_over(suite, t, |b| {
                    suite.comparison(b, t).map(|c| c.savings.iq_dynamic_pct)
                })
            })
            .collect(),
        static_: techniques
            .iter()
            .map(|&t| {
                series_over(suite, t, |b| {
                    suite.comparison(b, t).map(|c| c.savings.iq_static_pct)
                })
            })
            .collect(),
    }
}

/// Figure 12: integer register-file power savings for Extension and
/// Improved.
pub fn figure12(suite: &Suite) -> PowerFigure {
    let techniques = [Technique::Extension, Technique::Improved];
    PowerFigure {
        dynamic: techniques
            .iter()
            .map(|&t| {
                series_over(suite, t, |b| {
                    suite.comparison(b, t).map(|c| c.savings.rf_dynamic_pct)
                })
            })
            .collect(),
        static_: techniques
            .iter()
            .map(|&t| {
                series_over(suite, t, |b| {
                    suite.comparison(b, t).map(|c| c.savings.rf_static_pct)
                })
            })
            .collect(),
    }
}

/// §6's overall-processor estimate: dynamic power saving of the whole chip
/// assuming the issue queue consumes `iq_share` (22%) and the integer
/// register file `rf_share` (11%) of total processor power.
pub fn overall_processor_savings(
    suite: &Suite,
    technique: Technique,
    iq_share: f64,
    rf_share: f64,
) -> f64 {
    let benchmarks = suite.benchmarks();
    if benchmarks.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for b in benchmarks {
        if let Some(c) = suite.comparison(b, technique) {
            total += sdiq_power::overall_processor_dynamic_savings(&c.savings, iq_share, rf_share);
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

/// Table 1: the processor configuration, rendered as a text table.
pub fn table1(config: &SimConfig) -> String {
    let mut out = String::new();
    let mut row = |k: &str, v: String| {
        let _ = writeln!(out, "  {k:32} {v}");
    };
    row(
        "Fetch/decode/commit width",
        format!("{} instructions", config.widths.pipeline_width),
    );
    row(
        "Branch predictor",
        format!(
            "Hybrid {}K gshare, {}K bimodal, {}K selector",
            config.branch.gshare_entries / 1024,
            config.branch.bimodal_entries / 1024,
            config.branch.selector_entries / 1024
        ),
    );
    row(
        "BTB",
        format!(
            "{} entries, {}-way",
            config.branch.btb_entries, config.branch.btb_ways
        ),
    );
    row(
        "L1 Icache",
        format!(
            "{}KB, {}-way, {}B line, {} cycle hit",
            config.l1i.size_bytes / 1024,
            config.l1i.ways,
            config.l1i.line_bytes,
            config.l1i.hit_latency
        ),
    );
    row(
        "L1 Dcache",
        format!(
            "{}KB, {}-way, {}B line, {} cycles hit",
            config.l1d.size_bytes / 1024,
            config.l1d.ways,
            config.l1d.line_bytes,
            config.l1d.hit_latency
        ),
    );
    row(
        "Unified L2 cache",
        format!(
            "{}KB, {}-way, {}B line, {} cycles hit, {} cycles miss",
            config.l2.size_bytes / 1024,
            config.l2.ways,
            config.l2.line_bytes,
            config.l2.hit_latency,
            config.memory_latency
        ),
    );
    row(
        "ROB size",
        format!("{} entries", config.widths.rob_capacity),
    );
    row(
        "Issue queue",
        format!(
            "{} entries ({} banks of {})",
            config.iq.entries,
            config.iq.banks(),
            config.iq.bank_size
        ),
    );
    row(
        "Int register file",
        format!(
            "{} entries ({} banks of {})",
            config.int_rf.regs_per_class,
            config.int_rf.banks(),
            config.int_rf.bank_size
        ),
    );
    row(
        "FP register file",
        format!(
            "{} entries ({} banks of {})",
            config.fp_rf.regs_per_class,
            config.fp_rf.banks(),
            config.fp_rf.bank_size
        ),
    );
    row(
        "Int FUs",
        format!(
            "{} ALU (1 cycle), {} Mul (3 cycles)",
            config.fu_counts.int_alu, config.fu_counts.int_mul
        ),
    );
    row(
        "FP FUs",
        format!(
            "{} ALU (2 cycles), {} MultDiv (4 cycles mult, 12 cycles div)",
            config.fu_counts.fp_alu, config.fu_counts.fp_mul_div
        ),
    );
    out
}

/// One row of a sweep sensitivity table: a configuration variant's
/// suite-average headline numbers for one technique.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// The variant's label (`base`, `iq64`, ...).
    pub variant: String,
    /// Issue-queue entries of the variant's machine.
    pub iq_entries: usize,
    /// Workload scale of the variant.
    pub scale: f64,
    /// The technique the row summarises.
    pub technique: Technique,
    /// Suite-average summary at this configuration.
    pub summary: TechniqueSummary,
}

/// Figure-10-style sensitivity data: for every point of a configuration
/// sweep and every requested technique, the suite-average IPC loss and
/// power savings. This is the sweep analogue of [`summarise`] — the
/// paper's extension figures vary the machine while holding the workload
/// set fixed, which is exactly a [`crate::Matrix`] with a config axis.
pub fn sweep_sensitivity(sweep: &crate::Sweep, techniques: &[Technique]) -> Vec<SweepRow> {
    let mut rows = Vec::new();
    for (variant, suite) in sweep.iter() {
        for &technique in techniques {
            rows.push(SweepRow {
                variant: variant.label.clone(),
                iq_entries: variant.sim_config.iq.entries,
                scale: variant.scale,
                technique,
                summary: summarise(suite, technique),
            });
        }
    }
    rows
}

/// Renders sweep sensitivity rows as an aligned text table (one block per
/// variant, one row per technique).
pub fn render_sweep_sensitivity(rows: &[SweepRow]) -> String {
    let mut out = String::new();
    let mut current: Option<&str> = None;
    for row in rows {
        if current != Some(row.variant.as_str()) {
            current = Some(row.variant.as_str());
            let _ = writeln!(
                out,
                "  variant {} (IQ {} entries, scale {}):",
                row.variant, row.iq_entries, row.scale
            );
            let _ = writeln!(
                out,
                "    {:10} {:>9} {:>9} {:>9} {:>9}",
                "technique", "IPC loss", "IQ dyn", "IQ stat", "RF dyn"
            );
        }
        let _ = writeln!(
            out,
            "    {:10} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
            row.technique.name(),
            row.summary.ipc_loss_pct,
            row.summary.iq_dynamic_pct,
            row.summary.iq_static_pct,
            row.summary.rf_dynamic_pct
        );
    }
    out
}

/// Headline numbers used by `EXPERIMENTS.md` and the integration tests:
/// suite-average IPC loss and power savings per technique.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TechniqueSummary {
    /// Average IPC loss, percent.
    pub ipc_loss_pct: f64,
    /// Average issue-queue occupancy reduction, percent.
    pub iq_occupancy_reduction_pct: f64,
    /// Average issue-queue dynamic power saving, percent.
    pub iq_dynamic_pct: f64,
    /// Average issue-queue static power saving, percent.
    pub iq_static_pct: f64,
    /// Average integer register-file dynamic power saving, percent.
    pub rf_dynamic_pct: f64,
    /// Average integer register-file static power saving, percent.
    pub rf_static_pct: f64,
    /// Average fraction of issue-queue banks turned off, percent.
    pub iq_banks_off_pct: f64,
}

/// Computes the suite-average summary for one technique.
pub fn summarise(suite: &Suite, technique: Technique) -> TechniqueSummary {
    let mut summary = TechniqueSummary::default();
    let mut count = 0usize;
    for b in suite.benchmarks() {
        if let Some(c) = suite.comparison(b, technique) {
            summary.ipc_loss_pct += c.ipc_loss_percent;
            summary.iq_occupancy_reduction_pct += c.iq_occupancy_reduction_percent;
            summary.iq_dynamic_pct += c.savings.iq_dynamic_pct;
            summary.iq_static_pct += c.savings.iq_static_pct;
            summary.rf_dynamic_pct += c.savings.rf_dynamic_pct;
            summary.rf_static_pct += c.savings.rf_static_pct;
            summary.iq_banks_off_pct += c.iq_banks_off_percent;
            count += 1;
        }
    }
    if count > 0 {
        let n = count as f64;
        summary.ipc_loss_pct /= n;
        summary.iq_occupancy_reduction_pct /= n;
        summary.iq_dynamic_pct /= n;
        summary.iq_static_pct /= n;
        summary.rf_dynamic_pct /= n;
        summary.rf_static_pct /= n;
        summary.iq_banks_off_pct /= n;
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Experiment;

    fn small_suite() -> Suite {
        let exp = Experiment {
            scale: 0.05,
            ..Experiment::paper()
        };
        exp.run_matrix(
            &[Benchmark::Gzip, Benchmark::Mcf],
            &[
                Technique::Baseline,
                Technique::NonEmpty,
                Technique::Noop,
                Technique::Abella,
            ],
        )
    }

    #[test]
    fn figure_series_average_is_mean_of_points() {
        let s = FigureSeries::from_values(
            "x",
            vec![("a".into(), 2.0), ("b".into(), 4.0), ("c".into(), 6.0)],
        );
        assert!((s.average - 4.0).abs() < 1e-9);
        assert!(s.render().contains("AVERAGE"));
    }

    #[test]
    fn figures_cover_the_requested_benchmarks() {
        let suite = small_suite();
        let f6 = figure6(&suite);
        assert_eq!(f6.len(), 2);
        assert_eq!(f6[0].points.len(), 2);
        let f7 = figure7(&suite);
        assert_eq!(f7.points.len(), 2);
        let f8 = figure8(&suite);
        assert_eq!(f8.dynamic.len(), 3);
        assert_eq!(f8.static_.len(), 3);
        let f9 = figure9(&suite);
        assert_eq!(f9.dynamic.len(), 2);
    }

    #[test]
    fn noop_saves_more_dynamic_power_than_nonempty_gating_alone() {
        let suite = small_suite();
        let f8 = figure8(&suite);
        let nonempty = f8.dynamic.iter().find(|s| s.label == "nonEmpty").unwrap();
        let noop = f8.dynamic.iter().find(|s| s.label == "noop").unwrap();
        assert!(
            noop.average > nonempty.average,
            "noop {} should beat nonEmpty {}",
            noop.average,
            nonempty.average
        );
    }

    #[test]
    fn table1_mentions_the_key_structures() {
        let text = table1(&SimConfig::hpca2005());
        assert!(text.contains("80 entries"));
        assert!(text.contains("128 entries"));
        assert!(text.contains("112 entries"));
        assert!(text.contains("6 ALU (1 cycle), 3 Mul (3 cycles)"));
    }

    #[test]
    fn summary_averages_are_finite_and_consistent() {
        let suite = small_suite();
        let s = summarise(&suite, Technique::Noop);
        assert!(s.iq_dynamic_pct.is_finite());
        assert!(s.iq_dynamic_pct > 0.0);
        assert!(s.iq_occupancy_reduction_pct > 0.0);
        let overall = overall_processor_savings(&suite, Technique::Noop, 0.22, 0.11);
        assert!(overall > 0.0);
    }
}
