//! # sdiq-core — experiment layer of the SDIQ reproduction
//!
//! This crate ties the substrates together into the paper's evaluation
//! methodology:
//!
//! * [`Technique`] — the configurations compared in the paper's figures:
//!   the unmanaged baseline, Folegnani-style `nonEmpty` wakeup gating, the
//!   paper's NOOP / Extension / Improved software techniques, and the
//!   Abella & González adaptive-hardware comparator,
//! * [`Experiment`] — runs a (benchmark, technique) pair end to end:
//!   compiler pass → functional execution → cycle-level simulation → power
//!   model, and whole matrices of such runs in parallel,
//! * [`experiments`] — turns a matrix of runs ([`Suite`]) into the data
//!   behind every table and figure of §5 (per-experiment index in
//!   `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use sdiq_core::{Experiment, Technique};
//! use sdiq_workloads::Benchmark;
//!
//! let experiment = Experiment::quick();
//! let baseline = experiment.run(Benchmark::Gzip, Technique::Baseline);
//! let noop = experiment.run(Benchmark::Gzip, Technique::Noop);
//! let comparison = noop.compared_to(&baseline);
//! assert!(comparison.savings.iq_dynamic_pct > 0.0);
//! ```

pub mod experiments;
pub mod runner;
pub mod technique;

pub use experiments::{
    figure10, figure11, figure12, figure6, figure7, figure8, figure9, overall_processor_savings,
    summarise, table1, FigureSeries, PowerFigure, TechniqueSummary,
};
pub use runner::{Comparison, Experiment, RunReport, Suite};
pub use technique::Technique;
