//! # sdiq-core — experiment layer of the SDIQ reproduction
//!
//! This crate ties the substrates together into the paper's evaluation
//! methodology:
//!
//! * [`Technique`] — the configurations compared in the paper's figures:
//!   the unmanaged baseline, Folegnani-style `nonEmpty` wakeup gating, the
//!   paper's NOOP / Extension / Improved software techniques, and the
//!   Abella & González adaptive-hardware comparator,
//! * [`Experiment`] — runs a (benchmark, technique) pair end to end:
//!   compiler pass → functional execution → cycle-level simulation → power
//!   model,
//! * [`Matrix`] / [`engine`] — the job engine: a worker pool sized to the
//!   machine pulls (workload, technique, configuration) cells from a
//!   shared queue, with a third sweep axis over [`ConfigVariant`]s
//!   (issue-queue geometry, workload scale) for Figure-10-style
//!   sensitivity studies; parallel runs are bit-identical to serial ones,
//! * [`ArtifactCache`] — content-addressed sharing of built programs and
//!   compiler-pass outputs across cells (`Arc`-handled, built exactly once
//!   per key),
//! * [`Backend`] — where a matrix runs: the in-process pool, a
//!   coordinator spawning one worker subprocess per [`shard_of`]-assigned
//!   shard, or a coordinator streaming cells to networked worker daemons
//!   (`sdiq-remote`) — all merged bit-identically to a serial run,
//! * [`persist`] — save/load of matrix cells as JSON keyed by cell cache
//!   keys, so a reload re-runs only missing cells; plus the append-style
//!   [`CheckpointWriter`] that makes runs crash-resumable (each completed
//!   cell is flushed to disk the moment it exists),
//! * [`experiments`] — turns a matrix of runs ([`Suite`]) into the data
//!   behind every table and figure of §5 (per-experiment index in
//!   `DESIGN.md`).
//!
//! # Example
//!
//! ```
//! use sdiq_core::{Experiment, Technique};
//! use sdiq_workloads::Benchmark;
//!
//! let experiment = Experiment::quick();
//! let baseline = experiment.run(Benchmark::Gzip, Technique::Baseline);
//! let noop = experiment.run(Benchmark::Gzip, Technique::Noop);
//! let comparison = noop.compared_to(&baseline);
//! assert!(comparison.savings.iq_dynamic_pct > 0.0);
//! ```

// The workspace denies `unwrap()`/`expect()` in shipped code: every
// recoverable failure must be handled or panic with a diagnosable message.
// Tests are exempt — terse assertions are the point there.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod engine;
pub mod experiments;
pub mod persist;
pub mod persist_bin;
pub mod runner;
pub mod technique;
pub mod trace;

pub use cache::{
    ArtifactCache, CompileKey, CompiledArtifact, PlanKey, PlanSource, ProgramKey, ResultStore,
    Stored,
};
pub use engine::{
    cell_key, matrix_fingerprint, shard_of, Backend, BackendError, CellSink, ConfigVariant, Matrix,
    MatrixSpec, ObserveSpec, Registration, RemoteLaunch, RemoteSpec, SubprocessSpec, Sweep,
};
pub use experiments::{
    figure10, figure11, figure12, figure6, figure7, figure8, figure9, overall_processor_savings,
    render_sweep_sensitivity, summarise, sweep_sensitivity, table1, FigureSeries, PowerFigure,
    SweepRow, TechniqueSummary,
};
pub use persist::CheckpointWriter;
pub use runner::{Comparison, Experiment, RunReport, SimBackend, Suite};
pub use technique::{RegistryError, Technique, TechniqueRegistry, TechniqueSpec};
