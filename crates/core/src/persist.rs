//! Suite persistence: save/load of matrix cells as JSON keyed by cell
//! cache keys.
//!
//! A sweep's cells are pure functions of their [`crate::engine::cell_key`],
//! so a save file is simply a `key → RunReport` map: `repro --save` writes
//! it, `repro --load` seeds the engine with it, and only cells whose key is
//! absent (new benchmarks, new techniques, a changed configuration — the
//! key fingerprints the machine) are re-run.
//!
//! The workspace builds fully offline against a marker-only `serde` shim
//! (see `vendor/README.md`), so the codec here is hand-rolled: a minimal
//! JSON value model with a recursive-descent parser. Numbers are kept as
//! their literal token text on both sides, which makes the round trip
//! exact: `u64` counters are written in full precision and `f64` energies
//! are written with Rust's shortest-round-trip formatting, so a loaded
//! suite is bit-identical to the saved one (asserted by the integration
//! suite).
//!
//! # Checkpoint files
//!
//! `--save` writes the whole cell map in one shot at the end of a run — a
//! killed run leaves nothing. The *checkpoint* format is the incremental
//! twin: a JSONL file whose first line is a tagged header and every further
//! line one `{"key": …, "report": …}` cell, appended and flushed by
//! [`CheckpointWriter`] the moment the engine finishes the cell. A crash
//! can lose at most the in-flight cells plus one torn final line, which
//! [`load_checkpoint`] tolerates (and *only* that: a malformed line with
//! more lines after it is corruption, not a crash artifact, and is
//! rejected). [`load_cells_any`] sniffs the header so `--load` accepts
//! either format interchangeably.

use crate::engine::{CellSink, MatrixSpec};
use crate::runner::RunReport;
use crate::technique::Technique;
use sdiq_compiler::{CompileStats, ProcedureStats};
use sdiq_power::{PowerBreakdown, StructurePower};
use sdiq_sim::ActivityStats;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::io::{Seek, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

/// Save-file format version (bumped on breaking schema changes; loading
/// rejects unknown versions instead of misreading them).
pub const FORMAT_VERSION: u64 = 1;

/// An error while parsing or interpreting a save file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError {
    message: String,
}

impl PersistError {
    /// Wraps a codec failure message (public so protocol layers built on
    /// the shared [`Json`] model — the `sdiq-remote` frames — report
    /// through the same type).
    pub fn new(message: impl Into<String>) -> Self {
        PersistError {
            message: message.into(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "suite save file: {}", self.message)
    }
}

impl std::error::Error for PersistError {}

// ---------------------------------------------------------------------------
// JSON value model
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers keep their literal token so integer and
/// float round trips are exact (see the module docs).
///
/// Public because it is the workspace's one JSON codec: the save/checkpoint
/// files here and the `sdiq-remote` wire frames are all built from and
/// parsed into this model, so every layer round-trips numbers identically.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal token text.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered field list (order is preserved on render).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A number value holding `v`'s exact decimal text.
    pub fn of_u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A number value holding `v`'s exact decimal text.
    pub fn of_usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    /// A number value holding `v`'s shortest round-trip text.
    ///
    /// # Panics
    ///
    /// If `v` is not finite (JSON has no token for it).
    pub fn of_f64(v: f64) -> Json {
        // Fail loudly at save time: a bare `NaN`/`inf` token would write a
        // file that every later load rejects — the corruption would be
        // detected at the wrong end. The simulator and power model never
        // produce non-finite values, so this is an invariant, not input
        // validation.
        assert!(v.is_finite(), "save file cannot carry non-finite value {v}");
        // `{:?}` is Rust's shortest representation that parses back to the
        // identical bit pattern.
        Json::Num(format!("{v:?}"))
    }

    /// The object's field list, or an error for any other value.
    pub fn obj(&self) -> Result<&[(String, Json)], PersistError> {
        match self {
            Json::Obj(fields) => Ok(fields),
            other => Err(PersistError::new(format!("expected object, got {other:?}"))),
        }
    }

    /// Field `key` of this object (an error if absent or not an object).
    pub fn get(&self, key: &str) -> Result<&Json, PersistError> {
        self.opt(key)?
            .ok_or_else(|| PersistError::new(format!("missing field `{key}`")))
    }

    /// Field `key` of this object, or `None` if the field is absent (still
    /// an error for a non-object). For fields added after format version 1
    /// that default when missing, so old save files keep loading.
    pub fn opt(&self, key: &str) -> Result<Option<&Json>, PersistError> {
        Ok(self.obj()?.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// This number as a `u64`.
    pub fn u64(&self) -> Result<u64, PersistError> {
        match self {
            Json::Num(s) => s
                .parse::<u64>()
                .map_err(|_| PersistError::new(format!("`{s}` is not a u64"))),
            other => Err(PersistError::new(format!("expected number, got {other:?}"))),
        }
    }

    /// This number as a `usize`.
    pub fn usize(&self) -> Result<usize, PersistError> {
        self.u64().map(|v| v as usize)
    }

    /// This number as an `f64` (exact for tokens written by [`Json::of_f64`]).
    pub fn f64(&self) -> Result<f64, PersistError> {
        match self {
            Json::Num(s) => s
                .parse::<f64>()
                .map_err(|_| PersistError::new(format!("`{s}` is not an f64"))),
            other => Err(PersistError::new(format!("expected number, got {other:?}"))),
        }
    }

    /// This value as a string slice.
    pub fn str(&self) -> Result<&str, PersistError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(PersistError::new(format!("expected string, got {other:?}"))),
        }
    }

    /// This value's array items.
    pub fn arr(&self) -> Result<&[Json], PersistError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(PersistError::new(format!("expected array, got {other:?}"))),
        }
    }

    /// Renders this value as compact JSON text appended to `out`.
    pub fn render(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(s) => out.push_str(s),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Recursive-descent parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> PersistError {
        PersistError::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), PersistError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, PersistError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, PersistError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, PersistError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, PersistError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("non-scalar \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(self.error("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, PersistError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.error("empty number"));
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid UTF-8 in number"))?;
        Ok(Json::Num(token.to_string()))
    }
}

/// Parses one complete JSON document (trailing content is an error).
pub fn parse(text: &str) -> Result<Json, PersistError> {
    let mut parser = Parser::new(text);
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing content"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Report schema
// ---------------------------------------------------------------------------

/// Lists every `u64` counter of [`ActivityStats`] exactly once; both
/// directions of the codec expand it, so a new counter only needs one
/// edit here (forgetting it breaks the bit-identical round-trip test).
macro_rules! for_each_stats_field {
    ($apply:ident) => {
        $apply!(
            cycles,
            committed,
            committed_hints,
            dispatched,
            issued,
            branches,
            mispredicted_branches,
            btb_misses,
            icache_misses,
            fetch_stall_cycles,
            dispatch_limit_stall_cycles,
            dcache_accesses,
            dcache_misses,
            l2_misses,
            wakeup_broadcasts,
            wakeup_comparisons_full,
            wakeup_comparisons_nonempty,
            wakeup_comparisons_gated,
            iq_writes,
            iq_reads,
            iq_occupancy_sum,
            iq_banks_on_sum,
            iq_total_banks,
            iq_total_entries,
            int_rf_reads,
            int_rf_writes,
            fp_rf_reads,
            fp_rf_writes,
            int_rf_occupancy_sum,
            int_rf_banks_on_sum,
            fp_rf_occupancy_sum,
            fp_rf_banks_on_sum,
            int_rf_total_banks,
            fp_rf_total_banks,
            rob_occupancy_sum,
            rob_full_stall_cycles,
            rename_stall_cycles
        );
    };
}
// The binary twin of this codec (`crate::persist_bin`) expands the same
// list, so a new counter still needs exactly one edit.
pub(crate) use for_each_stats_field;

fn stats_to_json(stats: &ActivityStats) -> Json {
    let mut fields = Vec::new();
    macro_rules! emit {
        ($($name:ident),*) => {
            $(fields.push((stringify!($name).to_string(), Json::of_u64(stats.$name)));)*
        };
    }
    for_each_stats_field!(emit);
    // Technique-extension counters live *outside* the fixed block and are
    // emitted only when set: the six paper techniques never set them, so
    // their saved bytes are exactly the pre-registry format.
    if stats.committed_low_energy != 0 {
        fields.push((
            "committed_low_energy".to_string(),
            Json::of_u64(stats.committed_low_energy),
        ));
    }
    Json::Obj(fields)
}

fn stats_from_json(json: &Json) -> Result<ActivityStats, PersistError> {
    let mut stats = ActivityStats::default();
    macro_rules! read {
        ($($name:ident),*) => {
            $(stats.$name = json.get(stringify!($name))?.u64()?;)*
        };
    }
    for_each_stats_field!(read);
    // Absent in pre-registry saves and for techniques that don't track it.
    stats.committed_low_energy = match json.opt("committed_low_energy")? {
        Some(value) => value.u64()?,
        None => 0,
    };
    Ok(stats)
}

fn structure_power_to_json(power: &StructurePower) -> Json {
    Json::Obj(vec![
        ("dynamic".to_string(), Json::of_f64(power.dynamic)),
        ("static".to_string(), Json::of_f64(power.static_)),
    ])
}

fn structure_power_from_json(json: &Json) -> Result<StructurePower, PersistError> {
    Ok(StructurePower {
        dynamic: json.get("dynamic")?.f64()?,
        static_: json.get("static")?.f64()?,
    })
}

fn power_to_json(power: &PowerBreakdown) -> Json {
    Json::Obj(vec![
        ("iq".to_string(), structure_power_to_json(&power.iq)),
        ("int_rf".to_string(), structure_power_to_json(&power.int_rf)),
        ("fp_rf".to_string(), structure_power_to_json(&power.fp_rf)),
    ])
}

fn power_from_json(json: &Json) -> Result<PowerBreakdown, PersistError> {
    Ok(PowerBreakdown {
        iq: structure_power_from_json(json.get("iq")?)?,
        int_rf: structure_power_from_json(json.get("int_rf")?)?,
        fp_rf: structure_power_from_json(json.get("fp_rf")?)?,
    })
}

fn compile_to_json(stats: &CompileStats) -> Json {
    Json::Obj(vec![
        (
            "annotated_blocks".to_string(),
            Json::of_usize(stats.annotated_blocks),
        ),
        (
            "hint_noops_inserted".to_string(),
            Json::of_usize(stats.hint_noops_inserted),
        ),
        (
            "total_duration_nanos".to_string(),
            Json::of_u64(stats.total_duration.as_nanos() as u64),
        ),
        (
            "per_procedure".to_string(),
            Json::Arr(
                stats
                    .per_procedure
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("name".to_string(), Json::Str(p.name.clone())),
                            (
                                "blocks_analysed".to_string(),
                                Json::of_usize(p.blocks_analysed),
                            ),
                            (
                                "loops_analysed".to_string(),
                                Json::of_usize(p.loops_analysed),
                            ),
                            ("dag_regions".to_string(), Json::of_usize(p.dag_regions)),
                            (
                                "duration_nanos".to_string(),
                                Json::of_u64(p.duration.as_nanos() as u64),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn compile_from_json(json: &Json) -> Result<CompileStats, PersistError> {
    let per_procedure = json
        .get("per_procedure")?
        .arr()?
        .iter()
        .map(|p| {
            Ok(ProcedureStats {
                name: p.get("name")?.str()?.to_string(),
                blocks_analysed: p.get("blocks_analysed")?.usize()?,
                loops_analysed: p.get("loops_analysed")?.usize()?,
                dag_regions: p.get("dag_regions")?.usize()?,
                duration: Duration::from_nanos(p.get("duration_nanos")?.u64()?),
            })
        })
        .collect::<Result<Vec<_>, PersistError>>()?;
    Ok(CompileStats {
        per_procedure,
        total_duration: Duration::from_nanos(json.get("total_duration_nanos")?.u64()?),
        annotated_blocks: json.get("annotated_blocks")?.usize()?,
        hint_noops_inserted: json.get("hint_noops_inserted")?.usize()?,
    })
}

/// Serialises one [`RunReport`] into the shared JSON model (the same
/// encoding used inside save files, checkpoint lines and remote frames —
/// numbers round-trip exactly in all three).
pub fn report_to_json(report: &RunReport) -> Json {
    Json::Obj(vec![
        ("workload".to_string(), Json::Str(report.workload.clone())),
        (
            "technique".to_string(),
            Json::Str(report.technique.name().to_string()),
        ),
        ("stats".to_string(), stats_to_json(&report.stats)),
        ("power".to_string(), power_to_json(&report.power)),
        (
            "compile".to_string(),
            match &report.compile {
                Some(stats) => compile_to_json(stats),
                None => Json::Null,
            },
        ),
        (
            "adaptive_resizes".to_string(),
            Json::of_u64(report.adaptive_resizes),
        ),
        (
            "hint_noops_inserted".to_string(),
            Json::of_usize(report.hint_noops_inserted),
        ),
    ])
}

/// Parses a [`RunReport`] back out of the shared JSON model.
pub fn report_from_json(json: &Json) -> Result<RunReport, PersistError> {
    let technique_name = json.get("technique")?.str()?;
    let technique = Technique::from_name(technique_name)
        .ok_or_else(|| PersistError::new(format!("unknown technique `{technique_name}`")))?;
    let compile = match json.get("compile")? {
        Json::Null => None,
        other => Some(compile_from_json(other)?),
    };
    Ok(RunReport {
        workload: json.get("workload")?.str()?.to_string(),
        technique,
        stats: stats_from_json(json.get("stats")?)?,
        power: power_from_json(json.get("power")?)?,
        compile,
        adaptive_resizes: json.get("adaptive_resizes")?.u64()?,
        hint_noops_inserted: json.get("hint_noops_inserted")?.usize()?,
    })
}

/// Serialises a [`MatrixSpec`] into the shared JSON model (shipped inside
/// the remote protocol's `RunCells` frame).
pub fn matrix_spec_to_json(spec: &MatrixSpec) -> Json {
    Json::Obj(vec![
        ("scale".to_string(), Json::of_f64(spec.scale)),
        (
            "sweeps".to_string(),
            Json::Arr(
                spec.sweeps
                    .iter()
                    .map(|(axis, values)| {
                        Json::Obj(vec![
                            ("axis".to_string(), Json::Str(axis.clone())),
                            (
                                "values".to_string(),
                                Json::Arr(values.iter().map(|&v| Json::of_f64(v)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "benchmarks".to_string(),
            Json::Arr(spec.benchmarks.iter().cloned().map(Json::Str).collect()),
        ),
        (
            "techniques".to_string(),
            Json::Arr(spec.techniques.iter().cloned().map(Json::Str).collect()),
        ),
    ])
}

/// Parses a [`MatrixSpec`] back out of the shared JSON model. Only the
/// shape is validated here; name resolution and range checks happen in
/// [`MatrixSpec::matrix`], where a precise error can name the field.
pub fn matrix_spec_from_json(json: &Json) -> Result<MatrixSpec, PersistError> {
    let strings = |value: &Json| -> Result<Vec<String>, PersistError> {
        value
            .arr()?
            .iter()
            .map(|item| item.str().map(str::to_string))
            .collect()
    };
    let sweeps = json
        .get("sweeps")?
        .arr()?
        .iter()
        .map(|sweep| {
            Ok((
                sweep.get("axis")?.str()?.to_string(),
                sweep
                    .get("values")?
                    .arr()?
                    .iter()
                    .map(Json::f64)
                    .collect::<Result<Vec<_>, _>>()?,
            ))
        })
        .collect::<Result<Vec<_>, PersistError>>()?;
    Ok(MatrixSpec {
        scale: json.get("scale")?.f64()?,
        sweeps,
        benchmarks: strings(json.get("benchmarks")?)?,
        techniques: strings(json.get("techniques")?)?,
    })
}

// ---------------------------------------------------------------------------
// Save-file surface
// ---------------------------------------------------------------------------

/// Serialises key-addressed cells into the save-file JSON.
pub fn save_cells(cells: &BTreeMap<String, RunReport>) -> String {
    let document = Json::Obj(vec![
        ("format".to_string(), Json::of_u64(FORMAT_VERSION)),
        (
            "cells".to_string(),
            Json::Obj(
                cells
                    .iter()
                    .map(|(key, report)| (key.clone(), report_to_json(report)))
                    .collect(),
            ),
        ),
    ]);
    let mut out = String::new();
    document.render(&mut out);
    out.push('\n');
    out
}

/// Parses a save file back into key-addressed cells, ready to seed
/// [`crate::Matrix::run_with`].
pub fn load_cells(text: &str) -> Result<HashMap<String, RunReport>, PersistError> {
    let document = parse(text)?;
    let format = document.get("format")?.u64()?;
    if format != FORMAT_VERSION {
        return Err(PersistError::new(format!(
            "unsupported format version {format} (this build reads {FORMAT_VERSION})"
        )));
    }
    document
        .get("cells")?
        .obj()?
        .iter()
        .map(|(key, value)| Ok((key.clone(), report_from_json(value)?)))
        .collect()
}

// ---------------------------------------------------------------------------
// Incremental checkpoint files (JSONL)
// ---------------------------------------------------------------------------

fn checkpoint_header() -> String {
    let header = Json::Obj(vec![
        ("format".to_string(), Json::of_u64(FORMAT_VERSION)),
        ("kind".to_string(), Json::Str("checkpoint".to_string())),
    ]);
    let mut out = String::new();
    header.render(&mut out);
    out
}

/// Renders one checkpoint cell line (no trailing newline): the
/// `{"key": …, "report": …}` JSONL record [`CheckpointWriter`] appends.
/// Public so tests and tooling can synthesise checkpoint files that are
/// byte-compatible with the writer's.
pub fn checkpoint_line(key: &str, report: &RunReport) -> String {
    let mut line = String::new();
    Json::Obj(vec![
        ("key".to_string(), Json::Str(key.to_string())),
        ("report".to_string(), report_to_json(report)),
    ])
    .render(&mut line);
    line
}

/// Incremental, crash-durable cell persistence: one JSONL line per
/// completed cell, written and fsynced immediately (see the module docs).
///
/// The writer opens its file in append mode, so resuming a run with the
/// same checkpoint path keeps extending the same file; the header line is
/// only written when the file starts empty. It is `Sync` (a mutex
/// serialises the worker threads' appends) and implements [`CellSink`], so
/// it plugs straight into [`crate::Matrix::run_with_sink`].
///
/// # Durability
///
/// Every [`CheckpointWriter::append`] ends in `File::sync_data`, and
/// creating a fresh checkpoint file fsyncs the parent directory, so an
/// acked cell survives a *machine* crash (power loss), not just a killed
/// process — a userspace flush alone leaves the data in the page cache.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: Mutex<std::fs::File>,
    path: std::path::PathBuf,
    synced_appends: std::sync::atomic::AtomicU64,
}

impl CheckpointWriter {
    /// Opens (or creates) the checkpoint file at `path` for appending,
    /// writing the header line if the file is empty.
    ///
    /// A file that does not end in a newline carries the torn final line
    /// of a killed append. That fragment is incomplete JSON and can never
    /// be recovered, so it is **trimmed here** before appending resumes —
    /// otherwise the first new cell would be written onto the end of the
    /// fragment, fusing both into one malformed *interior* line that
    /// poisons every later load of the file.
    pub fn append_to(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let created = !path.exists();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false) // existing cells are the whole point
            .open(&path)?;
        let mut file = Self::trim_torn_tail(file)?;
        file.seek(std::io::SeekFrom::End(0))?;
        if file.metadata()?.len() == 0 {
            writeln!(file, "{}", checkpoint_header())?;
            file.sync_data()?;
        }
        // The file's *name* is a directory entry: without a directory
        // fsync a machine crash can forget the file existed at all, even
        // though its data blocks were synced. Unix-only — Windows cannot
        // open a directory with File::open (and NTFS journals the
        // namespace anyway), so there this would turn creation into an
        // Access Denied error.
        #[cfg(unix)]
        if created {
            let dir = match path.parent() {
                Some(parent) if !parent.as_os_str().is_empty() => parent.to_path_buf(),
                _ => std::path::PathBuf::from("."),
            };
            std::fs::File::open(&dir)?.sync_all()?;
        }
        #[cfg(not(unix))]
        let _ = created;
        Ok(CheckpointWriter {
            file: Mutex::new(file),
            path,
            synced_appends: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Truncates an unterminated (torn) final line, leaving only whole
    /// newline-terminated lines behind.
    fn trim_torn_tail(mut file: std::fs::File) -> std::io::Result<std::fs::File> {
        use std::io::Read;
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(file);
        }
        let mut contents = Vec::with_capacity(len as usize);
        file.read_to_end(&mut contents)?;
        if contents.last() != Some(&b'\n') {
            let keep = contents
                .iter()
                .rposition(|&b| b == b'\n')
                .map_or(0, |pos| pos + 1);
            file.set_len(keep as u64)?;
            file.flush()?;
        }
        Ok(file)
    }

    /// Appends one completed cell and **fsyncs** it (`File::sync_data`), so
    /// neither a kill nor a machine crash right after this call returns can
    /// lose the cell.
    pub fn append(&self, key: &str, report: &RunReport) -> std::io::Result<()> {
        let _span = sdiq_obs::span("checkpoint-append", "persist");
        sdiq_obs::metrics().checkpoint_appends.inc();
        let mut line = checkpoint_line(key, report);
        line.push('\n');
        // A poisoned lock means another append panicked mid-write; the
        // checkpoint format is line-oriented and the loader skips torn
        // trailing lines, so recovering and appending is safe.
        let mut file = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        file.write_all(line.as_bytes())?;
        file.sync_data()?;
        self.synced_appends
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    /// Number of appends that have reached `sync_data` successfully — an
    /// append is only acked durable once this has ticked (tests pin that
    /// every append syncs rather than merely flushing to the page cache).
    pub fn synced_appends(&self) -> u64 {
        self.synced_appends
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl CellSink for CheckpointWriter {
    fn cell_complete(&self, key: &str, report: &RunReport) {
        // A checkpoint that silently stops persisting is worse than a
        // crash — fail the run loudly (disk full, permissions, …).
        self.append(key, report)
            .unwrap_or_else(|e| panic!("checkpoint append to {} failed: {e}", self.path.display()));
    }
}

/// Parses a checkpoint file (see the module docs). A torn **final** line —
/// the signature of a run killed mid-append — is tolerated and simply not
/// part of the result; a malformed line anywhere else is corruption and an
/// error. Duplicate keys keep the newest line.
pub fn load_checkpoint(text: &str) -> Result<HashMap<String, RunReport>, PersistError> {
    let mut lines = text.lines().enumerate();
    let (_, header) = lines
        .next()
        .ok_or_else(|| PersistError::new("empty checkpoint file"))?;
    let header = parse(header)?;
    let format = header.get("format")?.u64()?;
    if format != FORMAT_VERSION {
        return Err(PersistError::new(format!(
            "unsupported format version {format} (this build reads {FORMAT_VERSION})"
        )));
    }
    if header.get("kind")?.str()? != "checkpoint" {
        return Err(PersistError::new("header is not a checkpoint header"));
    }

    let mut cells = HashMap::new();
    let mut pending: Option<(usize, PersistError)> = None;
    for (index, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        // A parse failure is only acceptable on the final line; remember it
        // and fail if any non-empty line follows.
        if let Some((bad_index, error)) = pending.take() {
            return Err(PersistError::new(format!(
                "malformed checkpoint line {} followed by more data: {error}",
                bad_index + 1
            )));
        }
        let cell = parse(line).and_then(|json| {
            Ok((
                json.get("key")?.str()?.to_string(),
                report_from_json(json.get("report")?)?,
            ))
        });
        match cell {
            Ok((key, report)) => {
                cells.insert(key, report);
            }
            Err(error) => pending = Some((index, error)),
        }
    }
    Ok(cells)
}

/// Loads either persistence format: a whole-document save file
/// ([`save_cells`]) or a JSONL checkpoint ([`CheckpointWriter`]), detected
/// by the checkpoint header on the first line.
pub fn load_cells_any(text: &str) -> Result<HashMap<String, RunReport>, PersistError> {
    let first_line = text.lines().next().unwrap_or("");
    let is_checkpoint = parse(first_line)
        .ok()
        .and_then(|header| Some(header.get("kind").ok()?.str().ok()? == "checkpoint"))
        .unwrap_or(false);
    if is_checkpoint {
        load_checkpoint(text)
    } else {
        load_cells(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Experiment;
    use sdiq_workloads::Benchmark;

    #[test]
    fn json_parser_round_trips_scalars_and_nesting() {
        let text = r#"{"a": [1, -2.5, "x\ny", true, null], "b": {"c": 18446744073709551615}}"#;
        let parsed = parse(text).unwrap();
        assert_eq!(
            parsed.get("b").unwrap().get("c").unwrap().u64(),
            Ok(u64::MAX)
        );
        let items = parsed.get("a").unwrap().arr().unwrap();
        assert_eq!(items[0].u64(), Ok(1));
        assert_eq!(items[1].f64(), Ok(-2.5));
        assert_eq!(items[2].str(), Ok("x\ny"));
        assert_eq!(items[3], Json::Bool(true));
        assert_eq!(items[4], Json::Null);
        // Render → parse is the identity.
        let mut rendered = String::new();
        parsed.render(&mut rendered);
        assert_eq!(parse(&rendered).unwrap(), parsed);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "{\"a\":1} extra", ""] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
        assert!(load_cells("{\"format\": 99, \"cells\": {}}").is_err());
        assert!(load_cells("{\"cells\": {}}").is_err());
    }

    #[test]
    fn run_report_round_trips_bit_identically() {
        let exp = Experiment {
            scale: 0.05,
            ..Experiment::paper()
        };
        for technique in [Technique::Baseline, Technique::Noop, Technique::Abella] {
            let report = exp.run(Benchmark::Gzip, technique);
            let json = report_to_json(&report);
            let back = report_from_json(&json).unwrap();
            assert_eq!(report, back, "{technique} report must round-trip");
        }
    }

    #[test]
    fn checkpoint_round_trips_and_tolerates_a_torn_tail() {
        let exp = Experiment {
            scale: 0.05,
            ..Experiment::paper()
        };
        let a = exp.run(Benchmark::Gzip, Technique::Baseline);
        let b = exp.run(Benchmark::Gzip, Technique::Noop);
        let dir = std::env::temp_dir().join(format!("sdiq-ckpt-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("suite.ckpt");
        let _ = std::fs::remove_file(&path);

        let writer = CheckpointWriter::append_to(&path).unwrap();
        writer.append("k1", &a).unwrap();
        writer.append("k2", &b).unwrap();
        drop(writer);
        let text = std::fs::read_to_string(&path).unwrap();
        let cells = load_checkpoint(&text).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells.get("k1"), Some(&a), "checkpoint cells round-trip");
        assert_eq!(cells.get("k2"), Some(&b));
        // The sniffing loader picks the right decoder for both formats.
        assert_eq!(load_cells_any(&text).unwrap(), cells);
        let save = save_cells(&cells.clone().into_iter().collect());
        assert_eq!(load_cells_any(&save).unwrap(), cells);

        // A kill mid-append tears the final line: that cell is lost, every
        // earlier cell survives.
        let torn = &text[..text.len() - 10];
        let survivors = load_checkpoint(torn).unwrap();
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors.get("k1"), Some(&a));

        // Re-opening the same path appends (no second header), and a newer
        // line for an existing key wins.
        let writer = CheckpointWriter::append_to(&path).unwrap();
        writer.append("k1", &b).unwrap();
        drop(writer);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("checkpoint").count(), 1, "one header");
        let cells = load_checkpoint(&text).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells.get("k1"), Some(&b), "newest line wins");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn resuming_onto_a_torn_checkpoint_heals_the_file() {
        // Regression: append mode used to write the first resumed cell
        // straight onto the torn fragment, fusing them into one malformed
        // *interior* line — every load after a ≥2-cell resume then failed
        // with "malformed checkpoint line followed by more data".
        let exp = Experiment {
            scale: 0.05,
            ..Experiment::paper()
        };
        let a = exp.run(Benchmark::Gzip, Technique::Baseline);
        let b = exp.run(Benchmark::Gzip, Technique::Noop);
        let dir = std::env::temp_dir().join(format!("sdiq-ckpt-heal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("suite.ckpt");
        let _ = std::fs::remove_file(&path);

        let writer = CheckpointWriter::append_to(&path).unwrap();
        writer.append("k1", &a).unwrap();
        writer.append("k2", &b).unwrap();
        drop(writer);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 10]).unwrap(); // tear k2

        // Resume and append two cells past the torn fragment.
        let writer = CheckpointWriter::append_to(&path).unwrap();
        writer.append("k2", &b).unwrap();
        writer.append("k3", &a).unwrap();
        drop(writer);
        let healed = std::fs::read_to_string(&path).unwrap();
        let cells = load_checkpoint(&healed).expect("resumed file must stay loadable");
        assert_eq!(cells.len(), 3);
        assert_eq!(cells.get("k2"), Some(&b), "torn cell rewritten cleanly");

        // And a second resume keeps working (the file stays healthy).
        let writer = CheckpointWriter::append_to(&path).unwrap();
        writer.append("k4", &b).unwrap();
        drop(writer);
        let again = std::fs::read_to_string(&path).unwrap();
        assert_eq!(load_checkpoint(&again).unwrap().len(), 4);

        // A file torn *inside the header* heals to a fresh checkpoint.
        std::fs::write(&path, "{\"format\":1,\"ki").unwrap();
        let writer = CheckpointWriter::append_to(&path).unwrap();
        writer.append("k1", &a).unwrap();
        drop(writer);
        let fresh = std::fs::read_to_string(&path).unwrap();
        assert_eq!(load_checkpoint(&fresh).unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_appends_are_fsynced_durable() {
        // A flushed-but-unsynced append survives a process kill but not a
        // machine crash: the cell would still sit in the page cache. Every
        // `append` must therefore reach `sync_data` before acking — pinned
        // via the writer's synced-append counter (one tick per successful
        // sync), on a freshly *created* file so the parent-directory fsync
        // path runs too.
        let exp = Experiment {
            scale: 0.05,
            ..Experiment::paper()
        };
        let report = exp.run(Benchmark::Gzip, Technique::Baseline);
        let dir = std::env::temp_dir().join(format!("sdiq-ckpt-sync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("suite.ckpt");
        let _ = std::fs::remove_file(&path);

        let writer = CheckpointWriter::append_to(&path).unwrap();
        assert_eq!(writer.synced_appends(), 0, "no cells yet");
        writer.append("k1", &report).unwrap();
        writer.append("k2", &report).unwrap();
        assert_eq!(writer.synced_appends(), 2, "every append syncs");
        drop(writer);

        // Re-opening an existing file (the resume path, no directory-entry
        // creation to sync) keeps the same per-append guarantee.
        let writer = CheckpointWriter::append_to(&path).unwrap();
        writer.append("k3", &report).unwrap();
        assert_eq!(writer.synced_appends(), 1);
        drop(writer);
        assert_eq!(
            load_checkpoint(&std::fs::read_to_string(&path).unwrap())
                .unwrap()
                .len(),
            3
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_rejects_interior_corruption_and_bad_headers() {
        let exp = Experiment {
            scale: 0.05,
            ..Experiment::paper()
        };
        let report = exp.run(Benchmark::Gzip, Technique::Baseline);
        let mut good_line = String::new();
        Json::Obj(vec![
            ("key".to_string(), Json::Str("k".to_string())),
            ("report".to_string(), report_to_json(&report)),
        ])
        .render(&mut good_line);

        // A torn line *followed by more data* is corruption, not a crash.
        let corrupt = format!("{}\n{{torn\n{good_line}\n", checkpoint_header());
        assert!(load_checkpoint(&corrupt).is_err());

        assert!(load_checkpoint("").is_err(), "empty file");
        assert!(
            load_checkpoint("{\"format\":1,\"kind\":\"elsewise\"}\n").is_err(),
            "wrong kind"
        );
        assert!(
            load_checkpoint("{\"format\":99,\"kind\":\"checkpoint\"}\n").is_err(),
            "unknown format version"
        );
    }

    #[test]
    fn save_and_load_preserve_the_cell_map() {
        let exp = Experiment {
            scale: 0.05,
            ..Experiment::paper()
        };
        let mut cells = BTreeMap::new();
        cells.insert(
            "gzip|baseline|base|0000000000000000".to_string(),
            exp.run(Benchmark::Gzip, Technique::Baseline),
        );
        cells.insert(
            "gzip|noop|base|0000000000000000".to_string(),
            exp.run(Benchmark::Gzip, Technique::Noop),
        );
        let text = save_cells(&cells);
        let loaded = load_cells(&text).unwrap();
        assert_eq!(loaded.len(), 2);
        for (key, report) in &cells {
            assert_eq!(loaded.get(key), Some(report), "{key}");
        }
    }
}
