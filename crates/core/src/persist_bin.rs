//! Binary twin of the [`crate::persist`] JSON codec, for the wire.
//!
//! Save files stay JSON — human-inspectable, exact-round-trip, and the
//! oracle this codec is differentially tested against. The remote
//! substrate, though, re-encodes the same `MatrixSpec` on every batch and
//! a ~2 KB `RunReport` on every completed cell, and on a hot fleet the
//! JSON string machinery (field names, decimal rendering, escaping,
//! recursive-descent parsing) dominates the frame cost. This module is
//! the compact encoding those frames negotiate up to:
//!
//! * **varints** — `u64`/`usize` as LEB128 (7 value bits per byte,
//!   continuation high bit), so the typical small counter is one byte,
//! * **strings** — varint byte length, then raw UTF-8 (no escaping),
//! * **floats** — `f64::to_bits` as 8 little-endian bytes: bit-exact by
//!   construction, including negative zero (the JSON side promises the
//!   same via shortest-round-trip formatting),
//! * **options** — one presence byte (0 absent / 1 present),
//! * **sequences** — varint element count, then the elements.
//!
//! Field order is fixed by the encode functions below; there are no field
//! names on the wire. Versioning rides on the codec *name* exchanged at
//! `Hello` time (`"bin1"` pins this layout; a breaking change becomes
//! `"bin2"`), so decoders never sniff versions out of payload bytes.
//!
//! Decoding is hardened for untrusted input: [`ByteReader`] bounds-checks
//! every read against the slice it was given (truncated or hostile
//! lengths error — they never panic and never over-read), and element
//! counts are validated against the bytes actually remaining before any
//! allocation.
//!
//! [`report_fingerprint`] hashes a report's canonical encoding; because
//! the encoding is deterministic and injective on the report fields,
//! equal fingerprints mean equal reports (modulo 64-bit collisions, which
//! the results store additionally guards with a debug assertion).

use crate::engine::MatrixSpec;
use crate::persist::{for_each_stats_field, PersistError};
use crate::runner::RunReport;
use crate::technique::Technique;
use sdiq_compiler::{CompileStats, ProcedureStats};
use sdiq_power::{PowerBreakdown, StructurePower};
use sdiq_sim::ActivityStats;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Primitive writers
// ---------------------------------------------------------------------------

/// Appends `v` as a LEB128 varint (1 byte per 7 value bits, high bit =
/// continuation; at most 10 bytes for a full `u64`).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` as a varint (see [`put_varint`]).
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_varint(out, v as u64);
}

/// Appends `s` as a varint byte length followed by raw UTF-8.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_usize(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// Appends `v` bit-exactly as 8 little-endian bytes of `f64::to_bits`.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends `v` as 8 fixed little-endian bytes — for full-entropy values
/// (fingerprints) where a varint would average *longer* than fixed width.
pub fn put_u64_fixed(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

// ---------------------------------------------------------------------------
// Bounds-checked reader
// ---------------------------------------------------------------------------

/// A cursor over untrusted bytes. Every read checks the remaining length
/// first and returns a [`PersistError`] on shortfall — hostile input can
/// make decoding fail, never panic or read past the slice.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Errors unless every byte was consumed — trailing content means the
    /// two sides disagree about the layout, which must not pass silently.
    pub fn finish(&self) -> Result<(), PersistError> {
        if self.remaining() != 0 {
            return Err(PersistError::new(format!(
                "binary payload has {} trailing byte(s)",
                self.remaining()
            )));
        }
        Ok(())
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        let Some(&byte) = self.bytes.get(self.pos) else {
            return Err(PersistError::new("binary payload truncated"));
        };
        self.pos += 1;
        Ok(byte)
    }

    /// Reads a LEB128 varint into a `u64`. Rejects encodings longer than
    /// 10 bytes and final-byte bits that overflow 64 (a canonical encoder
    /// never produces either, so both mean corruption).
    pub fn varint(&mut self) -> Result<u64, PersistError> {
        let mut value: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            let bits = (byte & 0x7f) as u64;
            if shift == 63 && bits > 1 {
                return Err(PersistError::new("varint overflows u64"));
            }
            value |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(PersistError::new("varint longer than 10 bytes"))
    }

    /// Reads a varint that must fit a `usize`.
    pub fn usize(&mut self) -> Result<usize, PersistError> {
        usize::try_from(self.varint()?)
            .map_err(|_| PersistError::new("binary length does not fit usize"))
    }

    /// Reads a varint byte length, then that many bytes of UTF-8. The
    /// length is checked against the remaining bytes *before* slicing, so
    /// a hostile length cannot over-read (or over-allocate: the string
    /// borrows from the payload until `to_string`).
    pub fn str(&mut self) -> Result<&'a str, PersistError> {
        let len = self.usize()?;
        if len > self.remaining() {
            return Err(PersistError::new(format!(
                "binary string length {len} exceeds the {} byte(s) left in the payload",
                self.remaining()
            )));
        }
        let bytes = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        std::str::from_utf8(bytes)
            .map_err(|_| PersistError::new("binary string is not valid UTF-8"))
    }

    /// Reads 8 little-endian bytes as `f64::from_bits`.
    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64_fixed()?))
    }

    /// Reads 8 fixed little-endian bytes as a `u64` (see [`put_u64_fixed`]).
    pub fn u64_fixed(&mut self) -> Result<u64, PersistError> {
        if self.remaining() < 8 {
            return Err(PersistError::new(
                "binary payload truncated inside a fixed u64",
            ));
        }
        let mut bits = [0u8; 8];
        bits.copy_from_slice(&self.bytes[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(u64::from_le_bytes(bits))
    }

    /// Reads a varint element count for a sequence whose elements each
    /// occupy at least `min_element_bytes` — a count the remaining bytes
    /// cannot possibly satisfy errors here, before any allocation.
    pub fn seq_len(&mut self, min_element_bytes: usize) -> Result<usize, PersistError> {
        let count = self.usize()?;
        if count > self.remaining() / min_element_bytes.max(1) {
            return Err(PersistError::new(format!(
                "binary sequence claims {count} element(s) but only {} byte(s) remain",
                self.remaining()
            )));
        }
        Ok(count)
    }
}

// ---------------------------------------------------------------------------
// Report schema
// ---------------------------------------------------------------------------

fn encode_stats(out: &mut Vec<u8>, stats: &ActivityStats) {
    macro_rules! emit {
        ($($name:ident),*) => {
            $(put_varint(out, stats.$name);)*
        };
    }
    for_each_stats_field!(emit);
}

fn decode_stats(reader: &mut ByteReader<'_>) -> Result<ActivityStats, PersistError> {
    let mut stats = ActivityStats::default();
    macro_rules! read {
        ($($name:ident),*) => {
            $(stats.$name = reader.varint()?;)*
        };
    }
    for_each_stats_field!(read);
    Ok(stats)
}

fn encode_structure_power(out: &mut Vec<u8>, power: &StructurePower) {
    put_f64(out, power.dynamic);
    put_f64(out, power.static_);
}

fn decode_structure_power(reader: &mut ByteReader<'_>) -> Result<StructurePower, PersistError> {
    Ok(StructurePower {
        dynamic: reader.f64()?,
        static_: reader.f64()?,
    })
}

fn encode_power(out: &mut Vec<u8>, power: &PowerBreakdown) {
    encode_structure_power(out, &power.iq);
    encode_structure_power(out, &power.int_rf);
    encode_structure_power(out, &power.fp_rf);
}

fn decode_power(reader: &mut ByteReader<'_>) -> Result<PowerBreakdown, PersistError> {
    Ok(PowerBreakdown {
        iq: decode_structure_power(reader)?,
        int_rf: decode_structure_power(reader)?,
        fp_rf: decode_structure_power(reader)?,
    })
}

fn encode_compile(out: &mut Vec<u8>, stats: &CompileStats) {
    put_usize(out, stats.annotated_blocks);
    put_usize(out, stats.hint_noops_inserted);
    put_varint(out, stats.total_duration.as_nanos() as u64);
    put_usize(out, stats.per_procedure.len());
    for p in &stats.per_procedure {
        put_str(out, &p.name);
        put_usize(out, p.blocks_analysed);
        put_usize(out, p.loops_analysed);
        put_usize(out, p.dag_regions);
        put_varint(out, p.duration.as_nanos() as u64);
    }
}

fn decode_compile(reader: &mut ByteReader<'_>) -> Result<CompileStats, PersistError> {
    let annotated_blocks = reader.usize()?;
    let hint_noops_inserted = reader.usize()?;
    let total_duration = Duration::from_nanos(reader.varint()?);
    // Each procedure is at least 5 bytes (empty name + four zero varints).
    let count = reader.seq_len(5)?;
    let mut per_procedure = Vec::with_capacity(count);
    for _ in 0..count {
        per_procedure.push(ProcedureStats {
            name: reader.str()?.to_string(),
            blocks_analysed: reader.usize()?,
            loops_analysed: reader.usize()?,
            dag_regions: reader.usize()?,
            duration: Duration::from_nanos(reader.varint()?),
        });
    }
    Ok(CompileStats {
        per_procedure,
        total_duration,
        annotated_blocks,
        hint_noops_inserted,
    })
}

/// Appends one [`RunReport`] in the canonical field order (the binary
/// equivalent of [`crate::persist::report_to_json`]).
pub fn encode_report(out: &mut Vec<u8>, report: &RunReport) {
    put_str(out, &report.workload);
    put_str(out, report.technique.name());
    encode_stats(out, &report.stats);
    // Technique-extension counters sit outside the fixed `encode_stats`
    // block. The wire carries no field names, so presence must be
    // *deterministic*: the counter is written iff the technique's registry
    // spec declares it. The six paper techniques don't, keeping their
    // encodings (and `report_fingerprint`s) byte-identical to the
    // pre-registry format; version-skewed peers fail earlier, at the
    // unknown technique name.
    if report.technique.tracks_low_energy() {
        put_varint(out, report.stats.committed_low_energy);
    }
    encode_power(out, &report.power);
    match &report.compile {
        Some(stats) => {
            out.push(1);
            encode_compile(out, stats);
        }
        None => out.push(0),
    }
    put_varint(out, report.adaptive_resizes);
    put_usize(out, report.hint_noops_inserted);
}

/// One [`RunReport`] as a standalone byte buffer.
pub fn report_to_bytes(report: &RunReport) -> Vec<u8> {
    let mut out = Vec::with_capacity(512);
    encode_report(&mut out, report);
    out
}

/// Decodes one [`RunReport`] (the inverse of [`encode_report`]).
pub fn decode_report(reader: &mut ByteReader<'_>) -> Result<RunReport, PersistError> {
    let workload = reader.str()?.to_string();
    let technique_name = reader.str()?;
    let technique = Technique::from_name(technique_name)
        .ok_or_else(|| PersistError::new(format!("unknown technique `{technique_name}`")))?;
    let mut stats = decode_stats(reader)?;
    if technique.tracks_low_energy() {
        stats.committed_low_energy = reader.varint()?;
    }
    let power = decode_power(reader)?;
    let compile = match reader.u8()? {
        0 => None,
        1 => Some(decode_compile(reader)?),
        other => {
            return Err(PersistError::new(format!(
                "bad compile presence byte {other:#04x}"
            )))
        }
    };
    Ok(RunReport {
        workload,
        technique,
        stats,
        power,
        compile,
        adaptive_resizes: reader.varint()?,
        hint_noops_inserted: reader.usize()?,
    })
}

/// Decodes a [`RunReport`] from a standalone buffer, requiring the buffer
/// to hold exactly one report.
pub fn report_from_bytes(bytes: &[u8]) -> Result<RunReport, PersistError> {
    let mut reader = ByteReader::new(bytes);
    let report = decode_report(&mut reader)?;
    reader.finish()?;
    Ok(report)
}

// ---------------------------------------------------------------------------
// Matrix spec schema
// ---------------------------------------------------------------------------

/// Appends one [`MatrixSpec`] (the binary equivalent of
/// [`crate::persist::matrix_spec_to_json`]).
pub fn encode_matrix_spec(out: &mut Vec<u8>, spec: &MatrixSpec) {
    put_f64(out, spec.scale);
    put_usize(out, spec.sweeps.len());
    for (axis, values) in &spec.sweeps {
        put_str(out, axis);
        put_usize(out, values.len());
        for &value in values {
            put_f64(out, value);
        }
    }
    put_usize(out, spec.benchmarks.len());
    for benchmark in &spec.benchmarks {
        put_str(out, benchmark);
    }
    put_usize(out, spec.techniques.len());
    for technique in &spec.techniques {
        put_str(out, technique);
    }
}

/// Decodes one [`MatrixSpec`] (the inverse of [`encode_matrix_spec`]).
pub fn decode_matrix_spec(reader: &mut ByteReader<'_>) -> Result<MatrixSpec, PersistError> {
    let scale = reader.f64()?;
    let sweep_count = reader.seq_len(2)?;
    let mut sweeps = Vec::with_capacity(sweep_count);
    for _ in 0..sweep_count {
        let axis = reader.str()?.to_string();
        let value_count = reader.seq_len(8)?;
        let mut values = Vec::with_capacity(value_count);
        for _ in 0..value_count {
            values.push(reader.f64()?);
        }
        sweeps.push((axis, values));
    }
    let benchmark_count = reader.seq_len(1)?;
    let mut benchmarks = Vec::with_capacity(benchmark_count);
    for _ in 0..benchmark_count {
        benchmarks.push(reader.str()?.to_string());
    }
    let technique_count = reader.seq_len(1)?;
    let mut techniques = Vec::with_capacity(technique_count);
    for _ in 0..technique_count {
        techniques.push(reader.str()?.to_string());
    }
    Ok(MatrixSpec {
        scale,
        sweeps,
        benchmarks,
        techniques,
    })
}

// ---------------------------------------------------------------------------
// Report fingerprints
// ---------------------------------------------------------------------------

/// FNV-1a over a report's canonical binary encoding. The encoding is
/// deterministic (no maps, no float formatting), so byte-identical
/// reports — and only those — share a fingerprint; the results store
/// uses this to recognise duplicate cell results in O(1).
pub fn report_fingerprint(report: &RunReport) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in report_to_bytes(report) {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn varint_round_trip(v: u64) {
        let mut out = Vec::new();
        put_varint(&mut out, v);
        let mut reader = ByteReader::new(&out);
        assert_eq!(reader.varint().unwrap(), v, "value {v}");
        reader.finish().unwrap();
    }

    #[test]
    fn varints_round_trip_across_the_range() {
        for v in [0, 1, 127, 128, 129, 16383, 16384, u32::MAX as u64, u64::MAX] {
            varint_round_trip(v);
        }
        // Boundary widths: every 7-bit threshold.
        for shift in 0..9 {
            let edge = 1u64 << (7 * (shift + 1));
            varint_round_trip(edge - 1);
            varint_round_trip(edge);
        }
    }

    #[test]
    fn varint_rejects_overflow_and_runaway_continuation() {
        // 10 bytes whose final byte carries bits beyond 2^64.
        let overflow = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        assert!(ByteReader::new(&overflow).varint().is_err());
        // Continuation bit never drops.
        let runaway = [0x80u8; 11];
        assert!(ByteReader::new(&runaway).varint().is_err());
        // Truncated mid-varint.
        assert!(ByteReader::new(&[0x80]).varint().is_err());
    }

    #[test]
    fn strings_are_length_checked_before_slicing() {
        let mut out = Vec::new();
        put_str(&mut out, "issue-queue");
        let mut reader = ByteReader::new(&out);
        assert_eq!(reader.str().unwrap(), "issue-queue");
        reader.finish().unwrap();

        // A hostile length larger than the payload errors cleanly.
        let mut hostile = Vec::new();
        put_varint(&mut hostile, u64::MAX);
        assert!(ByteReader::new(&hostile).str().is_err());
        let mut oversized = Vec::new();
        put_varint(&mut oversized, 1 << 40);
        oversized.extend_from_slice(b"short");
        assert!(ByteReader::new(&oversized).str().is_err());
    }

    #[test]
    fn f64_bits_round_trip_exactly() {
        for v in [0.0, -0.0, 1.0, 0.1, f64::MIN_POSITIVE, f64::MAX] {
            let mut out = Vec::new();
            put_f64(&mut out, v);
            let mut reader = ByteReader::new(&out);
            assert_eq!(reader.f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn matrix_spec_round_trips() {
        let spec = MatrixSpec {
            scale: 0.05,
            sweeps: vec![
                ("iq".to_string(), vec![64.0, 48.0, 32.0]),
                ("scale".to_string(), vec![0.5]),
            ],
            benchmarks: vec!["gzip".to_string(), "mcf".to_string()],
            techniques: vec!["baseline".to_string(), "noop".to_string()],
        };
        let mut out = Vec::new();
        encode_matrix_spec(&mut out, &spec);
        let mut reader = ByteReader::new(&out);
        let back = decode_matrix_spec(&mut reader).unwrap();
        reader.finish().unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn reports_round_trip_bit_identically_and_match_the_json_path() {
        use crate::persist::{report_from_json, report_to_json};
        use crate::runner::Experiment;
        use sdiq_workloads::Benchmark;
        let exp = Experiment {
            scale: 0.05,
            ..Experiment::paper()
        };
        for technique in [Technique::Baseline, Technique::Noop, Technique::Abella] {
            let report = exp.run(Benchmark::Gzip, technique);
            let back = report_from_bytes(&report_to_bytes(&report)).unwrap();
            assert_eq!(back, report, "{technique} report must round-trip");
            // Differential against the JSON oracle: both paths reproduce
            // the identical report.
            let via_json = report_from_json(&report_to_json(&report)).unwrap();
            assert_eq!(back, via_json);
            // Identical reports share a fingerprint; distinct ones don't
            // (probabilistically — these three differ hugely).
            assert_eq!(report_fingerprint(&report), report_fingerprint(&back));
        }
    }

    #[test]
    fn low_energy_counter_round_trips_only_for_tracking_techniques() {
        use crate::persist::{report_from_json, report_to_json};
        use crate::runner::Experiment;
        use sdiq_workloads::Benchmark;
        let exp = Experiment {
            scale: 0.05,
            ..Experiment::paper()
        };

        // A lowen-isa report carries a live counter through both codecs.
        let report = exp.run(Benchmark::Gzip, Technique::LowenIsa);
        assert!(report.stats.committed_low_energy > 0, "counter is live");
        let back = report_from_bytes(&report_to_bytes(&report)).unwrap();
        assert_eq!(back, report, "binary codec preserves the counter");
        let via_json = report_from_json(&report_to_json(&report)).unwrap();
        assert_eq!(via_json, report, "JSON codec preserves the counter");

        // A non-tracking technique's encoding has no slot for the counter:
        // smuggling a value in must not survive the round-trip, because
        // that is exactly the byte layout pre-registry saves rely on.
        let mut baseline = exp.run(Benchmark::Gzip, Technique::Baseline);
        let clean = report_to_bytes(&baseline);
        baseline.stats.committed_low_energy = 42;
        let bytes = report_to_bytes(&baseline);
        assert_eq!(bytes, clean, "non-tracking encodings are unchanged");
        let back = report_from_bytes(&bytes).unwrap();
        assert_eq!(back.stats.committed_low_energy, 0);
    }

    #[test]
    fn hostile_sequence_counts_error_before_allocation() {
        // A spec whose sweep count claims 2^40 elements with no bytes to
        // back them must error in seq_len, not attempt the allocation.
        let mut bytes = Vec::new();
        put_f64(&mut bytes, 1.0);
        put_varint(&mut bytes, 1 << 40);
        assert!(decode_matrix_spec(&mut ByteReader::new(&bytes)).is_err());
    }
}
