//! The experiment runner: compile (if needed) → execute → simulate → power.

use crate::technique::Technique;
use sdiq_compiler::{CompileStats, CompilerPass};
use sdiq_isa::{Executor, Program};
use sdiq_power::{EnergyModel, PowerBreakdown, PowerSavings};
use sdiq_sim::{ActivityStats, ExecPlan, PlanSimulator, SimConfig, Simulator};
use sdiq_workloads::Benchmark;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Duration;

/// The result of running one (workload, technique) pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Workload name (a benchmark name or a custom program's name).
    pub workload: String,
    /// The technique that produced this run.
    pub technique: Technique,
    /// Raw activity counters from the simulator.
    pub stats: ActivityStats,
    /// Energy breakdown under the technique's wakeup-accounting scheme.
    pub power: PowerBreakdown,
    /// Compiler statistics (present only for the software techniques).
    pub compile: Option<CompileStats>,
    /// Number of resize decisions taken by the adaptive controller.
    pub adaptive_resizes: u64,
    /// Special NOOPs added to the static program by the compiler pass.
    pub hint_noops_inserted: usize,
}

impl RunReport {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.stats.ipc()
    }

    /// Compares this run (as the technique) against `baseline`, producing
    /// the normalised quantities the paper reports.
    pub fn compared_to(&self, baseline: &RunReport) -> Comparison {
        let ipc_loss_percent = if baseline.ipc() > 0.0 {
            (1.0 - self.ipc() / baseline.ipc()) * 100.0
        } else {
            0.0
        };
        let occ_base = baseline.stats.avg_iq_occupancy();
        let iq_occupancy_reduction_percent = if occ_base > 0.0 {
            (1.0 - self.stats.avg_iq_occupancy() / occ_base) * 100.0
        } else {
            0.0
        };
        let inflight_base = baseline.stats.avg_rob_occupancy();
        let in_flight_reduction_percent = if inflight_base > 0.0 {
            (1.0 - self.stats.avg_rob_occupancy() / inflight_base) * 100.0
        } else {
            0.0
        };
        Comparison {
            ipc_loss_percent,
            iq_occupancy_reduction_percent,
            in_flight_reduction_percent,
            iq_banks_off_percent: self.stats.iq_banks_off_fraction() * 100.0,
            savings: PowerSavings::relative_to(&baseline.power, &self.power),
        }
    }
}

/// Normalised comparison of a technique run against the baseline run of the
/// same workload.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Comparison {
    /// IPC loss in percent (Figures 6 and 10).
    pub ipc_loss_percent: f64,
    /// Reduction in average issue-queue occupancy, percent (Figure 7).
    pub iq_occupancy_reduction_percent: f64,
    /// Reduction in average in-flight (ROB-resident) instructions, percent
    /// (the "fewer instructions dispatched/in flight" effect of §5.2.3 that
    /// shrinks register-file pressure).
    pub in_flight_reduction_percent: f64,
    /// Fraction of issue-queue banks turned off in the technique run,
    /// percent (§5.2.2 reports 37% for the NOOP technique vs 34% for
    /// abella).
    pub iq_banks_off_percent: f64,
    /// Power savings relative to the baseline (Figures 8, 9, 11, 12).
    pub savings: PowerSavings,
}

/// Which simulator backend executes a cell. Both backends are
/// bit-identical in cycles and [`ActivityStats`] (pinned by differential
/// tests in `sdiq_sim::plan` and the cross-backend proptests), so the
/// choice is purely a speed/debuggability trade-off and deliberately does
/// **not** participate in cell keys or save-file fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SimBackend {
    /// Compile-then-execute: lower the cell once into an
    /// [`sdiq_sim::ExecPlan`] (cacheable, shared across runs of the same
    /// shape), then replay only the dynamic state. The default.
    #[default]
    Compiled,
    /// The original interpreted cycle loop, re-deriving static program
    /// structure every run. Kept as the debugging escape hatch
    /// (`repro --backend interpreted`) and the oracle the compiled
    /// backend is differentially tested against.
    Interpreted,
}

impl SimBackend {
    /// Parses a CLI argument value.
    pub fn parse(value: &str) -> Option<Self> {
        match value {
            "compiled" => Some(SimBackend::Compiled),
            "interpreted" => Some(SimBackend::Interpreted),
            _ => None,
        }
    }

    /// The CLI name of this backend.
    pub fn name(&self) -> &'static str {
        match self {
            SimBackend::Compiled => "compiled",
            SimBackend::Interpreted => "interpreted",
        }
    }
}

/// Experiment configuration: machine model, energy model and workload scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// Simulator configuration (Table 1 by default).
    pub sim_config: SimConfig,
    /// Per-event energy model.
    pub energy_model: EnergyModel,
    /// Scale factor applied to every benchmark's outer iteration count
    /// (1.0 = the default scale used by the reproduction figures).
    pub scale: f64,
    /// Hard cap on executed dynamic instructions per run (a safety net; the
    /// workloads terminate well below it).
    pub max_dynamic_instructions: u64,
    /// Simulator backend (defaults to [`SimBackend::Compiled`]; not part
    /// of cell keys or save-file fingerprints — see [`SimBackend`]).
    pub backend: SimBackend,
}

impl Experiment {
    /// The configuration used to regenerate the paper's figures.
    pub fn paper() -> Self {
        Experiment {
            sim_config: SimConfig::hpca2005(),
            energy_model: EnergyModel::wattch_default(),
            scale: 1.0,
            max_dynamic_instructions: 2_000_000,
            backend: SimBackend::Compiled,
        }
    }

    /// A fast configuration for tests, examples and doc tests: the same
    /// machine model over much shorter workloads.
    pub fn quick() -> Self {
        Experiment {
            scale: 0.15,
            ..Experiment::paper()
        }
    }

    /// Runs one benchmark under one technique.
    pub fn run(&self, benchmark: Benchmark, technique: Technique) -> RunReport {
        let program = benchmark.build_scaled(self.scale);
        self.run_program(&program, technique)
    }

    /// Runs an arbitrary (already built) program under one technique. The
    /// program's own name labels the report.
    ///
    /// The input is only borrowed: software techniques run the compiler
    /// pass (which produces the annotated copy it needs), hardware
    /// techniques simulate the borrowed program directly — the experiment
    /// layer never clones a `Program` just to run it. The pass is
    /// retargeted at this experiment's machine (not the hard-coded paper
    /// machine), matching what the matrix engine does per variant.
    pub fn run_program(&self, program: &Program, technique: Technique) -> RunReport {
        let compiled = technique
            .pass_config_for(self.sim_config.widths, self.sim_config.fu_counts)
            .map(|config| CompilerPass::new(config).run(program));
        let (program_to_run, compile, hint_noops) = match &compiled {
            Some(compiled) => (
                &compiled.program,
                Some(compiled.stats.clone()),
                compiled.stats.hint_noops_inserted,
            ),
            None => (program, None, 0),
        };
        self.run_prepared(
            program_to_run,
            technique,
            self.sim_config,
            compile,
            hint_noops,
        )
    }

    /// Runs a program whose compiler pass (if any) has already happened —
    /// the engine's entry point, fed from the artifact cache. `sim_config`
    /// is taken explicitly so configuration sweeps can override the
    /// experiment's machine per cell; everything downstream of the pass
    /// (functional execution, timing simulation, power model) runs here.
    pub fn run_prepared(
        &self,
        program_to_run: &Program,
        technique: Technique,
        sim_config: SimConfig,
        compile: Option<CompileStats>,
        hint_noops_inserted: usize,
    ) -> RunReport {
        // 1. Functional execution → committed trace.
        let trace = match Executor::new(program_to_run).run(self.max_dynamic_instructions) {
            Ok(trace) => trace,
            Err(fault) => panic!("workload must execute cleanly, faulted with {fault:?}"),
        };

        // 2. Timing simulation (both backends are bit-identical; a one-shot
        //    run builds its plan inline, the engine path caches plans in
        //    the ArtifactCache and enters through `run_planned` instead).
        let result = match self.backend {
            SimBackend::Compiled => {
                let plan = ExecPlan::build(sim_config, program_to_run, &trace);
                PlanSimulator::new(&plan, technique.resize_policy()).run()
            }
            SimBackend::Interpreted => Simulator::new(
                sim_config,
                program_to_run,
                &trace,
                technique.resize_policy(),
            )
            .run(),
        };
        let result = match result {
            Ok(result) => result,
            Err(err) => panic!("simulation must complete over a committed trace: {err:?}"),
        };

        // 3. Power model.
        let power = PowerBreakdown::from_stats(
            &result.stats,
            &self.energy_model,
            technique.wakeup_scheme(),
            technique.bank_gating(),
        );

        RunReport {
            workload: program_to_run.name.clone(),
            technique,
            stats: result.stats,
            power,
            compile,
            adaptive_resizes: result.adaptive_resizes,
            hint_noops_inserted,
        }
    }

    /// Runs a cell whose static side is already fully lowered into an
    /// [`ExecPlan`] — the compiled-backend fast path fed from
    /// [`crate::ArtifactCache::planned`]. Functional execution, trace
    /// construction and plan lowering are all skipped: only the dynamic
    /// cycle replay and the power model run here. One plan serves every
    /// technique/policy of its (program, SimConfig) shape.
    pub fn run_planned(
        &self,
        plan: &ExecPlan,
        technique: Technique,
        compile: Option<CompileStats>,
        hint_noops_inserted: usize,
    ) -> RunReport {
        let result = match PlanSimulator::new(plan, technique.resize_policy()).run() {
            Ok(result) => result,
            Err(err) => panic!("simulation must complete over a committed trace: {err:?}"),
        };
        let power = PowerBreakdown::from_stats(
            &result.stats,
            &self.energy_model,
            technique.wakeup_scheme(),
            technique.bank_gating(),
        );
        RunReport {
            workload: plan.workload().to_string(),
            technique,
            stats: result.stats,
            power,
            compile,
            adaptive_resizes: result.adaptive_resizes,
            hint_noops_inserted,
        }
    }

    /// Runs the full (benchmarks × techniques) matrix on the job engine —
    /// a worker pool sized to the machine pulling cells from a shared
    /// queue, with program builds and compiler passes deduplicated through
    /// a [`crate::ArtifactCache`] — and returns the collected suite. The
    /// result is bit-identical to a serial run (see [`crate::Matrix`]).
    pub fn run_matrix(&self, benchmarks: &[Benchmark], techniques: &[Technique]) -> Suite {
        crate::engine::Matrix::new(self)
            .benchmarks(benchmarks)
            .techniques(techniques)
            .run()
            .into_suite()
    }

    /// Measures the compile time of every benchmark with and without the
    /// analysis pass (the analogue of Table 2). Returns
    /// `(benchmark, baseline_duration, limited_duration)` tuples.
    pub fn compile_times(&self, benchmarks: &[Benchmark]) -> Vec<(Benchmark, Duration, Duration)> {
        benchmarks
            .iter()
            .map(|&b| {
                let start = std::time::Instant::now();
                let program = b.build_scaled(self.scale);
                let baseline = start.elapsed();
                let pass_start = std::time::Instant::now();
                let pass_config = Technique::Noop
                    .pass_config()
                    .unwrap_or_else(|| unreachable!("the NOOP technique always has a pass"));
                let _ = CompilerPass::new(pass_config).run(&program);
                let limited = baseline + pass_start.elapsed();
                (b, baseline, limited)
            })
            .collect()
    }
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment::paper()
    }
}

/// Results of a full (benchmark × technique) matrix.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Suite {
    reports: BTreeMap<(Benchmark, Technique), RunReport>,
}

impl Suite {
    /// The report for one (benchmark, technique) pair, if it was run.
    pub fn get(&self, benchmark: Benchmark, technique: Technique) -> Option<&RunReport> {
        self.reports.get(&(benchmark, technique))
    }

    /// The comparison of `technique` against the baseline for `benchmark`.
    /// Returns `None` unless both runs are present.
    pub fn comparison(&self, benchmark: Benchmark, technique: Technique) -> Option<Comparison> {
        let baseline = self.get(benchmark, Technique::Baseline)?;
        let run = self.get(benchmark, technique)?;
        Some(run.compared_to(baseline))
    }

    /// All benchmarks present in the suite.
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        let mut out: Vec<Benchmark> = self.reports.keys().map(|(b, _)| *b).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// All techniques present in the suite.
    pub fn techniques(&self) -> Vec<Technique> {
        let mut out: Vec<Technique> = self.reports.keys().map(|(_, t)| *t).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of stored reports.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// `true` if the suite holds no reports.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Inserts a report (used by the harness when composing suites manually).
    pub fn insert(&mut self, benchmark: Benchmark, report: RunReport) {
        self.reports.insert((benchmark, report.technique), report);
    }

    /// All reports, in deterministic (benchmark, technique) order.
    pub fn iter(&self) -> impl Iterator<Item = (&(Benchmark, Technique), &RunReport)> {
        self.reports.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_experiment() -> Experiment {
        Experiment {
            scale: 0.05,
            ..Experiment::paper()
        }
    }

    #[test]
    fn baseline_and_noop_runs_produce_consistent_reports() {
        let exp = tiny_experiment();
        let baseline = exp.run(Benchmark::Gzip, Technique::Baseline);
        let noop = exp.run(Benchmark::Gzip, Technique::Noop);
        assert_eq!(baseline.workload, "gzip");
        assert!(baseline.compile.is_none());
        assert!(noop.compile.is_some());
        assert!(noop.hint_noops_inserted > 0);
        // Both runs commit the same number of real instructions.
        assert_eq!(baseline.stats.committed, noop.stats.committed);
        // The NOOP run additionally fetched and stripped the hints.
        assert!(noop.stats.committed_hints > 0);
        assert_eq!(baseline.stats.committed_hints, 0);
        let cmp = noop.compared_to(&baseline);
        // The software technique saves issue-queue dynamic power.
        assert!(cmp.savings.iq_dynamic_pct > 0.0);
        assert!(cmp.iq_occupancy_reduction_percent > 0.0);
    }

    #[test]
    fn run_matrix_fills_every_cell() {
        let exp = tiny_experiment();
        let suite = exp.run_matrix(
            &[Benchmark::Gzip, Benchmark::Mcf],
            &[Technique::Baseline, Technique::Noop],
        );
        assert_eq!(suite.len(), 4);
        assert_eq!(suite.benchmarks().len(), 2);
        assert_eq!(suite.techniques().len(), 2);
        assert!(suite.comparison(Benchmark::Mcf, Technique::Noop).is_some());
        assert!(suite
            .comparison(Benchmark::Mcf, Technique::Abella)
            .is_none());
    }

    /// The two backends are bit-identical through the whole pipeline:
    /// the engine path (cached plans, cached compiles with zeroed
    /// durations) must produce byte-equal suites either way.
    #[test]
    fn compiled_and_interpreted_backends_agree_bit_for_bit() {
        let compiled = tiny_experiment();
        let interpreted = Experiment {
            backend: SimBackend::Interpreted,
            ..tiny_experiment()
        };
        assert_eq!(compiled.backend, SimBackend::Compiled, "compiled default");
        let benchmarks = [Benchmark::Gzip, Benchmark::Mcf];
        let techniques = [Technique::Baseline, Technique::Noop, Technique::Abella];
        let a = compiled.run_matrix(&benchmarks, &techniques);
        let b = interpreted.run_matrix(&benchmarks, &techniques);
        assert_eq!(a, b, "suites must be bit-identical across backends");
    }

    #[test]
    fn sim_backend_parses_cli_names() {
        assert_eq!(SimBackend::parse("compiled"), Some(SimBackend::Compiled));
        assert_eq!(
            SimBackend::parse("interpreted"),
            Some(SimBackend::Interpreted)
        );
        assert_eq!(SimBackend::parse("warp"), None);
        assert_eq!(SimBackend::Compiled.name(), "compiled");
        assert_eq!(SimBackend::Interpreted.name(), "interpreted");
    }

    #[test]
    fn compile_times_report_baseline_and_limited() {
        let exp = tiny_experiment();
        let times = exp.compile_times(&[Benchmark::Gzip]);
        assert_eq!(times.len(), 1);
        let (b, baseline, limited) = times[0];
        assert_eq!(b, Benchmark::Gzip);
        assert!(limited >= baseline, "analysis can only add time");
    }

    #[test]
    fn nonempty_run_shares_timing_with_baseline() {
        let exp = tiny_experiment();
        let baseline = exp.run(Benchmark::Vpr, Technique::Baseline);
        let nonempty = exp.run(Benchmark::Vpr, Technique::NonEmpty);
        assert_eq!(baseline.stats.cycles, nonempty.stats.cycles);
        let cmp = nonempty.compared_to(&baseline);
        assert!(cmp.ipc_loss_percent.abs() < 1e-9);
        // But it still saves wakeup (dynamic) power.
        assert!(cmp.savings.iq_dynamic_pct > 0.0);
        assert!(cmp.savings.iq_static_pct.abs() < 1e-9);
    }
}
