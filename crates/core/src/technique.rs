//! The techniques compared in the paper's evaluation.

use sdiq_compiler::PassConfig;
use sdiq_power::WakeupScheme;
use sdiq_sim::{AdaptiveConfig, ResizePolicy};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One bar group of the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Technique {
    /// The unmanaged processor: full 80-entry queue, every entry woken on
    /// every broadcast. All savings are normalised against this run.
    Baseline,
    /// Folegnani & González's wakeup gating of empty entries — the
    /// `nonEmpty` bar of Figure 8. Timing is identical to the baseline; only
    /// the wakeup accounting changes.
    NonEmpty,
    /// The paper's base technique (§5.2): compiler analysis communicated via
    /// special NOOPs inserted in the instruction stream.
    Noop,
    /// The *Extension* technique (§5.3): the same analysis communicated via
    /// tags on existing instructions, removing the NOOP fetch/dispatch
    /// overhead.
    Extension,
    /// The *Improved* technique (§5.3): Extension plus inter-procedural
    /// functional-unit contention analysis.
    Improved,
    /// The hardware comparator: Abella & González's adaptive issue queue +
    /// ROB (IqRob64), referred to as `abella` in the paper's figures.
    Abella,
}

impl Technique {
    /// Every technique, in the order the paper discusses them.
    pub const ALL: [Technique; 6] = [
        Technique::Baseline,
        Technique::NonEmpty,
        Technique::Noop,
        Technique::Extension,
        Technique::Improved,
        Technique::Abella,
    ];

    /// The techniques that appear in the main comparison figures (everything
    /// except the baseline itself).
    pub const EVALUATED: [Technique; 5] = [
        Technique::NonEmpty,
        Technique::Noop,
        Technique::Extension,
        Technique::Improved,
        Technique::Abella,
    ];

    /// Short label used in figures and tables.
    pub fn name(&self) -> &'static str {
        match self {
            Technique::Baseline => "baseline",
            Technique::NonEmpty => "nonEmpty",
            Technique::Noop => "noop",
            Technique::Extension => "extension",
            Technique::Improved => "improved",
            Technique::Abella => "abella",
        }
    }

    /// Looks a technique up by its figure label (the inverse of
    /// [`Technique::name`]).
    pub fn from_name(name: &str) -> Option<Technique> {
        Technique::ALL.iter().copied().find(|t| t.name() == name)
    }

    /// The compiler pass configuration this technique needs, if any, for
    /// the paper's Table 1 machine.
    pub fn pass_config(&self) -> Option<PassConfig> {
        match self {
            Technique::Noop => Some(PassConfig::noop_insertion()),
            Technique::Extension => Some(PassConfig::tagging()),
            Technique::Improved => Some(PassConfig::improved()),
            Technique::Baseline | Technique::NonEmpty | Technique::Abella => None,
        }
    }

    /// The compiler pass configuration this technique needs, if any,
    /// retargeted at an arbitrary machine ([`PassConfig::retargeted`] owns
    /// the width-dependent details). Sweeps over issue-queue geometry use
    /// this so the software techniques compile against the capacity they
    /// will actually run on; [`crate::Experiment::run_program`] uses it
    /// with the experiment's own machine for the same reason.
    pub fn pass_config_for(
        &self,
        widths: sdiq_isa::MachineWidths,
        fu_counts: sdiq_isa::FuCounts,
    ) -> Option<PassConfig> {
        self.pass_config()
            .map(|base| base.retargeted(widths, fu_counts))
    }

    /// The simulator resize policy this technique runs with.
    pub fn resize_policy(&self) -> ResizePolicy {
        match self {
            Technique::Baseline | Technique::NonEmpty => ResizePolicy::Fixed,
            Technique::Noop | Technique::Extension | Technique::Improved => {
                ResizePolicy::SoftwareHint
            }
            Technique::Abella => ResizePolicy::Adaptive(AdaptiveConfig::iqrob64()),
        }
    }

    /// The wakeup accounting scheme used when turning activity into energy.
    pub fn wakeup_scheme(&self) -> WakeupScheme {
        match self {
            Technique::Baseline => WakeupScheme::Full,
            Technique::NonEmpty => WakeupScheme::NonEmptyOnly,
            _ => WakeupScheme::Gated,
        }
    }

    /// `true` if the technique runs the compiler pass.
    pub fn is_software(&self) -> bool {
        self.pass_config().is_some()
    }

    /// `true` if the configuration can switch unused issue-queue and
    /// register-file banks off. The unmanaged baseline and the pure
    /// wakeup-gating `nonEmpty` configuration cannot; every resizing scheme
    /// (software or adaptive hardware) can.
    pub fn bank_gating(&self) -> bool {
        !matches!(self, Technique::Baseline | Technique::NonEmpty)
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_compiler::EmitKind;

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> = Technique::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), Technique::ALL.len());
    }

    #[test]
    fn software_techniques_have_the_right_pass_configs() {
        assert!(Technique::Baseline.pass_config().is_none());
        assert!(Technique::NonEmpty.pass_config().is_none());
        assert!(Technique::Abella.pass_config().is_none());
        assert_eq!(
            Technique::Noop.pass_config().unwrap().emit,
            EmitKind::NoopInsertion
        );
        assert_eq!(
            Technique::Extension.pass_config().unwrap().emit,
            EmitKind::Tagging
        );
        let improved = Technique::Improved.pass_config().unwrap();
        assert_eq!(improved.emit, EmitKind::Tagging);
        assert!(improved.interprocedural_fu);
        assert!(
            !Technique::Extension
                .pass_config()
                .unwrap()
                .interprocedural_fu
        );
    }

    #[test]
    fn policies_and_schemes_match_the_paper() {
        assert_eq!(Technique::Baseline.wakeup_scheme(), WakeupScheme::Full);
        assert_eq!(
            Technique::NonEmpty.wakeup_scheme(),
            WakeupScheme::NonEmptyOnly
        );
        assert_eq!(Technique::Noop.wakeup_scheme(), WakeupScheme::Gated);
        assert_eq!(Technique::Abella.wakeup_scheme(), WakeupScheme::Gated);
        assert!(matches!(
            Technique::Abella.resize_policy(),
            ResizePolicy::Adaptive(_)
        ));
        assert!(matches!(
            Technique::Extension.resize_policy(),
            ResizePolicy::SoftwareHint
        ));
        assert!(matches!(
            Technique::NonEmpty.resize_policy(),
            ResizePolicy::Fixed
        ));
        assert!(Technique::Improved.is_software());
        assert!(!Technique::Abella.is_software());
        assert!(!Technique::Baseline.bank_gating());
        assert!(!Technique::NonEmpty.bank_gating());
        assert!(Technique::Noop.bank_gating());
        assert!(Technique::Abella.bank_gating());
    }
}
