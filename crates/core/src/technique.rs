//! The techniques compared in the evaluation, as an open registry.
//!
//! A [`Technique`] used to be a closed six-variant enum with its behaviour
//! scattered across hard-wired `match` arms. It is now an index into the
//! process-wide [`TechniqueRegistry`]: each technique is *data* — a
//! [`TechniqueSpec`] descriptor holding a stable wire name, an optional
//! compiler [`PassConfig`], a [`ResizePolicy`] and a [`WakeupScheme`] —
//! registered once and consulted by every dispatch site (the runner, the
//! matrix engine's cell keys, the persist codecs, the remote fleet's
//! fingerprints, the `repro` CLI and the lint walk). Adding a technique is
//! one [`TechniqueRegistry::register`] call; nothing else changes.
//!
//! # Wire-name stability rules
//!
//! The spec's `name` is the *wire format*: it appears in cell keys, save
//! files, checkpoints, `MatrixSpec` fingerprints and both remote codecs.
//! Therefore:
//!
//! * a name, once shipped in a save file, must never be renamed or reused
//!   for a different descriptor;
//! * the six paper techniques keep their historical names and registration
//!   order (`baseline`, `nonEmpty`, `noop`, `extension`, `improved`,
//!   `abella`) — [`Suite`](crate::Suite) summaries iterate in registration
//!   order, so reordering would silently reorder persisted output;
//! * decoding an unknown name fails loudly (this is what lets mixed-version
//!   fleets refuse version skew instead of mis-attributing results).
//!
//! The ordering contract is pinned by `registration_order_is_stable` below.

use sdiq_compiler::PassConfig;
use sdiq_power::WakeupScheme;
use sdiq_sim::{AdaptiveConfig, ResizePolicy};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{OnceLock, RwLock, RwLockReadGuard};

/// Everything the experiment layer needs to know about one technique.
///
/// A descriptor is pure data; registering it (see
/// [`TechniqueRegistry::register`]) is the *only* step needed to make a new
/// technique runnable through the full matrix, save/load and lint paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechniqueSpec {
    /// Stable wire name (figure label, cell-key component, persist/codec
    /// token). See the module docs for the stability rules.
    pub name: &'static str,
    /// The compiler pass the technique needs, if any, configured for the
    /// paper's Table 1 machine. Sweeps retarget it per machine via
    /// [`PassConfig::retargeted`].
    pub pass_config: Option<PassConfig>,
    /// The simulator resize policy the technique runs with.
    pub resize_policy: ResizePolicy,
    /// The wakeup accounting scheme used when turning activity into energy.
    pub wakeup_scheme: WakeupScheme,
    /// `true` if the configuration can switch unused issue-queue and
    /// register-file banks off.
    pub bank_gating: bool,
    /// `true` if the technique produces the `committed_low_energy` counter.
    /// Declared here (not sniffed from the value) because the binary codec
    /// needs a *deterministic* field layout per technique: the counter is
    /// serialised if and only if the spec declares it, which keeps the six
    /// paper techniques' saved bytes unchanged.
    pub tracks_low_energy: bool,
}

impl TechniqueSpec {
    /// The built-in seed set, in the paper's figure order. Index = the
    /// `Technique` each one resolves to, so this order is load-bearing (see
    /// the module docs).
    fn builtins() -> Vec<TechniqueSpec> {
        vec![
            // The unmanaged processor: full 80-entry queue, every entry
            // woken on every broadcast. All savings normalise against this.
            TechniqueSpec {
                name: "baseline",
                pass_config: None,
                resize_policy: ResizePolicy::Fixed,
                wakeup_scheme: WakeupScheme::Full,
                bank_gating: false,
                tracks_low_energy: false,
            },
            // Folegnani & González's wakeup gating of empty entries — the
            // `nonEmpty` bar of Figure 8. Timing identical to baseline.
            TechniqueSpec {
                name: "nonEmpty",
                pass_config: None,
                resize_policy: ResizePolicy::Fixed,
                wakeup_scheme: WakeupScheme::NonEmptyOnly,
                bank_gating: false,
                tracks_low_energy: false,
            },
            // The paper's base technique (§5.2): compiler analysis
            // communicated via special NOOPs.
            TechniqueSpec {
                name: "noop",
                pass_config: Some(PassConfig::noop_insertion()),
                resize_policy: ResizePolicy::SoftwareHint,
                wakeup_scheme: WakeupScheme::Gated,
                bank_gating: true,
                tracks_low_energy: false,
            },
            // The *Extension* technique (§5.3): the same analysis carried by
            // tags on existing instructions.
            TechniqueSpec {
                name: "extension",
                pass_config: Some(PassConfig::tagging()),
                resize_policy: ResizePolicy::SoftwareHint,
                wakeup_scheme: WakeupScheme::Gated,
                bank_gating: true,
                tracks_low_energy: false,
            },
            // The *Improved* technique (§5.3): Extension plus
            // inter-procedural functional-unit contention analysis.
            TechniqueSpec {
                name: "improved",
                pass_config: Some(PassConfig::improved()),
                resize_policy: ResizePolicy::SoftwareHint,
                wakeup_scheme: WakeupScheme::Gated,
                bank_gating: true,
                tracks_low_energy: false,
            },
            // The hardware comparator: Abella & González's adaptive issue
            // queue + ROB (IqRob64), `abella` in the paper's figures.
            TechniqueSpec {
                name: "abella",
                pass_config: None,
                resize_policy: ResizePolicy::Adaptive(AdaptiveConfig::iqrob64()),
                wakeup_scheme: WakeupScheme::Gated,
                bank_gating: true,
                tracks_low_energy: false,
            },
            // Way-memoization of the L1 D-cache (Ishihara & Fallah, see
            // PAPERS.md): a pure cache-hierarchy technique — the pipeline
            // runs exactly the baseline configuration and the savings are
            // computed at reporting time from `dcache_accesses`/`misses`
            // (see `sdiq_power::way_memo`).
            TechniqueSpec {
                name: "way-memo",
                pass_config: None,
                resize_policy: ResizePolicy::Fixed,
                wakeup_scheme: WakeupScheme::Full,
                bank_gating: false,
                tracks_low_energy: false,
            },
            // The profiled low-energy instruction encoding (Sleeba et al.,
            // see PAPERS.md): a compiler-directed re-encoding of loop-block
            // instructions, counted per commit and priced at reporting time
            // (see `sdiq_power::low_energy`).
            TechniqueSpec {
                name: "lowen-isa",
                pass_config: Some(PassConfig::low_energy_encoding()),
                resize_policy: ResizePolicy::Fixed,
                wakeup_scheme: WakeupScheme::Full,
                bank_gating: false,
                tracks_low_energy: true,
            },
        ]
    }
}

/// The registry: a process-wide, append-only table of [`TechniqueSpec`]s,
/// self-seeded with the built-ins on first touch. A handle type — all state
/// lives in one `OnceLock`, so `TechniqueRegistry` is free to construct.
#[derive(Debug, Clone, Copy, Default)]
pub struct TechniqueRegistry;

/// Why a [`TechniqueRegistry::register`] call was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The wire name is already taken (names are forever; see the module
    /// docs for the stability rules).
    DuplicateName(String),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateName(name) => {
                write!(f, "technique name `{name}` is already registered")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

fn registry() -> &'static RwLock<Vec<TechniqueSpec>> {
    static REGISTRY: OnceLock<RwLock<Vec<TechniqueSpec>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(TechniqueSpec::builtins()))
}

/// Read access that survives a poisoned lock: the registry is append-only
/// data, so a panic mid-`register` cannot leave it torn.
fn read_registry() -> RwLockReadGuard<'static, Vec<TechniqueSpec>> {
    match registry().read() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl TechniqueRegistry {
    /// Registers a new technique, returning its handle. The spec's `name`
    /// must not collide with any registered name. Registration order is the
    /// iteration order of [`Technique::all`] (and therefore of suite and
    /// figure output) — append-only, never reordered.
    pub fn register(spec: TechniqueSpec) -> Result<Technique, RegistryError> {
        let mut guard = match registry().write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        if guard.iter().any(|existing| existing.name == spec.name) {
            return Err(RegistryError::DuplicateName(spec.name.to_string()));
        }
        assert!(
            guard.len() <= usize::from(u16::MAX),
            "technique registry full"
        );
        guard.push(spec);
        Ok(Technique((guard.len() - 1) as u16))
    }

    /// Every registered technique, in registration order.
    pub fn all() -> Vec<Technique> {
        (0..read_registry().len() as u16).map(Technique).collect()
    }

    /// The wire names of every registered technique, in registration order.
    pub fn names() -> Vec<&'static str> {
        read_registry().iter().map(|spec| spec.name).collect()
    }

    /// Looks a technique up by wire name.
    pub fn lookup(name: &str) -> Option<Technique> {
        read_registry()
            .iter()
            .position(|spec| spec.name == name)
            .map(|index| Technique(index as u16))
    }
}

/// One registered technique — a cheap handle into the
/// [`TechniqueRegistry`]. The six paper techniques are the associated
/// constants below; further techniques come from
/// [`TechniqueRegistry::register`].
///
/// `Ord` is registration order, which for the built-ins is the paper's
/// figure order — [`Suite`](crate::Suite) relies on this for stable
/// summary ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Technique(u16);

#[allow(non_upper_case_globals)]
impl Technique {
    /// The unmanaged processor every savings figure normalises against.
    pub const Baseline: Technique = Technique(0);
    /// Folegnani & González's wakeup gating of empty entries.
    pub const NonEmpty: Technique = Technique(1);
    /// The paper's base technique (§5.2): special NOOP insertion.
    pub const Noop: Technique = Technique(2);
    /// The *Extension* technique (§5.3): tags on existing instructions.
    pub const Extension: Technique = Technique(3);
    /// The *Improved* technique (§5.3): Extension + inter-procedural FU.
    pub const Improved: Technique = Technique(4);
    /// Abella & González's adaptive issue queue + ROB (IqRob64).
    pub const Abella: Technique = Technique(5);
    /// Way-memoization of the L1 D-cache (Ishihara & Fallah).
    pub const WayMemo: Technique = Technique(6);
    /// The profiled low-energy instruction encoding (Sleeba et al.).
    pub const LowenIsa: Technique = Technique(7);
}

impl Technique {
    /// Every registered technique, in registration order (the paper's six,
    /// then `way-memo` and `lowen-isa`, then anything registered at run
    /// time). The replacement for the old `Technique::ALL` constant.
    pub fn all() -> Vec<Technique> {
        TechniqueRegistry::all()
    }

    /// The techniques that appear in the comparison figures: everything
    /// except the baseline itself.
    pub fn evaluated() -> Vec<Technique> {
        Technique::all()
            .into_iter()
            .filter(|&t| t != Technique::Baseline)
            .collect()
    }

    /// The full descriptor this handle resolves to.
    pub fn spec(&self) -> TechniqueSpec {
        read_registry()[usize::from(self.0)]
    }

    /// Short label used in figures, tables and every wire format.
    pub fn name(&self) -> &'static str {
        self.spec().name
    }

    /// Looks a technique up by its figure label (the inverse of
    /// [`Technique::name`]).
    pub fn from_name(name: &str) -> Option<Technique> {
        TechniqueRegistry::lookup(name)
    }

    /// The compiler pass configuration this technique needs, if any, for
    /// the paper's Table 1 machine.
    pub fn pass_config(&self) -> Option<PassConfig> {
        self.spec().pass_config
    }

    /// The compiler pass configuration this technique needs, if any,
    /// retargeted at an arbitrary machine ([`PassConfig::retargeted`] owns
    /// the width-dependent details). Sweeps over issue-queue geometry use
    /// this so the software techniques compile against the capacity they
    /// will actually run on; [`crate::Experiment::run_program`] uses it
    /// with the experiment's own machine for the same reason.
    pub fn pass_config_for(
        &self,
        widths: sdiq_isa::MachineWidths,
        fu_counts: sdiq_isa::FuCounts,
    ) -> Option<PassConfig> {
        self.pass_config()
            .map(|base| base.retargeted(widths, fu_counts))
    }

    /// The simulator resize policy this technique runs with.
    pub fn resize_policy(&self) -> ResizePolicy {
        self.spec().resize_policy
    }

    /// The wakeup accounting scheme used when turning activity into energy.
    pub fn wakeup_scheme(&self) -> WakeupScheme {
        self.spec().wakeup_scheme
    }

    /// `true` if the technique runs the compiler pass.
    pub fn is_software(&self) -> bool {
        self.pass_config().is_some()
    }

    /// `true` if the configuration can switch unused issue-queue and
    /// register-file banks off. The unmanaged baseline and the pure
    /// wakeup-gating `nonEmpty` configuration cannot; every resizing scheme
    /// (software or adaptive hardware) can.
    pub fn bank_gating(&self) -> bool {
        self.spec().bank_gating
    }

    /// `true` if the technique's runs carry the `committed_low_energy`
    /// counter (and therefore serialise it — see
    /// [`TechniqueSpec::tracks_low_energy`]).
    pub fn tracks_low_energy(&self) -> bool {
        self.spec().tracks_low_energy
    }
}

impl fmt::Display for Technique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_compiler::EmitKind;

    // NOTE for every test below: the registry is process-global and tests
    // run in parallel, so tests must never assert a *total* registry count
    // and runtime registrations must use names unique to the test.

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            Technique::all().iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), Technique::all().len());
    }

    /// Satellite: registration order is the wire/summary order. Pinning the
    /// exact prefix means re-registration (or reordering the seed set) can
    /// never silently reorder persisted suite summaries.
    #[test]
    fn registration_order_is_stable() {
        let names: Vec<_> = Technique::all().iter().take(8).map(|t| t.name()).collect();
        assert_eq!(
            names,
            vec![
                "baseline",
                "nonEmpty",
                "noop",
                "extension",
                "improved",
                "abella",
                "way-memo",
                "lowen-isa",
            ]
        );
        // The associated constants resolve to exactly those positions.
        assert_eq!(Technique::Baseline.name(), "baseline");
        assert_eq!(Technique::NonEmpty.name(), "nonEmpty");
        assert_eq!(Technique::Noop.name(), "noop");
        assert_eq!(Technique::Extension.name(), "extension");
        assert_eq!(Technique::Improved.name(), "improved");
        assert_eq!(Technique::Abella.name(), "abella");
        assert_eq!(Technique::WayMemo.name(), "way-memo");
        assert_eq!(Technique::LowenIsa.name(), "lowen-isa");
        // And Ord follows registration order.
        let mut sorted = Technique::all();
        sorted.sort();
        assert_eq!(sorted, Technique::all());
    }

    #[test]
    fn software_techniques_have_the_right_pass_configs() {
        assert!(Technique::Baseline.pass_config().is_none());
        assert!(Technique::NonEmpty.pass_config().is_none());
        assert!(Technique::Abella.pass_config().is_none());
        assert!(Technique::WayMemo.pass_config().is_none());
        assert_eq!(
            Technique::Noop.pass_config().unwrap().emit,
            EmitKind::NoopInsertion
        );
        assert_eq!(
            Technique::Extension.pass_config().unwrap().emit,
            EmitKind::Tagging
        );
        let improved = Technique::Improved.pass_config().unwrap();
        assert_eq!(improved.emit, EmitKind::Tagging);
        assert!(improved.interprocedural_fu);
        assert!(
            !Technique::Extension
                .pass_config()
                .unwrap()
                .interprocedural_fu
        );
        let lowen = Technique::LowenIsa.pass_config().unwrap();
        assert!(lowen.low_energy);
        assert!(!lowen.interprocedural_fu);
    }

    #[test]
    fn policies_and_schemes_match_the_paper() {
        assert_eq!(Technique::Baseline.wakeup_scheme(), WakeupScheme::Full);
        assert_eq!(
            Technique::NonEmpty.wakeup_scheme(),
            WakeupScheme::NonEmptyOnly
        );
        assert_eq!(Technique::Noop.wakeup_scheme(), WakeupScheme::Gated);
        assert_eq!(Technique::Abella.wakeup_scheme(), WakeupScheme::Gated);
        assert!(matches!(
            Technique::Abella.resize_policy(),
            ResizePolicy::Adaptive(_)
        ));
        assert!(matches!(
            Technique::Extension.resize_policy(),
            ResizePolicy::SoftwareHint
        ));
        assert!(matches!(
            Technique::NonEmpty.resize_policy(),
            ResizePolicy::Fixed
        ));
        assert!(Technique::Improved.is_software());
        assert!(!Technique::Abella.is_software());
        assert!(!Technique::Baseline.bank_gating());
        assert!(!Technique::NonEmpty.bank_gating());
        assert!(Technique::Noop.bank_gating());
        assert!(Technique::Abella.bank_gating());
    }

    /// The two new techniques deliberately run the *baseline* pipeline
    /// configuration: their savings live in the cache hierarchy / the
    /// instruction encoding, not in issue-queue resizing.
    #[test]
    fn new_techniques_run_the_baseline_pipeline_shape() {
        for t in [Technique::WayMemo, Technique::LowenIsa] {
            assert!(matches!(t.resize_policy(), ResizePolicy::Fixed));
            assert_eq!(t.wakeup_scheme(), WakeupScheme::Full);
            assert!(!t.bank_gating());
        }
        assert!(!Technique::WayMemo.is_software());
        assert!(Technique::LowenIsa.is_software());
        assert!(!Technique::WayMemo.tracks_low_energy());
        assert!(Technique::LowenIsa.tracks_low_energy());
        // No built-in paper technique tracks the counter — its presence
        // would change their saved bytes.
        for t in [
            Technique::Baseline,
            Technique::NonEmpty,
            Technique::Noop,
            Technique::Extension,
            Technique::Improved,
            Technique::Abella,
        ] {
            assert!(!t.tracks_low_energy());
        }
    }

    #[test]
    fn registering_a_duplicate_name_is_rejected() {
        let err = TechniqueRegistry::register(TechniqueSpec {
            name: "baseline",
            ..Technique::WayMemo.spec()
        })
        .unwrap_err();
        assert_eq!(err, RegistryError::DuplicateName("baseline".to_string()));
    }

    #[test]
    fn runtime_registration_yields_a_working_handle() {
        let spec = TechniqueSpec {
            name: "test-registry-smoke",
            pass_config: None,
            resize_policy: ResizePolicy::Fixed,
            wakeup_scheme: WakeupScheme::NonEmptyOnly,
            bank_gating: false,
            tracks_low_energy: false,
        };
        let t = TechniqueRegistry::register(spec).unwrap();
        assert_eq!(t.name(), "test-registry-smoke");
        assert_eq!(Technique::from_name("test-registry-smoke"), Some(t));
        assert_eq!(t.wakeup_scheme(), WakeupScheme::NonEmptyOnly);
        assert!(Technique::all().contains(&t));
        assert!(Technique::evaluated().contains(&t));
        // A second registration under the same name must fail.
        assert!(TechniqueRegistry::register(spec).is_err());
    }
}
