//! Chrome trace-event export of [`sdiq_obs`] spans.
//!
//! `repro --trace <path>` drains the observability collector at the end
//! of a run and writes the events in the Chrome trace-event JSON format
//! (the `{"traceEvents": [...]}` flavour), loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. The file is built
//! with the workspace's one JSON codec ([`crate::persist::Json`]) — no
//! new serialisation machinery, and the exporter's output is parseable
//! by its own parser, which the property tests exploit.
//!
//! Layout: one `pid` lane per process (0 = the coordinator / local
//! process; remote workers are re-laned to `worker index + 1` before
//! injection), one `tid` lane per recording thread, a `process_name`
//! metadata event per pid so Perfetto labels the tracks. Duration spans
//! are emitted as balanced `B`/`E` pairs (properly nested per thread —
//! spans are RAII guards, so nesting holds by construction and the
//! emitter re-establishes it by sorting), instants as thread-scoped `i`
//! events. Timestamps are microseconds (`f64`) as the format requires.

use crate::persist::Json;
use sdiq_obs::TraceEvent;
use std::collections::BTreeMap;

/// Nanoseconds → the format's microsecond timestamps.
fn micros(nanos: u64) -> Json {
    Json::of_f64(nanos as f64 / 1000.0)
}

fn args_json(args: &[(String, String)]) -> Json {
    Json::Obj(
        args.iter()
            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
            .collect(),
    )
}

/// One trace-event record. `ph` is the event phase (`B`, `E`, `i`, `M`).
fn event_json(
    ph: &str,
    name: &str,
    cat: &str,
    pid: u64,
    tid: u64,
    ts: Json,
    extra: Vec<(String, Json)>,
) -> Json {
    let mut fields = vec![
        ("name".to_string(), Json::Str(name.to_string())),
        ("cat".to_string(), Json::Str(cat.to_string())),
        ("ph".to_string(), Json::Str(ph.to_string())),
        ("ts".to_string(), ts),
        ("pid".to_string(), Json::of_u64(pid)),
        ("tid".to_string(), Json::of_u64(tid)),
    ];
    fields.extend(extra);
    Json::Obj(fields)
}

/// Builds the Chrome trace-event document for `events`.
///
/// Events are grouped by `(pid, tid)` lane; within a lane, spans are
/// sorted by start time ascending and duration descending (so a parent
/// that opened in the same clock tick as its child still comes first)
/// and emitted as a properly nested `B`/`E` sequence via a span stack.
/// A span that would overlap its stack parent without nesting inside it
/// (possible only for injected foreign events — the in-process recorder
/// is RAII and cannot produce one) is clamped to its parent's end so
/// the output stays well-formed.
pub fn chrome_trace_json(events: &[TraceEvent]) -> Json {
    // Lane map: (pid, tid) → that lane's events, in arrival order.
    let mut lanes: BTreeMap<(u64, u64), Vec<&TraceEvent>> = BTreeMap::new();
    let mut pids: BTreeMap<u64, ()> = BTreeMap::new();
    for event in events {
        lanes.entry((event.pid, event.tid)).or_default().push(event);
        pids.entry(event.pid).or_insert(());
    }

    let mut out: Vec<Json> = Vec::with_capacity(events.len() * 2 + pids.len());

    // Process-name metadata first, one per pid, so viewers label tracks.
    for (&pid, ()) in &pids {
        let name = if pid == 0 {
            "coordinator".to_string()
        } else {
            format!("worker-{pid}")
        };
        out.push(event_json(
            "M",
            "process_name",
            "__metadata",
            pid,
            0,
            Json::of_f64(0.0),
            vec![(
                "args".to_string(),
                Json::Obj(vec![("name".to_string(), Json::Str(name))]),
            )],
        ));
    }

    for ((pid, tid), mut lane) in lanes {
        // Start ascending; on ties the longer span is the parent.
        lane.sort_by(|a, b| {
            a.start_nanos
                .cmp(&b.start_nanos)
                .then(b.dur_nanos.unwrap_or(0).cmp(&a.dur_nanos.unwrap_or(0)))
        });
        // The stack holds the end times of currently open spans.
        let mut open: Vec<u64> = Vec::new();
        for event in lane {
            let start = event.start_nanos;
            while open.last().is_some_and(|&end| end <= start) {
                let end = open.pop().unwrap_or(start);
                out.push(event_json("E", "", "", pid, tid, micros(end), Vec::new()));
            }
            match event.dur_nanos {
                None => out.push(event_json(
                    "i",
                    &event.name,
                    &event.cat,
                    pid,
                    tid,
                    micros(start),
                    vec![
                        ("s".to_string(), Json::Str("t".to_string())),
                        ("args".to_string(), args_json(&event.args)),
                    ],
                )),
                Some(dur) => {
                    let mut end = start.saturating_add(dur);
                    // Clamp foreign non-nesting spans to the parent.
                    if let Some(&parent_end) = open.last() {
                        end = end.min(parent_end);
                    }
                    out.push(event_json(
                        "B",
                        &event.name,
                        &event.cat,
                        pid,
                        tid,
                        micros(start),
                        vec![("args".to_string(), args_json(&event.args))],
                    ));
                    open.push(end);
                }
            }
        }
        while let Some(end) = open.pop() {
            out.push(event_json("E", "", "", pid, tid, micros(end), Vec::new()));
        }
    }

    Json::Obj(vec![("traceEvents".to_string(), Json::Arr(out))])
}

/// Renders [`chrome_trace_json`] to text.
pub fn render_chrome_trace(events: &[TraceEvent]) -> String {
    let mut text = String::new();
    chrome_trace_json(events).render(&mut text);
    text.push('\n');
    text
}

/// Writes the trace document for `events` to `path`.
pub fn write_chrome_trace(
    path: impl AsRef<std::path::Path>,
    events: &[TraceEvent],
) -> std::io::Result<()> {
    std::fs::write(path, render_chrome_trace(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist;

    fn span(pid: u64, tid: u64, start: u64, dur: u64, name: &str) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: "test".to_string(),
            pid,
            tid,
            start_nanos: start,
            dur_nanos: Some(dur),
            args: vec![("k".to_string(), "v".to_string())],
        }
    }

    fn instant(pid: u64, tid: u64, start: u64, name: &str) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: "test".to_string(),
            pid,
            tid,
            start_nanos: start,
            dur_nanos: None,
            args: Vec::new(),
        }
    }

    /// Phases of the rendered document, per (pid, tid) lane.
    fn phases(doc: &Json) -> Vec<(u64, u64, String)> {
        let events = doc.get("traceEvents").unwrap().arr().unwrap();
        events
            .iter()
            .map(|e| {
                (
                    e.get("pid").unwrap().u64().unwrap(),
                    e.get("tid").unwrap().u64().unwrap(),
                    e.get("ph").unwrap().str().unwrap().to_string(),
                )
            })
            .collect()
    }

    #[test]
    fn renders_balanced_nested_pairs_that_reparse() {
        let events = vec![
            span(0, 1, 0, 100, "outer"),
            span(0, 1, 10, 20, "child-a"),
            span(0, 1, 40, 30, "child-b"),
            instant(0, 1, 50, "mark"),
            span(1, 1, 5, 10, "worker-span"),
        ];
        let text = render_chrome_trace(&events);
        let doc = persist::parse(text.trim_end()).expect("exporter output parses");
        let mut depth: BTreeMap<(u64, u64), i64> = BTreeMap::new();
        for (pid, tid, ph) in phases(&doc) {
            let d = depth.entry((pid, tid)).or_insert(0);
            match ph.as_str() {
                "B" => *d += 1,
                "E" => {
                    *d -= 1;
                    assert!(*d >= 0, "E without matching B in lane {pid}/{tid}");
                }
                "i" => assert!(*d >= 1, "the instant is inside its parent span"),
                "M" => {}
                other => panic!("unexpected phase {other}"),
            }
        }
        for ((pid, tid), d) in depth {
            assert_eq!(d, 0, "lane {pid}/{tid} left {d} spans open");
        }
    }

    #[test]
    fn process_metadata_labels_coordinator_and_workers() {
        let events = vec![span(0, 1, 0, 1, "a"), span(2, 1, 0, 1, "b")];
        let doc = chrome_trace_json(&events);
        let rendered = {
            let mut s = String::new();
            doc.render(&mut s);
            s
        };
        assert!(rendered.contains("\"coordinator\""));
        assert!(rendered.contains("\"worker-2\""));
    }

    #[test]
    fn equal_start_ties_put_the_longer_span_outside() {
        // Parent and child open in the same clock tick: the longer span
        // must be the B that comes first.
        let events = vec![span(0, 1, 0, 10, "child"), span(0, 1, 0, 100, "parent")];
        let doc = chrome_trace_json(&events);
        let names: Vec<String> = doc
            .get("traceEvents")
            .unwrap()
            .arr()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").unwrap().str().unwrap() == "B")
            .map(|e| e.get("name").unwrap().str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["parent".to_string(), "child".to_string()]);
    }
}
