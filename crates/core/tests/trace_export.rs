//! Property tests for the Chrome trace exporter.
//!
//! The exporter's output contract: whatever mix of spans and instants is
//! drained (or injected from remote workers — including overlapping
//! foreign spans the in-process RAII recorder could never produce), the
//! rendered document must (a) parse with the workspace's own JSON parser
//! and (b) contain a balanced, properly nested `B`/`E` sequence per
//! `(pid, tid)` lane. Perfetto tolerates less than that; we don't.

// Integration tests are exempt from the workspace unwrap/expect denial
// (the crate-root cfg_attr does not reach separately compiled test crates).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use sdiq_core::persist::{self, Json};
use sdiq_core::trace::render_chrome_trace;
use sdiq_obs::TraceEvent;
use std::collections::BTreeMap;

/// Small lanes and tightly packed timestamps so spans genuinely collide:
/// same-tick starts, containment, and (for injected events) partial
/// overlaps that force the exporter's clamping path.
fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (
        (0u64..3, 0u64..3, 0u64..64),
        prop_oneof![(0u8..1u8).prop_map(|_| None), (0u64..48).prop_map(Some),],
        prop::collection::vec(
            (
                (97u8..123u8).prop_map(|c| (c as char).to_string()),
                (97u8..123u8).prop_map(|c| (c as char).to_string()),
            ),
            0..2,
        ),
    )
        .prop_map(|((pid, tid, start_nanos), dur_nanos, args)| TraceEvent {
            name: "ev".to_string(),
            cat: "prop".to_string(),
            pid,
            tid,
            start_nanos,
            dur_nanos,
            args,
        })
}

/// `(pid, tid, ph)` of every record in the parsed document, in order.
fn phases(doc: &Json) -> Vec<(u64, u64, String)> {
    doc.get("traceEvents")
        .unwrap()
        .arr()
        .unwrap()
        .iter()
        .map(|e| {
            (
                e.get("pid").unwrap().u64().unwrap(),
                e.get("tid").unwrap().u64().unwrap(),
                e.get("ph").unwrap().str().unwrap().to_string(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn exporter_output_reparses_with_the_workspace_parser(
        events in prop::collection::vec(arb_event(), 0..24),
    ) {
        let text = render_chrome_trace(&events);
        let doc = persist::parse(text.trim_end());
        prop_assert!(doc.is_ok(), "exporter output failed to parse: {:?}", doc.err());
        let doc = doc.unwrap();
        let records = doc.get("traceEvents").unwrap().arr().unwrap();
        // One span → one B + one E; one instant → one i; plus one
        // process_name metadata record per distinct pid.
        let spans = events.iter().filter(|e| e.dur_nanos.is_some()).count();
        let instants = events.len() - spans;
        let pids: std::collections::BTreeSet<u64> = events.iter().map(|e| e.pid).collect();
        prop_assert_eq!(records.len(), spans * 2 + instants + pids.len());
    }

    #[test]
    fn span_pairs_balance_and_nest_per_lane(
        events in prop::collection::vec(arb_event(), 0..24),
    ) {
        let text = render_chrome_trace(&events);
        let doc = persist::parse(text.trim_end()).unwrap();
        let mut depth: BTreeMap<(u64, u64), i64> = BTreeMap::new();
        for (pid, tid, ph) in phases(&doc) {
            let d = depth.entry((pid, tid)).or_insert(0);
            match ph.as_str() {
                "B" => *d += 1,
                "E" => {
                    *d -= 1;
                    prop_assert!(*d >= 0, "E without a matching B in lane {}/{}", pid, tid);
                }
                "i" | "M" => {}
                other => return Err(format!("unexpected phase {other}")),
            }
        }
        for ((pid, tid), d) in depth {
            prop_assert!(d == 0, "lane {}/{} left spans open", pid, tid);
        }
    }

    #[test]
    fn end_timestamps_never_precede_their_begin(
        events in prop::collection::vec(arb_event(), 0..24),
    ) {
        // Within a lane, walk the B/E structure with a stack of begin
        // timestamps: every E must close at or after its B (clamping may
        // shorten foreign spans, never invert them), and the B sequence
        // itself must be monotonically non-decreasing.
        let text = render_chrome_trace(&events);
        let doc = persist::parse(text.trim_end()).unwrap();
        let mut stacks: BTreeMap<(u64, u64), Vec<f64>> = BTreeMap::new();
        let mut last_begin: BTreeMap<(u64, u64), f64> = BTreeMap::new();
        for record in doc.get("traceEvents").unwrap().arr().unwrap() {
            let pid = record.get("pid").unwrap().u64().unwrap();
            let tid = record.get("tid").unwrap().u64().unwrap();
            let ph = record.get("ph").unwrap().str().unwrap();
            let ts = record.get("ts").unwrap().f64().unwrap();
            match ph {
                "B" => {
                    let prev = last_begin.entry((pid, tid)).or_insert(f64::NEG_INFINITY);
                    prop_assert!(ts >= *prev, "B timestamps went backwards in a lane");
                    *prev = ts;
                    stacks.entry((pid, tid)).or_default().push(ts);
                }
                "E" => {
                    let begin = stacks.get_mut(&(pid, tid)).and_then(Vec::pop).unwrap();
                    prop_assert!(ts >= begin, "span closed before it opened");
                }
                _ => {}
            }
        }
    }
}
