//! Per-procedure control-flow graph.

use sdiq_isa::{BlockId, Procedure};
use std::collections::HashSet;

/// Control-flow graph of one procedure.
///
/// Blocks are indexed by their [`BlockId`]; unreachable blocks are kept in
/// the successor/predecessor tables (they simply have no predecessors and do
/// not appear in the reverse post-order).
#[derive(Debug, Clone)]
pub struct Cfg {
    entry: BlockId,
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_index: Vec<Option<usize>>,
}

impl Cfg {
    /// Builds the CFG of `proc` from the successor structure of its blocks.
    pub fn build(proc: &Procedure) -> Self {
        let n = proc.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (bid, block) in proc.iter_blocks() {
            let ss = block.successors();
            for s in &ss {
                preds[s.0].push(bid);
            }
            succs[bid.0] = ss;
        }

        // Reverse post-order over reachable blocks via iterative DFS.
        let mut visited = vec![false; n];
        let mut postorder = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(proc.entry, 0)];
        visited[proc.entry.0] = true;
        while let Some(&mut (block, ref mut next)) = stack.last_mut() {
            if *next < succs[block.0].len() {
                let succ = succs[block.0][*next];
                *next += 1;
                if !visited[succ.0] {
                    visited[succ.0] = true;
                    stack.push((succ, 0));
                }
            } else {
                postorder.push(block);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = postorder.into_iter().rev().collect();
        let mut rpo_index = vec![None; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.0] = Some(i);
        }

        Cfg {
            entry: proc.entry,
            succs,
            preds,
            rpo,
            rpo_index,
        }
    }

    /// The procedure's entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Number of blocks (reachable or not).
    pub fn block_count(&self) -> usize {
        self.succs.len()
    }

    /// Successors of `block`.
    pub fn succs(&self, block: BlockId) -> &[BlockId] {
        &self.succs[block.0]
    }

    /// Predecessors of `block`.
    pub fn preds(&self, block: BlockId) -> &[BlockId] {
        &self.preds[block.0]
    }

    /// Reverse post-order over reachable blocks (entry first).
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `block` in the reverse post-order, if reachable.
    pub fn rpo_index(&self, block: BlockId) -> Option<usize> {
        self.rpo_index[block.0]
    }

    /// `true` if `block` is reachable from the entry.
    pub fn is_reachable(&self, block: BlockId) -> bool {
        self.rpo_index[block.0].is_some()
    }

    /// Blocks reachable from `from` without passing *through* any block in
    /// `barrier` (the starting block is always included, even if it is a
    /// barrier). Used by natural-loop body computation and DAG-region
    /// formation.
    pub fn reachable_avoiding(
        &self,
        from: BlockId,
        barrier: &HashSet<BlockId>,
    ) -> HashSet<BlockId> {
        let mut seen = HashSet::new();
        let mut stack = vec![from];
        seen.insert(from);
        while let Some(b) = stack.pop() {
            if b != from && barrier.contains(&b) {
                continue;
            }
            for &s in self.succs(b) {
                if seen.insert(s) {
                    stack.push(s);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_isa::builder::ProgramBuilder;
    use sdiq_isa::reg::int_reg;
    use sdiq_isa::Program;

    /// Diamond CFG: entry → (left | right) → join → exit.
    fn diamond() -> (Program, usize) {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let left = p.block();
            let right = p.block();
            let join = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 5);
                bb.bgt(int_reg(1), 3, left, right);
            });
            p.with_block(left, |bb| {
                bb.addi(int_reg(2), int_reg(1), 1);
                bb.jump(join);
            });
            p.with_block(right, |bb| {
                bb.addi(int_reg(2), int_reg(1), 2);
                bb.jump(join);
            });
            p.with_block(join, |bb| {
                bb.ret();
            });
            p.set_entry(entry);
        }
        (b.finish(main).unwrap(), 4)
    }

    #[test]
    fn diamond_has_expected_edges() {
        let (program, n) = diamond();
        let cfg = Cfg::build(program.proc(program.entry));
        assert_eq!(cfg.block_count(), n);
        assert_eq!(cfg.succs(BlockId(0)).len(), 2);
        assert_eq!(cfg.preds(BlockId(3)).len(), 2);
        assert_eq!(cfg.preds(BlockId(0)).len(), 0);
    }

    #[test]
    fn rpo_starts_at_entry_and_respects_topology() {
        let (program, _) = diamond();
        let cfg = Cfg::build(program.proc(program.entry));
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0));
        // The join block must come after both branches.
        let join_pos = cfg.rpo_index(BlockId(3)).unwrap();
        assert!(join_pos > cfg.rpo_index(BlockId(1)).unwrap());
        assert!(join_pos > cfg.rpo_index(BlockId(2)).unwrap());
    }

    #[test]
    fn unreachable_blocks_are_flagged() {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let orphan = p.block();
            p.with_block(entry, |bb| {
                bb.ret();
            });
            p.with_block(orphan, |bb| {
                bb.ret();
            });
            p.set_entry(entry);
        }
        let program = b.finish(main).unwrap();
        let cfg = Cfg::build(program.proc(program.entry));
        assert!(cfg.is_reachable(BlockId(0)));
        assert!(!cfg.is_reachable(BlockId(1)));
        assert_eq!(cfg.reverse_postorder().len(), 1);
    }

    #[test]
    fn reachable_avoiding_respects_barriers() {
        let (program, _) = diamond();
        let cfg = Cfg::build(program.proc(program.entry));
        let mut barrier = HashSet::new();
        barrier.insert(BlockId(1));
        barrier.insert(BlockId(2));
        let reach = cfg.reachable_avoiding(BlockId(0), &barrier);
        // We can reach the branch blocks themselves but not through them to
        // the join block.
        assert!(reach.contains(&BlockId(1)));
        assert!(reach.contains(&BlockId(2)));
        assert!(!reach.contains(&BlockId(3)));
    }
}
