//! Generic iterative dataflow analysis over the CFG.
//!
//! The verifier and the compiler pass both need the classic bit-vector
//! analyses: liveness for dead-value reasoning, reaching definitions for
//! def-use chains, definite assignment for def-before-use checking, and
//! upward-exposed operands for loop-carried dependence detection. Rather
//! than each client hand-rolling its own fixpoint loop, this module solves
//! any monotone forward or backward problem with a worklist over the
//! [`Cfg`], and provides those four analyses as reusable instances over the
//! flat 64-register architectural file (`r0..r31`, `f0..f31` — see
//! [`sdiq_isa::ArchReg::flat_index`]).
//!
//! The straight-line helpers at the bottom ([`block_locals`],
//! [`sequence_def_chains`]) are the shared use/def machinery the
//! [`crate::ddg`] construction and the compiler's block/loop analyses are
//! built on.

use crate::cfg::Cfg;
use sdiq_isa::reg::{fp_reg, int_reg, NUM_ARCH_INT_REGS};
use sdiq_isa::{ArchReg, BlockId, Instruction, Procedure};
use std::collections::{HashMap, VecDeque};

/// Maps a flat register index (`0..64`) back to its [`ArchReg`].
///
/// Inverse of [`ArchReg::flat_index`].
///
/// # Panics
///
/// Panics if `flat >= ArchReg::flat_count()`.
pub fn reg_from_flat(flat: usize) -> ArchReg {
    let ints = NUM_ARCH_INT_REGS as usize;
    if flat < ints {
        int_reg(flat as u8)
    } else {
        fp_reg((flat - ints) as u8)
    }
}

/// A set of architectural registers over both classes, packed into one
/// 64-bit word (bit `i` = the register with flat index `i`).
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct RegSet(u64);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);

    /// The full set (every architectural register of both classes).
    pub const FULL: RegSet = RegSet(u64::MAX);

    /// Inserts a register.
    pub fn insert(&mut self, reg: ArchReg) {
        self.0 |= 1u64 << reg.flat_index();
    }

    /// Removes a register.
    pub fn remove(&mut self, reg: ArchReg) {
        self.0 &= !(1u64 << reg.flat_index());
    }

    /// Membership test.
    pub fn contains(&self, reg: ArchReg) -> bool {
        self.0 & (1u64 << reg.flat_index()) != 0
    }

    /// Set union, in place.
    pub fn union_with(&mut self, other: &RegSet) {
        self.0 |= other.0;
    }

    /// Set intersection, in place.
    pub fn intersect_with(&mut self, other: &RegSet) {
        self.0 &= other.0;
    }

    /// `self \ other` as a new set.
    pub fn minus(&self, other: &RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// Number of registers in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` if no register is in the set.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates the members in flat-index order.
    pub fn iter(&self) -> impl Iterator<Item = ArchReg> + '_ {
        let bits = self.0;
        (0..ArchReg::flat_count()).filter_map(move |i| {
            if bits & (1u64 << i) != 0 {
                Some(reg_from_flat(i))
            } else {
                None
            }
        })
    }
}

impl std::fmt::Debug for RegSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// A growable bit set, for dataflow domains larger than the register file
/// (e.g. one bit per definition site in [`ReachingDefs`]).
#[derive(Clone, PartialEq, Eq, Default, Debug)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set able to hold `len` elements.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Inserts element `i`.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes element `i`.
    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Set union, in place. Both sets must have the same capacity.
    pub fn union_with(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// `self \ other`, in place.
    pub fn subtract(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Iterates the members in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter_map(move |b| {
                if w & (1u64 << b) != 0 {
                    Some(wi * 64 + b)
                } else {
                    None
                }
            })
        })
    }
}

/// Direction a dataflow problem propagates facts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow along CFG edges (entry → exits).
    Forward,
    /// Facts flow against CFG edges (exits → entry).
    Backward,
}

/// A monotone dataflow problem over the CFG.
///
/// The framework guarantees termination for monotone transfer functions
/// over finite-height lattices (every provided instance is a bit-vector
/// problem, which trivially qualifies). `transfer` maps the fact at a
/// block's *input side* (entry for forward problems, exit for backward
/// ones) to its output side.
pub trait DataflowAnalysis {
    /// The lattice element.
    type Fact: Clone + PartialEq;

    /// Propagation direction.
    fn direction(&self) -> Direction;

    /// The fact at the boundary: the procedure entry for forward problems,
    /// every exit block (no successors) for backward ones.
    fn boundary(&self) -> Self::Fact;

    /// The initial (optimistic) fact for every block.
    fn top(&self) -> Self::Fact;

    /// Combines a neighbour's fact into the accumulator.
    fn meet(&self, acc: &mut Self::Fact, other: &Self::Fact);

    /// The block's transfer function.
    fn transfer(&self, block: BlockId, input: &Self::Fact) -> Self::Fact;
}

/// The fixpoint of a dataflow problem: one fact per block *entry* and one
/// per block *exit*, regardless of the problem's direction. Unreachable
/// blocks keep the `top` fact.
#[derive(Debug, Clone)]
pub struct DataflowSolution<F> {
    /// Fact holding at each block's entry, indexed by `BlockId`.
    pub entry: Vec<F>,
    /// Fact holding at each block's exit, indexed by `BlockId`.
    pub exit: Vec<F>,
}

/// Solves `analysis` to fixpoint with a worklist over the reachable blocks
/// of `cfg`, seeded in reverse post-order (forward) or post-order
/// (backward) so typical acyclic flow converges in one sweep.
pub fn solve<A: DataflowAnalysis>(cfg: &Cfg, analysis: &A) -> DataflowSolution<A::Fact> {
    let n = cfg.block_count();
    let forward = analysis.direction() == Direction::Forward;
    // `input[b]` / `output[b]` are relative to the propagation direction:
    // input = entry and output = exit for forward problems, swapped for
    // backward ones. They are re-oriented into the solution at the end.
    let mut input: Vec<A::Fact> = (0..n).map(|_| analysis.top()).collect();
    let mut output: Vec<A::Fact> = (0..n).map(|_| analysis.top()).collect();

    let order: Vec<BlockId> = if forward {
        cfg.reverse_postorder().to_vec()
    } else {
        cfg.reverse_postorder().iter().rev().copied().collect()
    };
    let mut queued = vec![false; n];
    let mut worklist: VecDeque<BlockId> = VecDeque::with_capacity(order.len());
    for &b in &order {
        queued[b.0] = true;
        worklist.push_back(b);
    }

    while let Some(b) = worklist.pop_front() {
        queued[b.0] = false;
        let deps: &[BlockId] = if forward { cfg.preds(b) } else { cfg.succs(b) };
        let at_boundary = if forward {
            b == cfg.entry()
        } else {
            cfg.succs(b).is_empty()
        };
        let mut fact = if at_boundary {
            analysis.boundary()
        } else {
            analysis.top()
        };
        for &d in deps {
            // Unreachable neighbours hold no real fact; letting their `top`
            // transfer leak in would be unsound for union problems.
            if cfg.is_reachable(d) {
                analysis.meet(&mut fact, &output[d.0]);
            }
        }
        let new_output = analysis.transfer(b, &fact);
        input[b.0] = fact;
        if new_output != output[b.0] {
            output[b.0] = new_output;
            let dependents: &[BlockId] = if forward { cfg.succs(b) } else { cfg.preds(b) };
            for &s in dependents {
                if cfg.is_reachable(s) && !queued[s.0] {
                    queued[s.0] = true;
                    worklist.push_back(s);
                }
            }
        }
    }

    if forward {
        DataflowSolution {
            entry: input,
            exit: output,
        }
    } else {
        DataflowSolution {
            entry: output,
            exit: input,
        }
    }
}

/// Per-block local register sets: the raw material of every register
/// bit-vector analysis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockLocals {
    /// Upward-exposed uses: registers read before any definition in the
    /// block (what liveness calls the `use` set).
    pub uses: RegSet,
    /// Registers the block defines.
    pub defs: RegSet,
}

/// Computes the upward-exposed-use and definition sets of a straight-line
/// instruction sequence. Hint NOOPs are transparent: they read and write
/// nothing.
pub fn block_locals(instructions: &[Instruction]) -> BlockLocals {
    let mut locals = BlockLocals::default();
    for inst in instructions {
        if inst.is_hint_noop() {
            continue;
        }
        for src in inst.sources() {
            if !locals.defs.contains(src) {
                locals.uses.insert(src);
            }
        }
        if let Some(dest) = inst.dest {
            locals.defs.insert(dest);
        }
    }
    locals
}

/// Upward-exposed operand analysis: the per-block [`BlockLocals`] of every
/// block of a procedure, indexed by `BlockId`. The `uses` sets are exactly
/// the operands whose values flow into the block from outside — for a loop
/// body, the candidates for loop-carried dependences.
pub fn upward_exposed(proc: &Procedure) -> Vec<BlockLocals> {
    proc.blocks
        .iter()
        .map(|b| block_locals(&b.instructions))
        .collect()
}

/// Live-register analysis (backward, may-union).
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Registers live at each block's entry.
    pub live_in: Vec<RegSet>,
    /// Registers live at each block's exit.
    pub live_out: Vec<RegSet>,
    /// The per-block use/def sets the fixpoint was computed from.
    pub locals: Vec<BlockLocals>,
}

impl Liveness {
    /// Runs liveness over `proc`.
    pub fn compute(proc: &Procedure, cfg: &Cfg) -> Self {
        struct Problem<'a> {
            locals: &'a [BlockLocals],
        }
        impl DataflowAnalysis for Problem<'_> {
            type Fact = RegSet;
            fn direction(&self) -> Direction {
                Direction::Backward
            }
            fn boundary(&self) -> RegSet {
                RegSet::EMPTY
            }
            fn top(&self) -> RegSet {
                RegSet::EMPTY
            }
            fn meet(&self, acc: &mut RegSet, other: &RegSet) {
                acc.union_with(other);
            }
            fn transfer(&self, block: BlockId, live_out: &RegSet) -> RegSet {
                let l = &self.locals[block.0];
                let mut live_in = live_out.minus(&l.defs);
                live_in.union_with(&l.uses);
                live_in
            }
        }
        let locals = upward_exposed(proc);
        let solution = solve(cfg, &Problem { locals: &locals });
        Liveness {
            live_in: solution.entry,
            live_out: solution.exit,
            locals,
        }
    }
}

/// One register definition site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefSite {
    /// Block holding the definition.
    pub block: BlockId,
    /// Instruction index within the block.
    pub index: usize,
    /// The register defined.
    pub reg: ArchReg,
}

/// Reaching-definitions analysis (forward, may-union) over definition
/// sites.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// Every definition site of the procedure, in (block, index) order.
    pub sites: Vec<DefSite>,
    /// Definition sites reaching each block's entry (bits index `sites`).
    pub reach_in: Vec<BitSet>,
    /// Definition sites reaching each block's exit.
    pub reach_out: Vec<BitSet>,
}

impl ReachingDefs {
    /// Runs reaching definitions over `proc`.
    pub fn compute(proc: &Procedure, cfg: &Cfg) -> Self {
        let mut sites = Vec::new();
        for (bid, block) in proc.iter_blocks() {
            for (idx, inst) in block.instructions.iter().enumerate() {
                if inst.is_hint_noop() {
                    continue;
                }
                if let Some(dest) = inst.dest {
                    sites.push(DefSite {
                        block: bid,
                        index: idx,
                        reg: dest,
                    });
                }
            }
        }
        let n_sites = sites.len();
        let n_blocks = proc.blocks.len();

        // gen[b]: the last definition of each register in b (the one that
        // survives to the exit). kill[b]: every site anywhere defining a
        // register that b redefines.
        let mut gen = vec![BitSet::new(n_sites); n_blocks];
        let mut kill = vec![BitSet::new(n_sites); n_blocks];
        let mut sites_of_reg: HashMap<ArchReg, Vec<usize>> = HashMap::new();
        for (i, site) in sites.iter().enumerate() {
            sites_of_reg.entry(site.reg).or_default().push(i);
        }
        for b in 0..n_blocks {
            let mut last_def: HashMap<ArchReg, usize> = HashMap::new();
            for (i, site) in sites.iter().enumerate() {
                if site.block.0 == b {
                    last_def.insert(site.reg, i);
                }
            }
            for (&reg, &site) in &last_def {
                gen[b].insert(site);
                if let Some(all) = sites_of_reg.get(&reg) {
                    for &other in all {
                        if other != site {
                            kill[b].insert(other);
                        }
                    }
                }
            }
        }

        struct Problem<'a> {
            n_sites: usize,
            gen: &'a [BitSet],
            kill: &'a [BitSet],
        }
        impl DataflowAnalysis for Problem<'_> {
            type Fact = BitSet;
            fn direction(&self) -> Direction {
                Direction::Forward
            }
            fn boundary(&self) -> BitSet {
                BitSet::new(self.n_sites)
            }
            fn top(&self) -> BitSet {
                BitSet::new(self.n_sites)
            }
            fn meet(&self, acc: &mut BitSet, other: &BitSet) {
                acc.union_with(other);
            }
            fn transfer(&self, block: BlockId, reach_in: &BitSet) -> BitSet {
                let mut out = reach_in.clone();
                out.subtract(&self.kill[block.0]);
                out.union_with(&self.gen[block.0]);
                out
            }
        }
        let solution = solve(
            cfg,
            &Problem {
                n_sites,
                gen: &gen,
                kill: &kill,
            },
        );
        ReachingDefs {
            sites,
            reach_in: solution.entry,
            reach_out: solution.exit,
        }
    }
}

/// Definite-assignment analysis (forward, must-intersection): at each
/// block entry, the registers guaranteed to have been written on *every*
/// path from the procedure entry.
#[derive(Debug, Clone)]
pub struct DefiniteAssignment {
    /// Definitely-assigned registers at each block's entry.
    pub assigned_in: Vec<RegSet>,
}

impl DefiniteAssignment {
    /// Runs definite assignment over `proc`.
    pub fn compute(proc: &Procedure, cfg: &Cfg) -> Self {
        struct Problem<'a> {
            locals: &'a [BlockLocals],
        }
        impl DataflowAnalysis for Problem<'_> {
            type Fact = RegSet;
            fn direction(&self) -> Direction {
                Direction::Forward
            }
            fn boundary(&self) -> RegSet {
                RegSet::EMPTY
            }
            fn top(&self) -> RegSet {
                RegSet::FULL
            }
            fn meet(&self, acc: &mut RegSet, other: &RegSet) {
                acc.intersect_with(other);
            }
            fn transfer(&self, block: BlockId, assigned_in: &RegSet) -> RegSet {
                let mut out = *assigned_in;
                out.union_with(&self.locals[block.0].defs);
                out
            }
        }
        let locals = upward_exposed(proc);
        let solution = solve(cfg, &Problem { locals: &locals });
        DefiniteAssignment {
            assigned_in: solution.entry,
        }
    }

    /// Every use of a register that is not definitely assigned on some
    /// path from the procedure entry, as `(block, instruction index,
    /// register)` triples in program order. Registers are implicitly
    /// zero-initialised by the functional executor, so these are
    /// *advisory* (a procedure reading its arguments reports its incoming
    /// registers here).
    pub fn possibly_undefined_uses(
        &self,
        proc: &Procedure,
        cfg: &Cfg,
    ) -> Vec<(BlockId, usize, ArchReg)> {
        let mut out = Vec::new();
        for (bid, block) in proc.iter_blocks() {
            if !cfg.is_reachable(bid) {
                continue;
            }
            let mut assigned = self.assigned_in[bid.0];
            for (idx, inst) in block.instructions.iter().enumerate() {
                if inst.is_hint_noop() {
                    continue;
                }
                for src in inst.sources() {
                    if !assigned.contains(src) {
                        out.push((bid, idx, src));
                    }
                }
                if let Some(dest) = inst.dest {
                    assigned.insert(dest);
                }
            }
        }
        out
    }
}

/// Per-instruction def-use chains of a straight-line sequence (a basic
/// block, or a loop body flattened to one iteration).
#[derive(Debug, Clone, Default)]
pub struct SequenceDefChains {
    /// For each instruction, its source operands paired with the index of
    /// the defining instruction within the sequence — `None` when the
    /// operand is upward exposed (defined outside the sequence, or by the
    /// previous iteration of a loop). Sources appear in
    /// [`Instruction::sources`] order; hint NOOPs get an empty list.
    pub sources: Vec<Vec<(ArchReg, Option<usize>)>>,
    /// The final (downward-exposed) definition of each register over the
    /// whole sequence.
    pub final_def: HashMap<ArchReg, usize>,
}

/// Builds the def-use chains of `instructions`: the shared machinery
/// behind [`crate::Ddg`]'s register and loop-carried edges.
pub fn sequence_def_chains(instructions: &[Instruction]) -> SequenceDefChains {
    let mut chains = SequenceDefChains {
        sources: Vec::with_capacity(instructions.len()),
        final_def: HashMap::new(),
    };
    let mut last_def: HashMap<ArchReg, usize> = HashMap::new();
    for (idx, inst) in instructions.iter().enumerate() {
        if inst.is_hint_noop() {
            chains.sources.push(Vec::new());
            continue;
        }
        let srcs = inst
            .sources()
            .map(|src| (src, last_def.get(&src).copied()))
            .collect();
        chains.sources.push(srcs);
        if let Some(dest) = inst.dest {
            last_def.insert(dest, idx);
        }
    }
    chains.final_def = last_def;
    chains
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_isa::builder::ProgramBuilder;
    use sdiq_isa::{Opcode, Program};

    /// entry: r1 = 0          → body
    /// body:  r2 = r1 + 1 ; r1 = r1 + 1 ; blt r1, 10, body, exit
    /// exit:  r3 = r2 + 1 ; ret
    fn loop_program() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let body = p.block();
            let exit = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 0);
                bb.jump(body);
            });
            p.with_block(body, |bb| {
                bb.addi(int_reg(2), int_reg(1), 1);
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.blt(int_reg(1), 10, body, exit);
            });
            p.with_block(exit, |bb| {
                bb.addi(int_reg(3), int_reg(2), 1);
                bb.ret();
            });
            p.set_entry(entry);
        }
        b.finish(main).unwrap()
    }

    #[test]
    fn regset_roundtrips_members() {
        let mut s = RegSet::EMPTY;
        s.insert(int_reg(3));
        s.insert(fp_reg(7));
        assert!(s.contains(int_reg(3)));
        assert!(s.contains(fp_reg(7)));
        assert!(!s.contains(int_reg(7)));
        assert_eq!(s.len(), 2);
        let members: Vec<ArchReg> = s.iter().collect();
        assert_eq!(members, vec![int_reg(3), fp_reg(7)]);
    }

    #[test]
    fn reg_from_flat_inverts_flat_index() {
        for i in 0..ArchReg::flat_count() {
            assert_eq!(reg_from_flat(i).flat_index(), i);
        }
    }

    #[test]
    fn bitset_union_and_subtract() {
        let mut a = BitSet::new(130);
        a.insert(0);
        a.insert(129);
        let mut b = BitSet::new(130);
        b.insert(64);
        b.insert(129);
        a.union_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn liveness_sees_loop_carried_value() {
        let program = loop_program();
        let proc = program.proc(program.entry);
        let cfg = Cfg::build(proc);
        let live = Liveness::compute(proc, &cfg);
        // r1 is live into the loop body (used before defined there)...
        assert!(live.live_in[1].contains(int_reg(1)));
        // ...and live around the back edge.
        assert!(live.live_out[1].contains(int_reg(1)));
        // r2 is live out of the body (read in the exit block).
        assert!(live.live_out[1].contains(int_reg(2)));
        // Nothing is live out of the exit block.
        assert!(live.live_out[2].is_empty());
        // r3 is dead everywhere but defined in exit.
        assert!(!live.live_in[2].contains(int_reg(3)));
    }

    #[test]
    fn reaching_defs_flow_around_the_loop() {
        let program = loop_program();
        let proc = program.proc(program.entry);
        let cfg = Cfg::build(proc);
        let rd = ReachingDefs::compute(proc, &cfg);
        // Sites: r1@entry, r2@body, r1@body, r3@exit.
        assert_eq!(rd.sites.len(), 4);
        let r1_entry = 0;
        let r1_body = 2;
        // Both r1 definitions reach the body entry (initial + back edge).
        assert!(rd.reach_in[1].contains(r1_entry));
        assert!(rd.reach_in[1].contains(r1_body));
        // Only the body's r1 definition survives to the body exit.
        assert!(!rd.reach_out[1].contains(r1_entry));
        assert!(rd.reach_out[1].contains(r1_body));
    }

    #[test]
    fn definite_assignment_flags_unwritten_reads() {
        let program = loop_program();
        let proc = program.proc(program.entry);
        let cfg = Cfg::build(proc);
        let da = DefiniteAssignment::compute(proc, &cfg);
        // r1 is assigned on every path into the body; r2 likewise into exit.
        assert!(da.assigned_in[1].contains(int_reg(1)));
        assert!(da.assigned_in[2].contains(int_reg(2)));
        assert!(da.possibly_undefined_uses(proc, &cfg).is_empty());
    }

    #[test]
    fn definite_assignment_is_a_must_analysis() {
        // Diamond where only one arm writes r5: the join must not consider
        // r5 assigned.
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let left = p.block();
            let right = p.block();
            let join = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 1);
                bb.bgt(int_reg(1), 0, left, right);
            });
            p.with_block(left, |bb| {
                bb.li(int_reg(5), 9);
                bb.jump(join);
            });
            p.with_block(right, |bb| {
                bb.nop();
                bb.jump(join);
            });
            p.with_block(join, |bb| {
                bb.addi(int_reg(6), int_reg(5), 1);
                bb.ret();
            });
            p.set_entry(entry);
        }
        let program = b.finish(main).unwrap();
        let proc = program.proc(program.entry);
        let cfg = Cfg::build(proc);
        let da = DefiniteAssignment::compute(proc, &cfg);
        assert!(!da.assigned_in[3].contains(int_reg(5)));
        let undef = da.possibly_undefined_uses(proc, &cfg);
        assert_eq!(undef.len(), 1);
        assert_eq!(undef[0].2, int_reg(5));
    }

    #[test]
    fn upward_exposed_respects_in_block_order() {
        let instrs = vec![
            Instruction::ri(Opcode::Li, int_reg(1), 3),
            // Reads r1 after the def above (not exposed) and r2 (exposed).
            Instruction::rrr(Opcode::Add, int_reg(3), int_reg(1), int_reg(2)),
        ];
        let locals = block_locals(&instrs);
        assert!(!locals.uses.contains(int_reg(1)));
        assert!(locals.uses.contains(int_reg(2)));
        assert!(locals.defs.contains(int_reg(1)));
        assert!(locals.defs.contains(int_reg(3)));
    }

    #[test]
    fn sequence_def_chains_mark_upward_exposed_sources() {
        let instrs = vec![
            Instruction::rri(Opcode::Addi, int_reg(1), int_reg(1), 1),
            Instruction::rri(Opcode::Addi, int_reg(2), int_reg(1), 1),
        ];
        let chains = sequence_def_chains(&instrs);
        // First instruction reads r1 from outside the sequence.
        assert_eq!(chains.sources[0], vec![(int_reg(1), None)]);
        // Second reads the r1 defined at index 0.
        assert_eq!(chains.sources[1], vec![(int_reg(1), Some(0))]);
        assert_eq!(chains.final_def[&int_reg(1)], 0);
        assert_eq!(chains.final_def[&int_reg(2)], 1);
    }

    #[test]
    fn hint_noops_are_transparent_to_chains() {
        let instrs = vec![
            Instruction::hint_noop(4),
            Instruction::rri(Opcode::Addi, int_reg(1), int_reg(1), 1),
        ];
        let chains = sequence_def_chains(&instrs);
        assert!(chains.sources[0].is_empty());
        assert_eq!(chains.sources[1], vec![(int_reg(1), None)]);
    }
}
