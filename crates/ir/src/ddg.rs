//! Data dependence graphs (DDGs).
//!
//! §4.1: "Within each loop and DAG the DDG is constructed and its edges
//! labelled with the latencies of the instructions for use in a more
//! detailed analysis stage."
//!
//! Nodes are instruction indices within the analysed sequence (a basic block
//! or a loop body flattened into a single-iteration instruction sequence).
//! Edges carry the *producer's* latency, so the consumer cannot issue until
//! `issue(producer) + latency(producer)`, matching the pseudo-issue-queue
//! model of §4.2. Loop bodies additionally get loop-carried edges for values
//! that flow from one iteration to the next (the raw material of the cyclic
//! dependence sets of §4.3).

use crate::dataflow::sequence_def_chains;
use crate::graph::{strongly_connected_components, WeightedEdge};
use sdiq_isa::Instruction;
use serde::{Deserialize, Serialize};

/// Extra cycles the compiler assumes for a load on top of address
/// generation: the paper's analysis "assume[s] that all accesses to memory
/// are cache hits", and the modelled L1 D-cache hit latency is 2 cycles
/// (Table 1).
pub const ASSUMED_L1D_HIT_EXTRA: u32 = 2;

/// The default latency model used when building DDGs: the opcode latency,
/// plus the assumed L1 hit time for loads.
pub fn default_latency(inst: &Instruction) -> u32 {
    let base = inst.latency();
    if inst.opcode.is_load() {
        base + ASSUMED_L1D_HIT_EXTRA
    } else {
        base
    }
}

/// Kinds of dependence edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DdgEdgeKind {
    /// Register read-after-write dependence within the sequence.
    Data,
    /// Conservative memory-ordering dependence (store→load, store→store,
    /// load→store on possibly-aliasing addresses).
    Memory,
    /// Register dependence carried from the previous loop iteration.
    LoopCarried,
}

/// One dependence edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DdgEdge {
    /// Producer instruction index.
    pub from: usize,
    /// Consumer instruction index.
    pub to: usize,
    /// Producer latency in cycles.
    pub latency: u32,
    /// Dependence kind.
    pub kind: DdgEdgeKind,
}

/// A data dependence graph over a sequence of instructions.
#[derive(Debug, Clone, Default)]
pub struct Ddg {
    node_count: usize,
    node_latency: Vec<u32>,
    edges: Vec<DdgEdge>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
}

impl Ddg {
    /// Builds the DDG of a straight-line instruction sequence (typically one
    /// basic block) using the [`default_latency`] model.
    pub fn for_block(instructions: &[Instruction]) -> Self {
        Self::build(instructions, false, default_latency)
    }

    /// Builds the DDG of a loop body, adding loop-carried register edges,
    /// using the [`default_latency`] model.
    pub fn for_loop_body(instructions: &[Instruction]) -> Self {
        Self::build(instructions, true, default_latency)
    }

    /// Builds a DDG with a caller-supplied latency model.
    pub fn with_latency<F>(instructions: &[Instruction], loop_carried: bool, latency: F) -> Self
    where
        F: Fn(&Instruction) -> u32,
    {
        Self::build(instructions, loop_carried, latency)
    }

    fn build<F>(instructions: &[Instruction], loop_carried: bool, latency: F) -> Self
    where
        F: Fn(&Instruction) -> u32,
    {
        let n = instructions.len();
        let mut edges: Vec<DdgEdge> = Vec::new();
        let node_latency: Vec<u32> = instructions.iter().map(latency).collect();

        // Register def-use chains come from the shared dataflow machinery
        // (hint NOOPs are already transparent there); memory ordering is
        // DDG-specific and tracked inline.
        let chains = sequence_def_chains(instructions);
        let mut last_store: Option<usize> = None;
        let mut loads_since_store: Vec<usize> = Vec::new();

        for (idx, inst) in instructions.iter().enumerate() {
            if inst.is_hint_noop() {
                continue;
            }
            // Register RAW dependences within the sequence.
            for &(_, def) in &chains.sources[idx] {
                if let Some(def) = def {
                    edges.push(DdgEdge {
                        from: def,
                        to: idx,
                        latency: node_latency[def],
                        kind: DdgEdgeKind::Data,
                    });
                }
            }
            if inst.opcode.is_mem() {
                if inst.opcode.is_load() {
                    if let Some(store) = last_store {
                        edges.push(DdgEdge {
                            from: store,
                            to: idx,
                            latency: node_latency[store],
                            kind: DdgEdgeKind::Memory,
                        });
                    }
                    loads_since_store.push(idx);
                } else {
                    // Store: order after the previous store and after loads
                    // issued since then.
                    if let Some(store) = last_store {
                        edges.push(DdgEdge {
                            from: store,
                            to: idx,
                            latency: 1,
                            kind: DdgEdgeKind::Memory,
                        });
                    }
                    for &ld in &loads_since_store {
                        edges.push(DdgEdge {
                            from: ld,
                            to: idx,
                            latency: 1,
                            kind: DdgEdgeKind::Memory,
                        });
                    }
                    loads_since_store.clear();
                    last_store = Some(idx);
                }
            }
        }

        // Loop-carried register dependences: a source the chains mark as
        // upward exposed (no earlier definition in the body) reads the value
        // produced by the final definition of that register in the
        // *previous* iteration.
        if loop_carried {
            for (idx, sources) in chains.sources.iter().enumerate() {
                for &(src, def_in_body) in sources {
                    if def_in_body.is_none() {
                        if let Some(&def) = chains.final_def.get(&src) {
                            edges.push(DdgEdge {
                                from: def,
                                to: idx,
                                latency: node_latency[def],
                                kind: DdgEdgeKind::LoopCarried,
                            });
                        }
                    }
                }
            }
        }

        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (eidx, e) in edges.iter().enumerate() {
            preds[e.to].push(eidx);
            succs[e.from].push(eidx);
        }

        Ddg {
            node_count: n,
            node_latency,
            edges,
            preds,
            succs,
        }
    }

    /// Number of nodes (instructions) in the graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// All edges.
    pub fn edges(&self) -> &[DdgEdge] {
        &self.edges
    }

    /// Latency assigned to node `idx`.
    pub fn latency_of(&self, idx: usize) -> u32 {
        self.node_latency[idx]
    }

    /// Incoming edges of node `idx`.
    pub fn preds(&self, idx: usize) -> impl Iterator<Item = &DdgEdge> {
        self.preds[idx].iter().map(move |&e| &self.edges[e])
    }

    /// Outgoing edges of node `idx`.
    pub fn succs(&self, idx: usize) -> impl Iterator<Item = &DdgEdge> {
        self.succs[idx].iter().map(move |&e| &self.edges[e])
    }

    /// Edges that stay within one iteration (everything except loop-carried).
    pub fn intra_iteration_edges(&self) -> impl Iterator<Item = &DdgEdge> {
        self.edges
            .iter()
            .filter(|e| e.kind != DdgEdgeKind::LoopCarried)
    }

    /// Loop-carried edges only.
    pub fn loop_carried_edges(&self) -> impl Iterator<Item = &DdgEdge> {
        self.edges
            .iter()
            .filter(|e| e.kind == DdgEdgeKind::LoopCarried)
    }

    /// Strongly connected components over *all* edges (loop-carried edges
    /// close the cycles that form the paper's cyclic dependence sets).
    /// Components are returned with more than one node, or a single node
    /// with a self edge (a dependence of an instruction on its own previous
    /// iteration, like `a = a + 1`).
    pub fn cyclic_dependence_sets(&self) -> Vec<Vec<usize>> {
        let pairs: Vec<(usize, usize)> = self.edges.iter().map(|e| (e.from, e.to)).collect();
        let comps = strongly_connected_components(self.node_count, &pairs);
        comps
            .into_iter()
            .filter(|c| c.len() > 1 || self.edges.iter().any(|e| e.from == c[0] && e.to == c[0]))
            .collect()
    }

    /// Critical-path length of the intra-iteration graph starting from nodes
    /// with no intra-iteration predecessors, measured in cycles until the
    /// last result is produced. For a straight-line block this is the
    /// dataflow-limited execution time.
    pub fn critical_path_cycles(&self) -> u64 {
        // Longest path where entering node i costs latency(i); we compute
        // finish times.
        let mut finish: Vec<u64> = vec![0; self.node_count];
        for idx in 0..self.node_count {
            let ready = self
                .preds(idx)
                .filter(|e| e.kind != DdgEdgeKind::LoopCarried)
                .map(|e| finish[e.from])
                .max()
                .unwrap_or(0);
            finish[idx] = ready + u64::from(self.node_latency[idx]);
        }
        finish.into_iter().max().unwrap_or(0)
    }

    /// Forward (intra-iteration) edges as [`WeightedEdge`]s, suitable for
    /// [`crate::graph::longest_paths_forward`].
    pub fn forward_weighted_edges(&self) -> Vec<WeightedEdge> {
        self.intra_iteration_edges()
            .filter(|e| e.from < e.to)
            .map(|e| WeightedEdge {
                from: e.from,
                to: e.to,
                weight: e.latency,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_isa::reg::int_reg;
    use sdiq_isa::{Instruction, Opcode};

    /// The basic block of Figure 1(a):
    /// a: add r1, 1, r1 ; b: add r2, 2, r2 ; c: mul r1, 5, r3 ;
    /// d: mul r2, 5, r4 ; e: add r3, r4, r5 ; f: add r2, r4, r6
    fn figure1_block() -> Vec<Instruction> {
        vec![
            Instruction::rri(Opcode::Addi, int_reg(1), int_reg(1), 1),
            Instruction::rri(Opcode::Addi, int_reg(2), int_reg(2), 2),
            Instruction::rri(Opcode::Addi, int_reg(3), int_reg(1), 5), // stands in for mul r1,5,r3
            Instruction::rri(Opcode::Addi, int_reg(4), int_reg(2), 5),
            Instruction::rrr(Opcode::Add, int_reg(5), int_reg(3), int_reg(4)),
            Instruction::rrr(Opcode::Add, int_reg(6), int_reg(2), int_reg(4)),
        ]
    }

    #[test]
    fn figure1_ddg_shape() {
        let ddg = Ddg::for_block(&figure1_block());
        assert_eq!(ddg.node_count(), 6);
        // c depends on a, d depends on b, e depends on c and d, f depends on
        // b and d.
        let has_edge =
            |from: usize, to: usize| ddg.edges().iter().any(|e| e.from == from && e.to == to);
        assert!(has_edge(0, 2));
        assert!(has_edge(1, 3));
        assert!(has_edge(2, 4));
        assert!(has_edge(3, 4));
        assert!(has_edge(1, 5));
        assert!(has_edge(3, 5));
        assert!(!has_edge(0, 1));
        // With unit latencies the critical path is a → c → e = 3 cycles.
        assert_eq!(ddg.critical_path_cycles(), 3);
    }

    #[test]
    fn load_latency_includes_assumed_cache_hit() {
        let instrs = vec![
            Instruction::load(Opcode::Load, int_reg(1), int_reg(2), 0),
            Instruction::rri(Opcode::Addi, int_reg(3), int_reg(1), 1),
        ];
        let ddg = Ddg::for_block(&instrs);
        let edge = ddg
            .edges()
            .iter()
            .find(|e| e.from == 0 && e.to == 1)
            .unwrap();
        assert_eq!(edge.latency, 1 + ASSUMED_L1D_HIT_EXTRA);
    }

    #[test]
    fn memory_ordering_edges_are_conservative() {
        let instrs = vec![
            Instruction::store(Opcode::Store, int_reg(1), int_reg(2), 0),
            Instruction::load(Opcode::Load, int_reg(3), int_reg(4), 8),
            Instruction::store(Opcode::Store, int_reg(5), int_reg(6), 16),
        ];
        let ddg = Ddg::for_block(&instrs);
        let kinds: Vec<_> = ddg
            .edges()
            .iter()
            .filter(|e| e.kind == DdgEdgeKind::Memory)
            .map(|e| (e.from, e.to))
            .collect();
        // store→load, store→store, load→store.
        assert!(kinds.contains(&(0, 1)));
        assert!(kinds.contains(&(0, 2)));
        assert!(kinds.contains(&(1, 2)));
    }

    #[test]
    fn figure4_loop_body_has_self_carried_cds() {
        // Figure 4: a = a + 1 ; b = a + 1 ; c = b + 1 ; d = b + 1 ;
        //           e = d + 1 ; f = c + 1   (all unit latency)
        let body = vec![
            Instruction::rri(Opcode::Addi, int_reg(1), int_reg(1), 1), // a
            Instruction::rri(Opcode::Addi, int_reg(2), int_reg(1), 1), // b
            Instruction::rri(Opcode::Addi, int_reg(3), int_reg(2), 1), // c
            Instruction::rri(Opcode::Addi, int_reg(4), int_reg(2), 1), // d
            Instruction::rri(Opcode::Addi, int_reg(5), int_reg(4), 1), // e
            Instruction::rri(Opcode::Addi, int_reg(6), int_reg(3), 1), // f
        ];
        let ddg = Ddg::for_loop_body(&body);
        // a reads r1 before any def in the body → loop-carried self edge.
        let carried: Vec<_> = ddg.loop_carried_edges().collect();
        assert!(carried.iter().any(|e| e.from == 0 && e.to == 0));
        let cds = ddg.cyclic_dependence_sets();
        assert_eq!(cds.len(), 1);
        assert_eq!(cds[0], vec![0]);
    }

    #[test]
    fn loop_carried_edges_only_for_upward_exposed_uses() {
        // r1 is defined before use inside the body → no loop-carried edge for
        // its use; r2 is upward exposed.
        let body = vec![
            Instruction::ri(Opcode::Li, int_reg(1), 3),
            Instruction::rrr(Opcode::Add, int_reg(2), int_reg(1), int_reg(2)),
        ];
        let ddg = Ddg::for_loop_body(&body);
        let carried: Vec<_> = ddg.loop_carried_edges().map(|e| (e.from, e.to)).collect();
        assert_eq!(carried, vec![(1, 1)]);
    }

    #[test]
    fn hint_noops_are_isolated_nodes() {
        let instrs = vec![
            Instruction::hint_noop(4),
            Instruction::rri(Opcode::Addi, int_reg(1), int_reg(1), 1),
        ];
        let ddg = Ddg::for_block(&instrs);
        assert_eq!(ddg.node_count(), 2);
        assert_eq!(ddg.preds(0).count(), 0);
        assert_eq!(ddg.succs(0).count(), 0);
    }

    #[test]
    fn straight_line_block_has_no_cds() {
        let ddg = Ddg::for_block(&figure1_block());
        assert!(ddg.cyclic_dependence_sets().is_empty());
    }

    #[test]
    fn forward_weighted_edges_exclude_loop_carried() {
        let body = vec![
            Instruction::rri(Opcode::Addi, int_reg(1), int_reg(1), 1),
            Instruction::rri(Opcode::Addi, int_reg(2), int_reg(1), 1),
        ];
        let ddg = Ddg::for_loop_body(&body);
        let fw = ddg.forward_weighted_edges();
        assert_eq!(fw.len(), 1);
        assert_eq!((fw[0].from, fw[0].to), (0, 1));
    }
}
