//! Dominator analysis.
//!
//! Implements the iterative dominator algorithm of Cooper, Harvey and
//! Kennedy ("A Simple, Fast Dominance Algorithm"), operating on the reverse
//! post-order supplied by [`crate::cfg::Cfg`]. Dominators are needed to find
//! the back edges that define natural loops (§4.1 of the paper).

use crate::cfg::Cfg;
use sdiq_isa::BlockId;

/// Immediate-dominator table for one procedure.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of block `b`; the entry block is
    /// its own immediate dominator; unreachable blocks have `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl Dominators {
    /// Computes dominators for `cfg`.
    pub fn compute(cfg: &Cfg) -> Self {
        let n = cfg.block_count();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        let entry = cfg.entry();
        idom[entry.0] = Some(entry);

        let rpo = cfg.reverse_postorder();
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                // First processed predecessor (one with an idom already set).
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.0].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect(cfg, &idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0] != Some(ni) {
                        idom[b.0] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        Dominators { idom, entry }
    }

    fn intersect(cfg: &Cfg, idom: &[Option<BlockId>], a: BlockId, b: BlockId) -> BlockId {
        let mut finger1 = a;
        let mut finger2 = b;
        // Compare positions in reverse post-order; walk the deeper one up.
        let pos = |x: BlockId| cfg.rpo_index(x).expect("reachable block");
        while finger1 != finger2 {
            while pos(finger1) > pos(finger2) {
                finger1 = idom[finger1.0].expect("processed block");
            }
            while pos(finger2) > pos(finger1) {
                finger2 = idom[finger2.0].expect("processed block");
            }
        }
        finger1
    }

    /// Immediate dominator of `block` (`None` for unreachable blocks; the
    /// entry block is its own immediate dominator).
    pub fn idom(&self, block: BlockId) -> Option<BlockId> {
        self.idom[block.0]
    }

    /// `true` if `a` dominates `b` (every block dominates itself).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.0].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return a == self.entry;
            }
            match self.idom[cur.0] {
                Some(next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_isa::builder::ProgramBuilder;
    use sdiq_isa::reg::int_reg;
    use sdiq_isa::Program;

    /// entry(0) → {left(1), right(2)} → join(3); join → loop body(4) → join
    /// (back edge); join → exit(5).
    fn program_with_diamond_and_loop() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let left = p.block();
            let right = p.block();
            let join = p.block();
            let body = p.block();
            let exit = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 1);
                bb.bgt(int_reg(1), 0, left, right);
            });
            p.with_block(left, |bb| {
                bb.jump(join);
            });
            p.with_block(right, |bb| {
                bb.jump(join);
            });
            p.with_block(join, |bb| {
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.blt(int_reg(1), 10, body, exit);
            });
            p.with_block(body, |bb| {
                bb.addi(int_reg(2), int_reg(2), 1);
                bb.jump(join);
            });
            p.with_block(exit, |bb| {
                bb.ret();
            });
            p.set_entry(entry);
        }
        b.finish(main).unwrap()
    }

    #[test]
    fn entry_dominates_everything() {
        let program = program_with_diamond_and_loop();
        let cfg = Cfg::build(program.proc(program.entry));
        let dom = Dominators::compute(&cfg);
        for b in 0..cfg.block_count() {
            assert!(
                dom.dominates(BlockId(0), BlockId(b)),
                "entry should dominate bb{b}"
            );
        }
    }

    #[test]
    fn join_block_is_dominated_by_entry_not_branches() {
        let program = program_with_diamond_and_loop();
        let cfg = Cfg::build(program.proc(program.entry));
        let dom = Dominators::compute(&cfg);
        assert_eq!(dom.idom(BlockId(3)), Some(BlockId(0)));
        assert!(!dom.dominates(BlockId(1), BlockId(3)));
        assert!(!dom.dominates(BlockId(2), BlockId(3)));
    }

    #[test]
    fn loop_header_dominates_loop_body() {
        let program = program_with_diamond_and_loop();
        let cfg = Cfg::build(program.proc(program.entry));
        let dom = Dominators::compute(&cfg);
        assert!(dom.dominates(BlockId(3), BlockId(4)));
        assert!(dom.dominates(BlockId(3), BlockId(5)));
        assert!(!dom.dominates(BlockId(4), BlockId(3)));
    }

    #[test]
    fn dominance_is_reflexive_and_antisymmetric_for_distinct_chain() {
        let program = program_with_diamond_and_loop();
        let cfg = Cfg::build(program.proc(program.entry));
        let dom = Dominators::compute(&cfg);
        for b in 0..cfg.block_count() {
            assert!(dom.dominates(BlockId(b), BlockId(b)));
        }
        assert!(dom.dominates(BlockId(0), BlockId(5)));
        assert!(!dom.dominates(BlockId(5), BlockId(0)));
    }
}
