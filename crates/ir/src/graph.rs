//! Small graph utilities used by the dependence analyses: Tarjan's strongly
//! connected components and longest paths over forward (acyclic) edge sets.

/// A weighted directed edge between node indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightedEdge {
    /// Source node index.
    pub from: usize,
    /// Destination node index.
    pub to: usize,
    /// Edge weight (latency in cycles for dependence edges).
    pub weight: u32,
}

/// Computes the strongly connected components of a directed graph with
/// `node_count` nodes and the given edges, using Tarjan's algorithm
/// (iterative formulation to avoid recursion limits on large blocks).
///
/// Components are returned in reverse topological order (callees before
/// callers), each as a sorted list of node indices. Trivial single-node
/// components without a self-edge are included.
pub fn strongly_connected_components(
    node_count: usize,
    edges: &[(usize, usize)],
) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); node_count];
    for &(from, to) in edges {
        adj[from].push(to);
    }

    #[derive(Clone, Copy)]
    struct NodeState {
        index: Option<usize>,
        lowlink: usize,
        on_stack: bool,
    }

    let mut state = vec![
        NodeState {
            index: None,
            lowlink: 0,
            on_stack: false,
        };
        node_count
    ];
    let mut next_index = 0usize;
    let mut stack: Vec<usize> = Vec::new();
    let mut components: Vec<Vec<usize>> = Vec::new();

    // Iterative Tarjan: (node, next child position) call frames.
    for start in 0..node_count {
        if state[start].index.is_some() {
            continue;
        }
        let mut call_stack: Vec<(usize, usize)> = vec![(start, 0)];
        state[start].index = Some(next_index);
        state[start].lowlink = next_index;
        state[start].on_stack = true;
        stack.push(start);
        next_index += 1;

        while let Some(&mut (v, ref mut child_pos)) = call_stack.last_mut() {
            if *child_pos < adj[v].len() {
                let w = adj[v][*child_pos];
                *child_pos += 1;
                if state[w].index.is_none() {
                    state[w].index = Some(next_index);
                    state[w].lowlink = next_index;
                    state[w].on_stack = true;
                    stack.push(w);
                    next_index += 1;
                    call_stack.push((w, 0));
                } else if state[w].on_stack {
                    state[v].lowlink = state[v].lowlink.min(state[w].index.unwrap());
                }
            } else {
                call_stack.pop();
                if let Some(&(parent, _)) = call_stack.last() {
                    let v_low = state[v].lowlink;
                    state[parent].lowlink = state[parent].lowlink.min(v_low);
                }
                if state[v].lowlink == state[v].index.unwrap() {
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("SCC stack underflow");
                        state[w].on_stack = false;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    components.push(component);
                }
            }
        }
    }

    components
}

/// Longest-path distances from `source` over a set of *forward* edges
/// (`from < to` is required, which makes the graph acyclic and lets a single
/// index-order pass compute the answer). Nodes unreachable from `source`
/// get `None`.
///
/// # Panics
///
/// Panics (debug assertion) if an edge is not forward.
pub fn longest_paths_forward(
    node_count: usize,
    source: usize,
    edges: &[WeightedEdge],
) -> Vec<Option<u64>> {
    let mut dist: Vec<Option<u64>> = vec![None; node_count];
    if source < node_count {
        dist[source] = Some(0);
    }
    let mut by_source: Vec<Vec<&WeightedEdge>> = vec![Vec::new(); node_count];
    for e in edges {
        debug_assert!(
            e.from < e.to,
            "longest_paths_forward requires forward edges"
        );
        by_source[e.from].push(e);
    }
    for from in 0..node_count {
        if let Some(d) = dist[from] {
            for e in &by_source[from] {
                let cand = d + u64::from(e.weight);
                let slot = &mut dist[e.to];
                if slot.is_none_or(|cur| cand > cur) {
                    *slot = Some(cand);
                }
            }
        }
    }
    dist
}

/// Sum of weights around a cycle given as a node list (in any rotation),
/// where `weight_of(from, to)` supplies the weight of the edge taken from
/// `from` towards `to` (dependence edges store the producer latency, so this
/// is the producer's latency). Returns the total latency of one trip around
/// the cycle, used to rank cyclic dependence sets by criticality.
pub fn cycle_latency<F>(cycle: &[usize], mut weight_of: F) -> u64
where
    F: FnMut(usize, usize) -> u64,
{
    if cycle.is_empty() {
        return 0;
    }
    let mut total = 0;
    for i in 0..cycle.len() {
        let from = cycle[i];
        let to = cycle[(i + 1) % cycle.len()];
        total += weight_of(from, to);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sccs_of_simple_cycle() {
        // 0 → 1 → 2 → 0 and 3 isolated.
        let comps = strongly_connected_components(4, &[(0, 1), (1, 2), (2, 0)]);
        let cyclic: Vec<_> = comps.iter().filter(|c| c.len() > 1).collect();
        assert_eq!(cyclic.len(), 1);
        assert_eq!(cyclic[0], &vec![0, 1, 2]);
        assert_eq!(comps.iter().map(|c| c.len()).sum::<usize>(), 4);
    }

    #[test]
    fn sccs_of_dag_are_all_singletons() {
        let comps = strongly_connected_components(5, &[(0, 1), (1, 2), (0, 3), (3, 4)]);
        assert_eq!(comps.len(), 5);
        assert!(comps.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn sccs_handle_nested_cycles() {
        // Two overlapping cycles form one component: 0→1→2→0 and 1→3→1.
        let comps = strongly_connected_components(4, &[(0, 1), (1, 2), (2, 0), (1, 3), (3, 1)]);
        let big: Vec<_> = comps.into_iter().filter(|c| c.len() > 1).collect();
        assert_eq!(big.len(), 1);
        assert_eq!(big[0], vec![0, 1, 2, 3]);
    }

    #[test]
    fn longest_path_prefers_heavier_route() {
        // 0 →(1) 1 →(1) 3, 0 →(5) 2 →(1) 3.
        let edges = [
            WeightedEdge {
                from: 0,
                to: 1,
                weight: 1,
            },
            WeightedEdge {
                from: 1,
                to: 3,
                weight: 1,
            },
            WeightedEdge {
                from: 0,
                to: 2,
                weight: 5,
            },
            WeightedEdge {
                from: 2,
                to: 3,
                weight: 1,
            },
        ];
        let dist = longest_paths_forward(4, 0, &edges);
        assert_eq!(dist[0], Some(0));
        assert_eq!(dist[1], Some(1));
        assert_eq!(dist[2], Some(5));
        assert_eq!(dist[3], Some(6));
    }

    #[test]
    fn longest_path_marks_unreachable_nodes() {
        let edges = [WeightedEdge {
            from: 0,
            to: 1,
            weight: 2,
        }];
        let dist = longest_paths_forward(3, 0, &edges);
        assert_eq!(dist[2], None);
    }

    #[test]
    fn cycle_latency_sums_edges_once_around() {
        let latency = cycle_latency(&[0, 1, 2], |from, _to| (from + 1) as u64);
        // edges 0→1 (1), 1→2 (2), 2→0 (3)
        assert_eq!(latency, 6);
        assert_eq!(cycle_latency(&[5], |_, _| 4), 4);
        assert_eq!(cycle_latency(&[], |_, _| 4), 0);
    }
}
