//! # sdiq-ir — compiler IR and analyses
//!
//! The paper's compiler pass is hosted in MachineSUIF, which supplies the
//! control-flow graph, natural-loop identification and traversal
//! infrastructure. This crate rebuilds exactly the pieces the pass needs,
//! operating directly on [`sdiq_isa::Program`]s:
//!
//! * [`cfg::Cfg`] — per-procedure control-flow graph with predecessor /
//!   successor lists and reverse post-order,
//! * [`dominators::Dominators`] — dominator tree (iterative Cooper–Harvey–
//!   Kennedy algorithm),
//! * [`loops::LoopNest`] — natural loops found from back edges, with inner
//!   loops separated from their enclosing loops exactly as §4.1 describes
//!   ("the inner loop's basic blocks form one loop and those that are only
//!   in the outer loop form another"),
//! * [`regions::DagRegions`] — the paper's DAGs: groups of non-loop blocks
//!   starting at the procedure entry or at the block following a call,
//! * [`ddg::Ddg`] — latency-labelled data dependence graphs for straight-line
//!   code and for loop bodies (including loop-carried edges), plus the graph
//!   utilities (SCCs, longest paths) the loop analysis of §4.3 relies on,
//! * [`dataflow`] — a generic iterative (worklist) dataflow framework over
//!   the CFG, with liveness, reaching-definitions, definite-assignment and
//!   upward-exposed-operand analyses as reusable instances. The DDG's
//!   def-use chains are built on the same machinery.
//!
//! # Example
//!
//! ```
//! use sdiq_isa::builder::ProgramBuilder;
//! use sdiq_isa::reg::int_reg;
//! use sdiq_ir::ProcedureAnalysis;
//!
//! let mut b = ProgramBuilder::new();
//! let main = b.procedure("main");
//! {
//!     let p = b.proc_mut(main);
//!     let entry = p.block();
//!     let body = p.block();
//!     let exit = p.block();
//!     p.with_block(entry, |bb| {
//!         bb.li(int_reg(1), 0);
//!         bb.jump(body);
//!     });
//!     p.with_block(body, |bb| {
//!         bb.addi(int_reg(1), int_reg(1), 1);
//!         bb.blt(int_reg(1), 100, body, exit);
//!     });
//!     p.with_block(exit, |bb| { bb.ret(); });
//!     p.set_entry(entry);
//! }
//! let program = b.finish(main).unwrap();
//!
//! let analysis = ProcedureAnalysis::analyse(program.proc(main));
//! assert_eq!(analysis.loops.loops().len(), 1);
//! ```

pub mod cfg;
pub mod dataflow;
pub mod ddg;
pub mod dominators;
pub mod graph;
pub mod loops;
pub mod regions;

pub use cfg::Cfg;
pub use dataflow::{
    BlockLocals, DataflowAnalysis, DataflowSolution, DefiniteAssignment, Direction, Liveness,
    ReachingDefs, RegSet,
};
pub use ddg::{Ddg, DdgEdge, DdgEdgeKind};
pub use dominators::Dominators;
pub use loops::{LoopNest, NaturalLoop};
pub use regions::{DagRegion, DagRegions};

use sdiq_isa::Procedure;

/// Bundles every per-procedure analysis the compiler pass needs.
///
/// This is the "break-down into groups" step of Figure 5 in the paper: find
/// the natural loops, form the DAGs from everything else, and keep the CFG /
/// dominator information around for the detailed per-block analysis.
#[derive(Debug, Clone)]
pub struct ProcedureAnalysis {
    /// The procedure's control-flow graph.
    pub cfg: Cfg,
    /// Dominator information computed over `cfg`.
    pub dominators: Dominators,
    /// Natural loops of the procedure.
    pub loops: LoopNest,
    /// DAG regions covering the non-loop blocks.
    pub regions: DagRegions,
}

impl ProcedureAnalysis {
    /// Runs the full per-procedure analysis pipeline.
    pub fn analyse(proc: &Procedure) -> Self {
        let cfg = Cfg::build(proc);
        let dominators = Dominators::compute(&cfg);
        let loops = LoopNest::find(&cfg, &dominators);
        let regions = DagRegions::find(proc, &cfg, &loops);
        ProcedureAnalysis {
            cfg,
            dominators,
            loops,
            regions,
        }
    }
}
