//! Natural-loop detection.
//!
//! §4.1 of the paper: "MachineSUIF contains analysis libraries to identify
//! the natural loops in a procedure. Where a loop has an inner loop, this is
//! considered separately, so the inner loop's basic blocks form one loop and
//! those that are only in the outer loop form another."
//!
//! We find back edges `n → h` (where `h` dominates `n`), build the natural
//! loop of each header as the union of the back-edge natural loops, and then
//! compute the loop nesting forest so that the *exclusive* block set of each
//! loop (its body minus all inner-loop bodies) is available to the compiler
//! pass, matching the paper's "analyse inner loops once" rule.

use crate::cfg::Cfg;
use crate::dominators::Dominators;
use sdiq_isa::BlockId;
use std::collections::{BTreeSet, HashMap, HashSet};

/// One natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header (target of the back edge(s)).
    pub header: BlockId,
    /// All blocks in the loop, including the header and any nested loops.
    pub body: BTreeSet<BlockId>,
    /// Index (into [`LoopNest::loops`]) of the innermost enclosing loop.
    pub parent: Option<usize>,
    /// Nesting depth (outermost loops have depth 0).
    pub depth: usize,
}

impl NaturalLoop {
    /// Number of blocks in the loop body (including nested loops).
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// `true` if the loop body is empty (cannot happen for loops produced by
    /// [`LoopNest::find`], which always contain at least the header).
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// `true` if `block` belongs to this loop (possibly via a nested loop).
    pub fn contains(&self, block: BlockId) -> bool {
        self.body.contains(&block)
    }
}

/// The set of natural loops of a procedure, with nesting information.
#[derive(Debug, Clone, Default)]
pub struct LoopNest {
    loops: Vec<NaturalLoop>,
    /// For each block, the index of the innermost loop containing it.
    innermost: HashMap<BlockId, usize>,
}

impl LoopNest {
    /// Finds all natural loops of `cfg` using `dominators`.
    pub fn find(cfg: &Cfg, dominators: &Dominators) -> Self {
        // 1. Find back edges and group them by header.
        let mut back_edges: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for &b in cfg.reverse_postorder() {
            for &succ in cfg.succs(b) {
                if dominators.dominates(succ, b) {
                    back_edges.entry(succ).or_default().push(b);
                }
            }
        }

        // 2. Natural loop of a header = header ∪ blocks that reach a back-edge
        //    source without passing through the header.
        let mut loops: Vec<NaturalLoop> = Vec::new();
        let mut headers: Vec<BlockId> = back_edges.keys().copied().collect();
        headers.sort_unstable();
        for header in headers {
            let mut body: BTreeSet<BlockId> = BTreeSet::new();
            body.insert(header);
            let mut stack: Vec<BlockId> = Vec::new();
            for &tail in &back_edges[&header] {
                if body.insert(tail) {
                    stack.push(tail);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in cfg.preds(b) {
                    if cfg.is_reachable(p) && body.insert(p) && p != header {
                        stack.push(p);
                    }
                }
            }
            loops.push(NaturalLoop {
                header,
                body,
                parent: None,
                depth: 0,
            });
        }

        // 3. Nesting: loop A is nested in B if A ≠ B and A's header is in B's
        //    body and A's body ⊆ B's body. The parent is the smallest such B.
        let mut parents: Vec<Option<usize>> = vec![None; loops.len()];
        for a in 0..loops.len() {
            let mut best: Option<usize> = None;
            for b in 0..loops.len() {
                if a == b {
                    continue;
                }
                if loops[b].body.contains(&loops[a].header)
                    && loops[a].body.is_subset(&loops[b].body)
                    && loops[a].body.len() < loops[b].body.len()
                {
                    best = match best {
                        None => Some(b),
                        Some(cur) if loops[b].body.len() < loops[cur].body.len() => Some(b),
                        other => other,
                    };
                }
            }
            parents[a] = best;
        }
        for (i, parent) in parents.iter().enumerate() {
            loops[i].parent = *parent;
        }
        // Depth: walk parent chains.
        for i in 0..loops.len() {
            let mut depth = 0;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                depth += 1;
                cur = loops[p].parent;
            }
            loops[i].depth = depth;
        }

        // 4. Innermost-loop map: the loop with the smallest body containing
        //    each block.
        let mut innermost: HashMap<BlockId, usize> = HashMap::new();
        for (i, l) in loops.iter().enumerate() {
            for &b in &l.body {
                match innermost.get(&b) {
                    Some(&existing) if loops[existing].body.len() <= l.body.len() => {}
                    _ => {
                        innermost.insert(b, i);
                    }
                }
            }
        }

        LoopNest { loops, innermost }
    }

    /// All loops, outermost-first order is *not* guaranteed; use
    /// [`NaturalLoop::depth`] when order matters.
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// The innermost loop containing `block`, if any.
    pub fn innermost_loop_of(&self, block: BlockId) -> Option<usize> {
        self.innermost.get(&block).copied()
    }

    /// `true` if `block` belongs to any loop.
    pub fn in_any_loop(&self, block: BlockId) -> bool {
        self.innermost.contains_key(&block)
    }

    /// The blocks of loop `index` that do *not* belong to any nested loop —
    /// the unit the paper analyses ("the inner loop's basic blocks form one
    /// loop and those that are only in the outer loop form another").
    pub fn exclusive_blocks(&self, index: usize) -> BTreeSet<BlockId> {
        let loop_ = &self.loops[index];
        let mut out = loop_.body.clone();
        for (j, other) in self.loops.iter().enumerate() {
            if j != index && other.parent == Some(index) {
                for b in &other.body {
                    out.remove(b);
                }
            }
        }
        // Also remove blocks of deeper descendants (grand-children).
        for &b in &loop_.body {
            if let Some(inner) = self.innermost.get(&b) {
                if *inner != index && self.loops[*inner].body.len() < loop_.body.len() {
                    out.remove(&b);
                }
            }
        }
        out
    }

    /// Set of all blocks that belong to at least one loop.
    pub fn all_loop_blocks(&self) -> HashSet<BlockId> {
        self.innermost.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_isa::builder::ProgramBuilder;
    use sdiq_isa::reg::int_reg;
    use sdiq_isa::Program;

    /// A doubly nested loop:
    /// entry(0) → outer_header(1) → inner_header(2) → inner_body(3) → 2
    ///          inner exits to outer_latch(4) → 1; outer exits to exit(5).
    fn nested_loops() -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let outer = p.block();
            let inner = p.block();
            let inner_body = p.block();
            let latch = p.block();
            let exit = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 0);
                bb.jump(outer);
            });
            p.with_block(outer, |bb| {
                bb.li(int_reg(2), 0);
                bb.jump(inner);
            });
            p.with_block(inner, |bb| {
                bb.addi(int_reg(2), int_reg(2), 1);
                bb.blt(int_reg(2), 5, inner_body, latch);
            });
            p.with_block(inner_body, |bb| {
                bb.addi(int_reg(3), int_reg(3), 1);
                bb.jump(inner);
            });
            p.with_block(latch, |bb| {
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.blt(int_reg(1), 3, outer, exit);
            });
            p.with_block(exit, |bb| {
                bb.ret();
            });
            p.set_entry(entry);
        }
        b.finish(main).unwrap()
    }

    fn analyse(program: &Program) -> (Cfg, LoopNest) {
        let proc = program.proc(program.entry);
        let cfg = Cfg::build(proc);
        let dom = Dominators::compute(&cfg);
        let nest = LoopNest::find(&cfg, &dom);
        (cfg, nest)
    }

    #[test]
    fn finds_both_loops() {
        let program = nested_loops();
        let (_, nest) = analyse(&program);
        assert_eq!(nest.loops().len(), 2);
        let headers: BTreeSet<_> = nest.loops().iter().map(|l| l.header).collect();
        assert!(headers.contains(&BlockId(1)));
        assert!(headers.contains(&BlockId(2)));
    }

    #[test]
    fn inner_loop_is_nested_in_outer() {
        let program = nested_loops();
        let (_, nest) = analyse(&program);
        let inner = nest
            .loops()
            .iter()
            .position(|l| l.header == BlockId(2))
            .unwrap();
        let outer = nest
            .loops()
            .iter()
            .position(|l| l.header == BlockId(1))
            .unwrap();
        assert_eq!(nest.loops()[inner].parent, Some(outer));
        assert_eq!(nest.loops()[inner].depth, 1);
        assert_eq!(nest.loops()[outer].depth, 0);
        assert!(nest.loops()[outer]
            .body
            .is_superset(&nest.loops()[inner].body));
    }

    #[test]
    fn exclusive_blocks_separate_inner_from_outer() {
        let program = nested_loops();
        let (_, nest) = analyse(&program);
        let inner = nest
            .loops()
            .iter()
            .position(|l| l.header == BlockId(2))
            .unwrap();
        let outer = nest
            .loops()
            .iter()
            .position(|l| l.header == BlockId(1))
            .unwrap();
        let outer_excl = nest.exclusive_blocks(outer);
        let inner_excl = nest.exclusive_blocks(inner);
        // Outer-exclusive blocks must not include any inner block.
        assert!(outer_excl.is_disjoint(&inner_excl));
        assert!(outer_excl.contains(&BlockId(1)));
        assert!(outer_excl.contains(&BlockId(4)));
        assert!(!outer_excl.contains(&BlockId(2)));
        assert!(inner_excl.contains(&BlockId(2)));
        assert!(inner_excl.contains(&BlockId(3)));
    }

    #[test]
    fn innermost_loop_map_prefers_smaller_loop() {
        let program = nested_loops();
        let (_, nest) = analyse(&program);
        let inner_idx = nest.innermost_loop_of(BlockId(3)).unwrap();
        assert_eq!(nest.loops()[inner_idx].header, BlockId(2));
        let latch_idx = nest.innermost_loop_of(BlockId(4)).unwrap();
        assert_eq!(nest.loops()[latch_idx].header, BlockId(1));
        assert!(nest.innermost_loop_of(BlockId(5)).is_none());
        assert!(!nest.in_any_loop(BlockId(0)));
    }

    #[test]
    fn straight_line_code_has_no_loops() {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 1);
                bb.ret();
            });
            p.set_entry(entry);
        }
        let program = b.finish(main).unwrap();
        let (_, nest) = analyse(&program);
        assert!(nest.loops().is_empty());
        assert!(nest.all_loop_blocks().is_empty());
    }

    #[test]
    fn self_loop_is_detected() {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let body = p.block();
            let exit = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 0);
                bb.jump(body);
            });
            p.with_block(body, |bb| {
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.blt(int_reg(1), 10, body, exit);
            });
            p.with_block(exit, |bb| {
                bb.ret();
            });
            p.set_entry(entry);
        }
        let program = b.finish(main).unwrap();
        let (_, nest) = analyse(&program);
        assert_eq!(nest.loops().len(), 1);
        assert_eq!(nest.loops()[0].header, BlockId(1));
        assert_eq!(nest.loops()[0].body.len(), 1);
    }
}
