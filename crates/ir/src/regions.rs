//! DAG-region formation.
//!
//! §4.1: "DAGs are formed from the basic blocks in the procedure using
//! control flow analysis. The first block in a DAG is the first block in the
//! procedure, or a block immediately following a function call."
//!
//! Blocks that belong to natural loops are handled by the loop analysis and
//! are excluded from DAG regions. Every reachable non-loop block is assigned
//! to exactly one region: regions are grown from their start blocks in
//! reverse post-order, claiming blocks breadth-first, and a block already
//! claimed by an earlier region (or belonging to a loop) acts as a barrier.

use crate::cfg::Cfg;
use crate::loops::LoopNest;
use sdiq_isa::{BlockId, Procedure};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// One DAG region: a set of non-loop blocks analysed together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagRegion {
    /// The block the region starts at (procedure entry or a post-call block).
    pub start: BlockId,
    /// Blocks belonging to the region, in breadth-first discovery order.
    pub blocks: Vec<BlockId>,
}

impl DagRegion {
    /// Number of blocks in the region.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if the region contains no blocks (never produced by
    /// [`DagRegions::find`]).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// All DAG regions of a procedure.
#[derive(Debug, Clone, Default)]
pub struct DagRegions {
    regions: Vec<DagRegion>,
}

impl DagRegions {
    /// Forms DAG regions for `proc` given its CFG and loop nest.
    pub fn find(proc: &Procedure, cfg: &Cfg, loops: &LoopNest) -> Self {
        let loop_blocks = loops.all_loop_blocks();

        // Region start candidates: procedure entry + every fall-through
        // successor of a block that ends in a call. Only reachable, non-loop
        // blocks can start a region.
        let mut starts: Vec<BlockId> = Vec::new();
        let push_start = |b: BlockId, starts: &mut Vec<BlockId>| {
            if cfg.is_reachable(b) && !loop_blocks.contains(&b) && !starts.contains(&b) {
                starts.push(b);
            }
        };
        push_start(proc.entry, &mut starts);
        for (bid, block) in proc.iter_blocks() {
            if block.callee().is_some() {
                if let Some(after) = block.fallthrough {
                    let _ = bid;
                    push_start(after, &mut starts);
                }
            }
        }
        // Process starts in reverse post-order so earlier program points claim
        // blocks first (deterministic assignment).
        starts.sort_by_key(|b| cfg.rpo_index(*b).unwrap_or(usize::MAX));

        let start_set: HashSet<BlockId> = starts.iter().copied().collect();
        let mut claimed: HashSet<BlockId> = HashSet::new();
        let mut regions = Vec::new();
        for &start in &starts {
            if claimed.contains(&start) {
                continue;
            }
            let mut blocks = Vec::new();
            let mut queue = VecDeque::new();
            queue.push_back(start);
            claimed.insert(start);
            while let Some(b) = queue.pop_front() {
                blocks.push(b);
                for &s in cfg.succs(b) {
                    if claimed.contains(&s)
                        || loop_blocks.contains(&s)
                        || start_set.contains(&s)
                        || !cfg.is_reachable(s)
                    {
                        continue;
                    }
                    claimed.insert(s);
                    queue.push_back(s);
                }
            }
            regions.push(DagRegion { start, blocks });
        }

        // Sweep up any reachable non-loop blocks not reachable from a start
        // without crossing loops (e.g. blocks only reachable through a loop
        // exit). Each becomes the start of its own region grown the same way.
        let mut leftovers: Vec<BlockId> = cfg
            .reverse_postorder()
            .iter()
            .copied()
            .filter(|b| !loop_blocks.contains(b) && !claimed.contains(b))
            .collect();
        while !leftovers.is_empty() {
            let start = leftovers[0];
            let mut blocks = Vec::new();
            let mut queue = VecDeque::new();
            queue.push_back(start);
            claimed.insert(start);
            while let Some(b) = queue.pop_front() {
                blocks.push(b);
                for &s in cfg.succs(b) {
                    if claimed.contains(&s) || loop_blocks.contains(&s) || !cfg.is_reachable(s) {
                        continue;
                    }
                    claimed.insert(s);
                    queue.push_back(s);
                }
            }
            regions.push(DagRegion { start, blocks });
            leftovers.retain(|b| !claimed.contains(b));
        }

        DagRegions { regions }
    }

    /// The regions, in formation order (entry region first).
    pub fn regions(&self) -> &[DagRegion] {
        &self.regions
    }

    /// Total number of blocks covered by all regions.
    pub fn total_blocks(&self) -> usize {
        self.regions.iter().map(|r| r.len()).sum()
    }

    /// The set of all blocks covered by any region.
    pub fn covered_blocks(&self) -> BTreeSet<BlockId> {
        self.regions
            .iter()
            .flat_map(|r| r.blocks.iter().copied())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominators::Dominators;
    use sdiq_isa::builder::ProgramBuilder;
    use sdiq_isa::reg::int_reg;
    use sdiq_isa::Program;

    /// main: b0 (calls callee) → b1 → b2(loop) → b3; callee is trivial.
    fn program_with_call_and_loop() -> Program {
        let mut b = ProgramBuilder::new();
        let callee = b.procedure("callee");
        {
            let p = b.proc_mut(callee);
            let e = p.block();
            p.with_block(e, |bb| {
                bb.addi(int_reg(9), int_reg(9), 1);
                bb.ret();
            });
            p.set_entry(e);
        }
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let b0 = p.block();
            let b1 = p.block();
            let b2 = p.block();
            let b3 = p.block();
            p.with_block(b0, |bb| {
                bb.li(int_reg(1), 0);
                bb.call(callee, b1);
            });
            p.with_block(b1, |bb| {
                bb.li(int_reg(2), 0);
                bb.jump(b2);
            });
            p.with_block(b2, |bb| {
                bb.addi(int_reg(2), int_reg(2), 1);
                bb.blt(int_reg(2), 8, b2, b3);
            });
            p.with_block(b3, |bb| {
                bb.ret();
            });
            p.set_entry(b0);
        }
        b.finish(main).unwrap()
    }

    fn analyse(program: &Program, name: &str) -> (Cfg, LoopNest, DagRegions) {
        let pid = program.proc_by_name(name).unwrap();
        let proc = program.proc(pid);
        let cfg = Cfg::build(proc);
        let dom = Dominators::compute(&cfg);
        let loops = LoopNest::find(&cfg, &dom);
        let regions = DagRegions::find(proc, &cfg, &loops);
        (cfg, loops, regions)
    }

    #[test]
    fn post_call_block_starts_a_new_region() {
        let program = program_with_call_and_loop();
        let (_, _, regions) = analyse(&program, "main");
        let starts: Vec<BlockId> = regions.regions().iter().map(|r| r.start).collect();
        assert!(starts.contains(&BlockId(0)), "entry region");
        assert!(starts.contains(&BlockId(1)), "post-call region");
    }

    #[test]
    fn loop_blocks_are_not_in_any_region() {
        let program = program_with_call_and_loop();
        let (_, loops, regions) = analyse(&program, "main");
        assert_eq!(loops.loops().len(), 1);
        let covered = regions.covered_blocks();
        assert!(!covered.contains(&BlockId(2)));
        // Non-loop reachable blocks are all covered exactly once.
        assert!(covered.contains(&BlockId(0)));
        assert!(covered.contains(&BlockId(1)));
        assert!(covered.contains(&BlockId(3)));
        assert_eq!(regions.total_blocks(), covered.len());
    }

    #[test]
    fn every_reachable_non_loop_block_is_covered_exactly_once() {
        let program = program_with_call_and_loop();
        let (cfg, loops, regions) = analyse(&program, "main");
        let mut count = std::collections::HashMap::new();
        for r in regions.regions() {
            for b in &r.blocks {
                *count.entry(*b).or_insert(0) += 1;
            }
        }
        for &b in cfg.reverse_postorder() {
            if !loops.in_any_loop(b) {
                assert_eq!(count.get(&b), Some(&1), "block {b} covered once");
            }
        }
    }

    #[test]
    fn procedure_without_calls_or_loops_has_one_region() {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let b0 = p.block();
            let b1 = p.block();
            let b2 = p.block();
            p.with_block(b0, |bb| {
                bb.li(int_reg(1), 3);
                bb.bgt(int_reg(1), 0, b2, b1);
            });
            p.with_block(b1, |bb| {
                bb.jump(b2);
            });
            p.with_block(b2, |bb| {
                bb.ret();
            });
            p.set_entry(b0);
        }
        let program = b.finish(main).unwrap();
        let (_, _, regions) = analyse(&program, "main");
        assert_eq!(regions.regions().len(), 1);
        assert_eq!(regions.regions()[0].len(), 3);
    }
}
