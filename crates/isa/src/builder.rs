//! Fluent builders for constructing [`Program`]s.
//!
//! The workload generator, the compiler tests and the examples all construct
//! programs through this API rather than filling in struct fields by hand,
//! which keeps block/procedure references consistent and validated.

use crate::inst::Instruction;
use crate::opcode::Opcode;
use crate::program::{BasicBlock, BlockId, ProcId, Procedure, Program};
use crate::reg::ArchReg;

/// Builder for a whole [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    procedures: Vec<ProcedureBuilder>,
    name: String,
}

impl ProgramBuilder {
    /// Creates an empty program builder.
    pub fn new() -> Self {
        ProgramBuilder {
            procedures: Vec::new(),
            name: "program".to_string(),
        }
    }

    /// Sets the program's descriptive name.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// Adds a new (initially empty) procedure and returns its id.
    pub fn procedure(&mut self, name: impl Into<String>) -> ProcId {
        let id = ProcId(self.procedures.len());
        self.procedures.push(ProcedureBuilder::new(name, false));
        id
    }

    /// Adds a new library procedure (§4.4: the compiler does not analyse
    /// library routines and lets the issue queue grow to maximum size before
    /// calling them).
    pub fn library_procedure(&mut self, name: impl Into<String>) -> ProcId {
        let id = ProcId(self.procedures.len());
        self.procedures.push(ProcedureBuilder::new(name, true));
        id
    }

    /// Mutable access to a procedure builder.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by this builder.
    pub fn proc_mut(&mut self, id: ProcId) -> &mut ProcedureBuilder {
        &mut self.procedures[id.0]
    }

    /// Number of procedures added so far.
    pub fn proc_count(&self) -> usize {
        self.procedures.len()
    }

    /// Finishes the program with `entry` as the entry procedure.
    ///
    /// # Errors
    ///
    /// Returns the first validation error found (see [`Program::validate`]).
    pub fn finish(self, entry: ProcId) -> Result<Program, String> {
        let program = Program {
            procedures: self
                .procedures
                .into_iter()
                .map(ProcedureBuilder::into_procedure)
                .collect(),
            entry,
            name: self.name,
        };
        program.validate()?;
        Ok(program)
    }
}

/// Builder for a single [`Procedure`].
#[derive(Debug)]
pub struct ProcedureBuilder {
    name: String,
    blocks: Vec<BasicBlock>,
    entry: BlockId,
    is_library: bool,
}

impl ProcedureBuilder {
    fn new(name: impl Into<String>, is_library: bool) -> Self {
        ProcedureBuilder {
            name: name.into(),
            blocks: Vec::new(),
            entry: BlockId(0),
            is_library,
        }
    }

    /// Adds a new empty basic block and returns its id.
    pub fn block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len());
        self.blocks.push(BasicBlock::new());
        id
    }

    /// Sets the procedure's entry block.
    pub fn set_entry(&mut self, entry: BlockId) {
        self.entry = entry;
    }

    /// Populates block `id` through a [`BlockBuilder`] closure.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by [`ProcedureBuilder::block`].
    pub fn with_block<F>(&mut self, id: BlockId, f: F)
    where
        F: FnOnce(&mut BlockBuilder<'_>),
    {
        let mut builder = BlockBuilder {
            block: &mut self.blocks[id.0],
        };
        f(&mut builder);
    }

    /// Number of blocks created so far.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    fn into_procedure(self) -> Procedure {
        Procedure {
            name: self.name,
            blocks: self.blocks,
            entry: self.entry,
            is_library: self.is_library,
        }
    }
}

/// Builder for the instructions of one basic block.
///
/// Every method appends one instruction. Control-flow helpers also set the
/// block's fall-through successor where appropriate.
#[derive(Debug)]
pub struct BlockBuilder<'a> {
    block: &'a mut BasicBlock,
}

impl<'a> BlockBuilder<'a> {
    /// Appends an arbitrary pre-built instruction.
    pub fn push(&mut self, inst: Instruction) -> &mut Self {
        self.block.instructions.push(inst);
        self
    }

    /// Sets the block's fall-through successor explicitly.
    pub fn fallthrough(&mut self, target: BlockId) -> &mut Self {
        self.block.fallthrough = Some(target);
        self
    }

    // --- integer arithmetic -------------------------------------------------

    /// `dest = imm`
    pub fn li(&mut self, dest: ArchReg, imm: i64) -> &mut Self {
        self.push(Instruction::ri(Opcode::Li, dest, imm))
    }

    /// `dest = src`
    pub fn mov(&mut self, dest: ArchReg, src: ArchReg) -> &mut Self {
        self.push(Instruction {
            dest: Some(dest),
            srcs: [Some(src), None],
            ..Instruction::new(Opcode::Mov)
        })
    }

    /// `dest = a + b`
    pub fn add(&mut self, dest: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Instruction::rrr(Opcode::Add, dest, a, b))
    }

    /// `dest = a + imm`
    pub fn addi(&mut self, dest: ArchReg, a: ArchReg, imm: i64) -> &mut Self {
        self.push(Instruction::rri(Opcode::Addi, dest, a, imm))
    }

    /// `dest = a - b`
    pub fn sub(&mut self, dest: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Instruction::rrr(Opcode::Sub, dest, a, b))
    }

    /// `dest = a - imm`
    pub fn subi(&mut self, dest: ArchReg, a: ArchReg, imm: i64) -> &mut Self {
        self.push(Instruction::rri(Opcode::Subi, dest, a, imm))
    }

    /// `dest = a * b`
    pub fn mul(&mut self, dest: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Instruction::rrr(Opcode::Mul, dest, a, b))
    }

    /// `dest = a / b`
    pub fn div(&mut self, dest: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Instruction::rrr(Opcode::Div, dest, a, b))
    }

    /// `dest = a & b`
    pub fn and(&mut self, dest: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Instruction::rrr(Opcode::And, dest, a, b))
    }

    /// `dest = a | b`
    pub fn or(&mut self, dest: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Instruction::rrr(Opcode::Or, dest, a, b))
    }

    /// `dest = a ^ b`
    pub fn xor(&mut self, dest: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Instruction::rrr(Opcode::Xor, dest, a, b))
    }

    /// `dest = a << b`
    pub fn shl(&mut self, dest: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Instruction::rrr(Opcode::Shl, dest, a, b))
    }

    /// `dest = a >> b`
    pub fn shr(&mut self, dest: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Instruction::rrr(Opcode::Shr, dest, a, b))
    }

    /// `dest = (a < b) as i64`
    pub fn slt(&mut self, dest: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Instruction::rrr(Opcode::Slt, dest, a, b))
    }

    /// `dest = (a < imm) as i64`
    pub fn slti(&mut self, dest: ArchReg, a: ArchReg, imm: i64) -> &mut Self {
        self.push(Instruction::rri(Opcode::Slti, dest, a, imm))
    }

    // --- memory -------------------------------------------------------------

    /// `dest = mem[base + offset]`
    pub fn load(&mut self, dest: ArchReg, base: ArchReg, offset: i64) -> &mut Self {
        self.push(Instruction::load(Opcode::Load, dest, base, offset))
    }

    /// `mem[base + offset] = value`
    pub fn store(&mut self, value: ArchReg, base: ArchReg, offset: i64) -> &mut Self {
        self.push(Instruction::store(Opcode::Store, value, base, offset))
    }

    /// `dest(fp) = mem[base + offset]`
    pub fn fload(&mut self, dest: ArchReg, base: ArchReg, offset: i64) -> &mut Self {
        self.push(Instruction::load(Opcode::FLoad, dest, base, offset))
    }

    /// `mem[base + offset] = value(fp)`
    pub fn fstore(&mut self, value: ArchReg, base: ArchReg, offset: i64) -> &mut Self {
        self.push(Instruction::store(Opcode::FStore, value, base, offset))
    }

    // --- floating point -----------------------------------------------------

    /// `dest = a + b` (FP)
    pub fn fadd(&mut self, dest: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Instruction::rrr(Opcode::FAdd, dest, a, b))
    }

    /// `dest = a - b` (FP)
    pub fn fsub(&mut self, dest: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Instruction::rrr(Opcode::FSub, dest, a, b))
    }

    /// `dest = a * b` (FP)
    pub fn fmul(&mut self, dest: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Instruction::rrr(Opcode::FMul, dest, a, b))
    }

    /// `dest = a / b` (FP)
    pub fn fdiv(&mut self, dest: ArchReg, a: ArchReg, b: ArchReg) -> &mut Self {
        self.push(Instruction::rrr(Opcode::FDiv, dest, a, b))
    }

    /// FP register move.
    pub fn fmov(&mut self, dest: ArchReg, src: ArchReg) -> &mut Self {
        self.push(Instruction {
            dest: Some(dest),
            srcs: [Some(src), None],
            ..Instruction::new(Opcode::FMov)
        })
    }

    /// Integer → FP conversion.
    pub fn itof(&mut self, dest: ArchReg, src: ArchReg) -> &mut Self {
        self.push(Instruction {
            dest: Some(dest),
            srcs: [Some(src), None],
            ..Instruction::new(Opcode::ItoF)
        })
    }

    /// FP → integer conversion.
    pub fn ftoi(&mut self, dest: ArchReg, src: ArchReg) -> &mut Self {
        self.push(Instruction {
            dest: Some(dest),
            srcs: [Some(src), None],
            ..Instruction::new(Opcode::FtoI)
        })
    }

    // --- control flow -------------------------------------------------------

    /// Conditional branch `if a == b goto taken else fallthrough`.
    pub fn beq_rr(&mut self, a: ArchReg, b: ArchReg, taken: BlockId, ft: BlockId) -> &mut Self {
        self.block.fallthrough = Some(ft);
        self.push(Instruction::branch_rr(Opcode::Beq, a, b, taken))
    }

    /// Conditional branch `if a == imm goto taken else fallthrough`.
    pub fn beq(&mut self, a: ArchReg, imm: i64, taken: BlockId, ft: BlockId) -> &mut Self {
        self.block.fallthrough = Some(ft);
        self.push(Instruction::branch_ri(Opcode::Beq, a, imm, taken))
    }

    /// Conditional branch `if a != imm goto taken else fallthrough`.
    pub fn bne(&mut self, a: ArchReg, imm: i64, taken: BlockId, ft: BlockId) -> &mut Self {
        self.block.fallthrough = Some(ft);
        self.push(Instruction::branch_ri(Opcode::Bne, a, imm, taken))
    }

    /// Conditional branch `if a != b goto taken else fallthrough`.
    pub fn bne_rr(&mut self, a: ArchReg, b: ArchReg, taken: BlockId, ft: BlockId) -> &mut Self {
        self.block.fallthrough = Some(ft);
        self.push(Instruction::branch_rr(Opcode::Bne, a, b, taken))
    }

    /// Conditional branch `if a < imm goto taken else fallthrough`.
    pub fn blt(&mut self, a: ArchReg, imm: i64, taken: BlockId, ft: BlockId) -> &mut Self {
        self.block.fallthrough = Some(ft);
        self.push(Instruction::branch_ri(Opcode::Blt, a, imm, taken))
    }

    /// Conditional branch `if a < b goto taken else fallthrough`.
    pub fn blt_rr(&mut self, a: ArchReg, b: ArchReg, taken: BlockId, ft: BlockId) -> &mut Self {
        self.block.fallthrough = Some(ft);
        self.push(Instruction::branch_rr(Opcode::Blt, a, b, taken))
    }

    /// Conditional branch `if a >= imm goto taken else fallthrough`.
    pub fn bge(&mut self, a: ArchReg, imm: i64, taken: BlockId, ft: BlockId) -> &mut Self {
        self.block.fallthrough = Some(ft);
        self.push(Instruction::branch_ri(Opcode::Bge, a, imm, taken))
    }

    /// Conditional branch `if a > imm goto taken else fallthrough`.
    pub fn bgt(&mut self, a: ArchReg, imm: i64, taken: BlockId, ft: BlockId) -> &mut Self {
        self.block.fallthrough = Some(ft);
        self.push(Instruction::branch_ri(Opcode::Bgt, a, imm, taken))
    }

    /// Conditional branch `if a <= imm goto taken else fallthrough`.
    pub fn ble(&mut self, a: ArchReg, imm: i64, taken: BlockId, ft: BlockId) -> &mut Self {
        self.block.fallthrough = Some(ft);
        self.push(Instruction::branch_ri(Opcode::Ble, a, imm, taken))
    }

    /// Unconditional jump.
    pub fn jump(&mut self, target: BlockId) -> &mut Self {
        self.push(Instruction::jump(target))
    }

    /// Procedure call; execution resumes at `return_to` after the callee
    /// returns.
    pub fn call(&mut self, callee: ProcId, return_to: BlockId) -> &mut Self {
        self.block.fallthrough = Some(return_to);
        self.push(Instruction::call(callee))
    }

    /// Return from the current procedure.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Instruction::ret())
    }

    // --- hints / no-ops ------------------------------------------------------

    /// Plain no-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instruction::new(Opcode::Nop))
    }

    /// Special NOOP carrying `max_new_range` (the paper's NOOP technique).
    pub fn hint_noop(&mut self, max_new_range: u8) -> &mut Self {
        self.push(Instruction::hint_noop(max_new_range))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{fp_reg, int_reg};

    #[test]
    fn builder_produces_valid_single_block_program() {
        let mut b = ProgramBuilder::new();
        b.name("tiny");
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 5);
                bb.addi(int_reg(2), int_reg(1), 3);
                bb.mul(int_reg(3), int_reg(1), int_reg(2));
                bb.ret();
            });
            p.set_entry(entry);
        }
        let program = b.finish(main).unwrap();
        assert_eq!(program.name, "tiny");
        assert_eq!(program.static_instruction_count(), 4);
        assert!(program.validate().is_ok());
    }

    #[test]
    fn branch_helpers_set_fallthrough() {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let body = p.block();
            let exit = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 0);
                bb.bgt(int_reg(1), 10, exit, body);
            });
            p.with_block(body, |bb| {
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.jump(exit);
            });
            p.with_block(exit, |bb| {
                bb.ret();
            });
            p.set_entry(entry);
        }
        let program = b.finish(main).unwrap();
        let proc = program.proc(main);
        assert_eq!(proc.block(BlockId(0)).fallthrough, Some(BlockId(1)));
        assert_eq!(
            proc.block(BlockId(0)).successors(),
            vec![BlockId(2), BlockId(1)]
        );
    }

    #[test]
    fn library_procedures_are_marked() {
        let mut b = ProgramBuilder::new();
        let lib = b.library_procedure("memcpy");
        {
            let p = b.proc_mut(lib);
            let entry = p.block();
            p.with_block(entry, |bb| {
                bb.nop();
                bb.ret();
            });
            p.set_entry(entry);
        }
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let b0 = p.block();
            let b1 = p.block();
            p.with_block(b0, |bb| {
                bb.call(lib, b1);
            });
            p.with_block(b1, |bb| {
                bb.ret();
            });
            p.set_entry(b0);
        }
        let program = b.finish(main).unwrap();
        assert!(program.proc(lib).is_library);
        assert!(!program.proc(main).is_library);
    }

    #[test]
    fn fp_helpers_build_valid_instructions() {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 4);
                bb.itof(fp_reg(0), int_reg(1));
                bb.fadd(fp_reg(1), fp_reg(0), fp_reg(0));
                bb.fmul(fp_reg(2), fp_reg(1), fp_reg(0));
                bb.ftoi(int_reg(2), fp_reg(2));
                bb.ret();
            });
            p.set_entry(entry);
        }
        assert!(b.finish(main).is_ok());
    }

    #[test]
    fn finish_rejects_invalid_program() {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            // Block without terminator or fall-through is invalid.
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 5);
            });
            p.set_entry(entry);
        }
        assert!(b.finish(main).is_err());
    }
}
