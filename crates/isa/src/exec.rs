//! Functional executor.
//!
//! The timing simulator in `sdiq-sim` is trace-driven: the architecturally
//! correct (committed) path is produced here by executing the program's
//! semantics — register arithmetic, memory, branch outcomes, calls and
//! returns — and the timing model then replays it cycle by cycle, adding
//! speculation, queuing and resource effects on top. This mirrors how
//! SimpleScalar's `sim-outorder` separates functional from timing simulation.

use crate::inst::Instruction;
use crate::opcode::Opcode;
use crate::program::{AddressMap, BlockId, InstrLoc, ProcId, Program};
use crate::reg::{ArchReg, RegClass, NUM_ARCH_FP_REGS, NUM_ARCH_INT_REGS};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Maximum call-stack depth before the executor reports an error.
pub const MAX_CALL_DEPTH: usize = 4096;

/// Base address of the data segment used for default memory contents.
pub const DATA_BASE: u64 = 0x1000_0000;

/// One committed dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynInst {
    /// Dynamic sequence number (0-based commit order).
    pub seq: u64,
    /// Static instruction this instance came from.
    pub loc: InstrLoc,
    /// Instruction address (PC).
    pub addr: u64,
    /// Effective address for loads and stores.
    pub mem_addr: Option<u64>,
    /// For conditional branches: whether the branch was taken.
    pub taken: Option<bool>,
}

/// The committed dynamic instruction trace of a program execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Committed instructions in program order.
    pub committed: Vec<DynInst>,
    /// `true` if execution stopped because the dynamic instruction cap was
    /// reached rather than because the program returned from its entry
    /// procedure. Both are normal for the experiments (the paper simulates a
    /// 100M-instruction sample of much longer programs).
    pub hit_cap: bool,
    /// Number of conditional branches in the trace.
    pub cond_branches: u64,
    /// Number of taken conditional branches.
    pub taken_branches: u64,
    /// Number of memory operations in the trace.
    pub mem_ops: u64,
}

impl Trace {
    /// Number of committed dynamic instructions.
    pub fn len(&self) -> usize {
        self.committed.len()
    }

    /// `true` if nothing was committed.
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty()
    }

    /// Fraction of conditional branches that were taken.
    pub fn taken_ratio(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.taken_branches as f64 / self.cond_branches as f64
        }
    }
}

/// Errors the functional executor can report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecError {
    /// The call stack exceeded [`MAX_CALL_DEPTH`] frames.
    CallStackOverflow {
        /// Procedure whose call overflowed the stack.
        at: ProcId,
    },
    /// The program is structurally invalid (should have been caught by
    /// [`Program::validate`], reported defensively).
    Malformed(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::CallStackOverflow { at } => {
                write!(f, "call stack exceeded {MAX_CALL_DEPTH} frames at {at}")
            }
            ExecError::Malformed(msg) => write!(f, "malformed program: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {}

#[derive(Debug, Clone, Copy)]
struct Frame {
    proc: ProcId,
    return_block: BlockId,
}

/// Deterministic default memory contents: a splitmix64-style hash of the
/// address. Uninitialised loads therefore return reproducible pseudo-random
/// values, which gives data-dependent branches and pointer-chasing workloads
/// stable behaviour across runs.
fn default_memory_value(addr: u64) -> i64 {
    let mut z = addr.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) as i64
}

/// The functional executor.
///
/// See the [module documentation](self) for the role it plays. The executor
/// borrows the program; its register and memory state live inside it so a
/// single executor can only run once (create a new one per run).
#[derive(Debug)]
pub struct Executor<'a> {
    program: &'a Program,
    addr_map: AddressMap,
    int_regs: [i64; NUM_ARCH_INT_REGS as usize],
    fp_regs: [f64; NUM_ARCH_FP_REGS as usize],
    memory: HashMap<u64, i64>,
    call_stack: Vec<Frame>,
}

impl<'a> Executor<'a> {
    /// Creates an executor for `program` with zeroed registers and
    /// hash-initialised memory.
    pub fn new(program: &'a Program) -> Self {
        Executor {
            program,
            addr_map: AddressMap::build(program),
            int_regs: [0; NUM_ARCH_INT_REGS as usize],
            fp_regs: [0.0; NUM_ARCH_FP_REGS as usize],
            memory: HashMap::new(),
            call_stack: Vec::new(),
        }
    }

    /// Pre-initialises a memory word (useful for tests and workloads that
    /// need specific data).
    pub fn poke(&mut self, addr: u64, value: i64) {
        self.memory.insert(addr, value);
    }

    /// Reads a memory word as the program would see it.
    pub fn peek(&self, addr: u64) -> i64 {
        *self
            .memory
            .get(&addr)
            .unwrap_or(&default_memory_value(addr))
    }

    /// The address map built for the program (shared with the timing
    /// simulator so both agree on instruction addresses).
    pub fn addr_map(&self) -> &AddressMap {
        &self.addr_map
    }

    fn read_int(&self, reg: ArchReg) -> i64 {
        debug_assert_eq!(reg.class(), RegClass::Int);
        self.int_regs[reg.index() as usize]
    }

    fn write_int(&mut self, reg: ArchReg, value: i64) {
        debug_assert_eq!(reg.class(), RegClass::Int);
        self.int_regs[reg.index() as usize] = value;
    }

    fn read_fp(&self, reg: ArchReg) -> f64 {
        debug_assert_eq!(reg.class(), RegClass::Fp);
        self.fp_regs[reg.index() as usize]
    }

    fn write_fp(&mut self, reg: ArchReg, value: f64) {
        debug_assert_eq!(reg.class(), RegClass::Fp);
        self.fp_regs[reg.index() as usize] = value;
    }

    fn mem_load(&mut self, addr: u64) -> i64 {
        *self
            .memory
            .entry(addr)
            .or_insert_with(|| default_memory_value(addr))
    }

    fn mem_store(&mut self, addr: u64, value: i64) {
        self.memory.insert(addr, value);
    }

    /// Second comparison operand of a branch / ALU op: the second source
    /// register if present, otherwise the immediate.
    fn second_operand(&self, inst: &Instruction) -> i64 {
        if let Some(r) = inst.srcs[1] {
            self.read_int(r)
        } else {
            inst.imm.unwrap_or(0)
        }
    }

    fn branch_taken(&self, inst: &Instruction) -> bool {
        let a = self.read_int(inst.srcs[0].expect("branch has a source"));
        let b = self.second_operand(inst);
        match inst.opcode {
            Opcode::Beq => a == b,
            Opcode::Bne => a != b,
            Opcode::Blt => a < b,
            Opcode::Bge => a >= b,
            Opcode::Bgt => a > b,
            Opcode::Ble => a <= b,
            other => unreachable!("branch_taken on non-branch opcode {other}"),
        }
    }

    /// Executes one non-control instruction, updating state and returning
    /// the effective memory address if it was a memory operation.
    fn execute_data(&mut self, inst: &Instruction) -> Option<u64> {
        use Opcode::*;
        match inst.opcode {
            Li => {
                self.write_int(inst.dest.unwrap(), inst.imm.unwrap());
            }
            Mov => {
                let v = self.read_int(inst.srcs[0].unwrap());
                self.write_int(inst.dest.unwrap(), v);
            }
            Add | Addi => {
                let a = self.read_int(inst.srcs[0].unwrap());
                let b = self.second_operand(inst);
                self.write_int(inst.dest.unwrap(), a.wrapping_add(b));
            }
            Sub | Subi => {
                let a = self.read_int(inst.srcs[0].unwrap());
                let b = self.second_operand(inst);
                self.write_int(inst.dest.unwrap(), a.wrapping_sub(b));
            }
            Mul => {
                let a = self.read_int(inst.srcs[0].unwrap());
                let b = self.read_int(inst.srcs[1].unwrap());
                self.write_int(inst.dest.unwrap(), a.wrapping_mul(b));
            }
            Div => {
                let a = self.read_int(inst.srcs[0].unwrap());
                let b = self.read_int(inst.srcs[1].unwrap());
                self.write_int(
                    inst.dest.unwrap(),
                    if b == 0 { 0 } else { a.wrapping_div(b) },
                );
            }
            And => {
                let a = self.read_int(inst.srcs[0].unwrap());
                let b = self.read_int(inst.srcs[1].unwrap());
                self.write_int(inst.dest.unwrap(), a & b);
            }
            Or => {
                let a = self.read_int(inst.srcs[0].unwrap());
                let b = self.read_int(inst.srcs[1].unwrap());
                self.write_int(inst.dest.unwrap(), a | b);
            }
            Xor => {
                let a = self.read_int(inst.srcs[0].unwrap());
                let b = self.read_int(inst.srcs[1].unwrap());
                self.write_int(inst.dest.unwrap(), a ^ b);
            }
            Shl => {
                let a = self.read_int(inst.srcs[0].unwrap());
                let b = self.read_int(inst.srcs[1].unwrap());
                self.write_int(inst.dest.unwrap(), a.wrapping_shl((b & 63) as u32));
            }
            Shr => {
                let a = self.read_int(inst.srcs[0].unwrap());
                let b = self.read_int(inst.srcs[1].unwrap());
                self.write_int(inst.dest.unwrap(), a.wrapping_shr((b & 63) as u32));
            }
            Slt => {
                let a = self.read_int(inst.srcs[0].unwrap());
                let b = self.read_int(inst.srcs[1].unwrap());
                self.write_int(inst.dest.unwrap(), i64::from(a < b));
            }
            Slti => {
                let a = self.read_int(inst.srcs[0].unwrap());
                let b = inst.imm.unwrap();
                self.write_int(inst.dest.unwrap(), i64::from(a < b));
            }
            Load => {
                let m = inst.mem.unwrap();
                let addr = (self.read_int(m.base).wrapping_add(m.offset)) as u64;
                let v = self.mem_load(addr);
                self.write_int(inst.dest.unwrap(), v);
                return Some(addr);
            }
            Store => {
                let m = inst.mem.unwrap();
                let addr = (self.read_int(m.base).wrapping_add(m.offset)) as u64;
                let v = self.read_int(inst.srcs[1].unwrap());
                self.mem_store(addr, v);
                return Some(addr);
            }
            FLoad => {
                let m = inst.mem.unwrap();
                let addr = (self.read_int(m.base).wrapping_add(m.offset)) as u64;
                let v = self.mem_load(addr);
                self.write_fp(inst.dest.unwrap(), v as f64);
                return Some(addr);
            }
            FStore => {
                let m = inst.mem.unwrap();
                let addr = (self.read_int(m.base).wrapping_add(m.offset)) as u64;
                let v = self.read_fp(inst.srcs[1].unwrap());
                self.mem_store(addr, v as i64);
                return Some(addr);
            }
            FAdd => {
                let a = self.read_fp(inst.srcs[0].unwrap());
                let b = self.read_fp(inst.srcs[1].unwrap());
                self.write_fp(inst.dest.unwrap(), a + b);
            }
            FSub => {
                let a = self.read_fp(inst.srcs[0].unwrap());
                let b = self.read_fp(inst.srcs[1].unwrap());
                self.write_fp(inst.dest.unwrap(), a - b);
            }
            FMul => {
                let a = self.read_fp(inst.srcs[0].unwrap());
                let b = self.read_fp(inst.srcs[1].unwrap());
                self.write_fp(inst.dest.unwrap(), a * b);
            }
            FDiv => {
                let a = self.read_fp(inst.srcs[0].unwrap());
                let b = self.read_fp(inst.srcs[1].unwrap());
                self.write_fp(inst.dest.unwrap(), if b == 0.0 { 0.0 } else { a / b });
            }
            FMov => {
                let v = self.read_fp(inst.srcs[0].unwrap());
                self.write_fp(inst.dest.unwrap(), v);
            }
            ItoF => {
                let v = self.read_int(inst.srcs[0].unwrap());
                self.write_fp(inst.dest.unwrap(), v as f64);
            }
            FtoI => {
                let v = self.read_fp(inst.srcs[0].unwrap());
                let clamped = if v.is_finite() {
                    v.clamp(i64::MIN as f64, i64::MAX as f64) as i64
                } else {
                    0
                };
                self.write_int(inst.dest.unwrap(), clamped);
            }
            Nop | HintNoop => {}
            Beq | Bne | Blt | Bge | Bgt | Ble | Jump | Call | Return => {
                unreachable!("control flow handled by the main loop")
            }
        }
        None
    }

    /// Runs the program from its entry point for at most `max_insts` dynamic
    /// instructions and returns the committed trace.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::CallStackOverflow`] if the program recurses more
    /// than [`MAX_CALL_DEPTH`] deep, or [`ExecError::Malformed`] if an
    /// instruction references state a validated program cannot reference.
    pub fn run(mut self, max_insts: u64) -> Result<Trace, ExecError> {
        let mut committed = Vec::new();
        let mut cond_branches = 0u64;
        let mut taken_branches = 0u64;
        let mut mem_ops = 0u64;

        let mut proc_id = self.program.entry;
        let mut block_id = self.program.proc(proc_id).entry;
        let mut index = 0usize;
        let mut seq = 0u64;
        let mut hit_cap = false;

        'outer: loop {
            if seq >= max_insts {
                hit_cap = true;
                break;
            }
            let proc = self.program.proc(proc_id);
            let block = proc.block(block_id);
            if index >= block.instructions.len() {
                // Fell off the end of a block without a terminator: follow the
                // fall-through edge (validation guarantees it exists).
                match block.fallthrough {
                    Some(next) => {
                        block_id = next;
                        index = 0;
                        continue;
                    }
                    None => {
                        return Err(ExecError::Malformed(format!(
                            "{proc_id}:{block_id} has no terminator and no fall-through"
                        )));
                    }
                }
            }

            let loc = InstrLoc {
                proc: proc_id,
                block: block_id,
                index,
            };
            let inst = &proc.block(block_id).instructions[index];
            let addr = self.addr_map.addr_of(loc);
            let opcode = inst.opcode;

            let mut record = DynInst {
                seq,
                loc,
                addr,
                mem_addr: None,
                taken: None,
            };

            if opcode.is_control() {
                match opcode {
                    Opcode::Jump => {
                        block_id = inst.branch_target.expect("validated jump target");
                        index = 0;
                    }
                    Opcode::Call => {
                        let callee = inst.call_target.expect("validated call target");
                        let return_block = block.fallthrough.expect("validated call fall-through");
                        if self.call_stack.len() >= MAX_CALL_DEPTH {
                            return Err(ExecError::CallStackOverflow { at: proc_id });
                        }
                        self.call_stack.push(Frame {
                            proc: proc_id,
                            return_block,
                        });
                        proc_id = callee;
                        block_id = self.program.proc(callee).entry;
                        index = 0;
                    }
                    Opcode::Return => match self.call_stack.pop() {
                        Some(frame) => {
                            proc_id = frame.proc;
                            block_id = frame.return_block;
                            index = 0;
                        }
                        None => {
                            // Returning from the entry procedure ends the program.
                            committed.push(record);
                            break 'outer;
                        }
                    },
                    _ => {
                        // Conditional branch.
                        let taken = self.branch_taken(inst);
                        record.taken = Some(taken);
                        cond_branches += 1;
                        if taken {
                            taken_branches += 1;
                            block_id = inst.branch_target.expect("validated branch target");
                        } else {
                            block_id = block.fallthrough.expect("validated branch fall-through");
                        }
                        index = 0;
                    }
                }
            } else {
                let inst = inst.clone();
                record.mem_addr = self.execute_data(&inst);
                if record.mem_addr.is_some() {
                    mem_ops += 1;
                }
                index += 1;
            }

            committed.push(record);
            seq += 1;
        }

        Ok(Trace {
            committed,
            hit_cap,
            cond_branches,
            taken_branches,
            mem_ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg::{fp_reg, int_reg};

    /// A counted loop running `trips` iterations with `body_insts` ALU
    /// instructions per iteration.
    fn counted_loop(trips: i64, body_insts: usize) -> Program {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            let body = p.block();
            let exit = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 0);
                bb.jump(body);
            });
            p.with_block(body, |bb| {
                for k in 0..body_insts {
                    bb.addi(int_reg(2 + (k % 8) as u8), int_reg(1), k as i64);
                }
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.blt(int_reg(1), trips, body, exit);
            });
            p.with_block(exit, |bb| {
                bb.ret();
            });
            p.set_entry(entry);
        }
        b.finish(main).unwrap()
    }

    #[test]
    fn counted_loop_executes_exact_trip_count() {
        let trips = 25;
        let body = 4;
        let program = counted_loop(trips, body);
        let trace = Executor::new(&program).run(1_000_000).unwrap();
        assert!(!trace.hit_cap);
        // entry: li + jump; per-iteration: body + addi + branch; exit: ret.
        let expected = 2 + (body as u64 + 2) * trips as u64 + 1;
        assert_eq!(trace.len() as u64, expected);
        assert_eq!(trace.cond_branches, trips as u64);
        assert_eq!(trace.taken_branches, trips as u64 - 1);
    }

    #[test]
    fn execution_is_deterministic() {
        let program = counted_loop(13, 3);
        let t1 = Executor::new(&program).run(100_000).unwrap();
        let t2 = Executor::new(&program).run(100_000).unwrap();
        assert_eq!(t1, t2);
    }

    #[test]
    fn cap_stops_execution_cleanly() {
        let program = counted_loop(1_000_000, 2);
        let trace = Executor::new(&program).run(500).unwrap();
        assert!(trace.hit_cap);
        assert_eq!(trace.len(), 500);
    }

    #[test]
    fn memory_store_then_load_roundtrips() {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 0x2000);
                bb.li(int_reg(2), 42);
                bb.store(int_reg(2), int_reg(1), 8);
                bb.load(int_reg(3), int_reg(1), 8);
                bb.addi(int_reg(4), int_reg(3), 1);
                bb.ret();
            });
            p.set_entry(entry);
        }
        let program = b.finish(main).unwrap();
        let trace = Executor::new(&program).run(100).unwrap();
        assert!(!trace.hit_cap);
        assert_eq!(trace.mem_ops, 2);
        // The load and store share an effective address.
        let addrs: Vec<_> = trace.committed.iter().filter_map(|d| d.mem_addr).collect();
        assert_eq!(addrs.len(), 2);
        assert_eq!(addrs[0], addrs[1]);
        assert_eq!(addrs[0], 0x2008);
    }

    #[test]
    fn uninitialised_loads_are_deterministic() {
        assert_eq!(default_memory_value(0x1234), default_memory_value(0x1234));
        assert_ne!(default_memory_value(0x1234), default_memory_value(0x1238));
    }

    #[test]
    fn calls_and_returns_nest_properly() {
        let mut b = ProgramBuilder::new();
        let leaf = b.procedure("leaf");
        {
            let p = b.proc_mut(leaf);
            let entry = p.block();
            p.with_block(entry, |bb| {
                bb.addi(int_reg(5), int_reg(5), 1);
                bb.ret();
            });
            p.set_entry(entry);
        }
        let mid = b.procedure("mid");
        {
            let p = b.proc_mut(mid);
            let b0 = p.block();
            let b1 = p.block();
            p.with_block(b0, |bb| {
                bb.call(leaf, b1);
            });
            p.with_block(b1, |bb| {
                bb.addi(int_reg(6), int_reg(6), 1);
                bb.ret();
            });
            p.set_entry(b0);
        }
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let b0 = p.block();
            let b1 = p.block();
            p.with_block(b0, |bb| {
                bb.call(mid, b1);
            });
            p.with_block(b1, |bb| {
                bb.ret();
            });
            p.set_entry(b0);
        }
        let program = b.finish(main).unwrap();
        let trace = Executor::new(&program).run(1000).unwrap();
        assert!(!trace.hit_cap);
        // call mid, call leaf, addi, ret, addi, ret, ret = 7 dynamic instructions.
        assert_eq!(trace.len(), 7);
    }

    #[test]
    fn infinite_recursion_reports_stack_overflow() {
        let mut b = ProgramBuilder::new();
        let rec = b.procedure("rec");
        {
            let p = b.proc_mut(rec);
            let b0 = p.block();
            let b1 = p.block();
            p.with_block(b0, |bb| {
                bb.call(rec, b1);
            });
            p.with_block(b1, |bb| {
                bb.ret();
            });
            p.set_entry(b0);
        }
        let program = b.finish(rec).unwrap();
        let err = Executor::new(&program).run(1_000_000).unwrap_err();
        assert!(matches!(err, ExecError::CallStackOverflow { .. }));
    }

    #[test]
    fn fp_pipeline_produces_sane_results() {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 7);
                bb.itof(fp_reg(0), int_reg(1));
                bb.fmul(fp_reg(1), fp_reg(0), fp_reg(0));
                bb.fadd(fp_reg(2), fp_reg(1), fp_reg(0));
                bb.ftoi(int_reg(2), fp_reg(2));
                // 7*7 + 7 = 56 > 50 → taken path is the same block target (exit).
                bb.ret();
            });
            p.set_entry(entry);
        }
        let program = b.finish(main).unwrap();
        let trace = Executor::new(&program).run(100).unwrap();
        assert_eq!(trace.len(), 6);
    }

    #[test]
    fn div_by_zero_yields_zero_not_panic() {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            p.with_block(entry, |bb| {
                bb.li(int_reg(1), 10);
                bb.li(int_reg(2), 0);
                bb.div(int_reg(3), int_reg(1), int_reg(2));
                // 10 / 0 yields 0, so this branch is always taken and the
                // block loops on itself until the cap stops execution.
                bb.beq(int_reg(3), 0, entry, entry);
            });
            p.set_entry(entry);
        }
        let program = b.finish(main).unwrap();
        // The branch is always taken → loops forever → cap stops it.
        let trace = Executor::new(&program).run(50).unwrap();
        assert!(trace.hit_cap);
    }

    #[test]
    fn hint_noops_appear_in_the_dynamic_trace() {
        let mut b = ProgramBuilder::new();
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let entry = p.block();
            p.with_block(entry, |bb| {
                bb.hint_noop(16);
                bb.li(int_reg(1), 1);
                bb.ret();
            });
            p.set_entry(entry);
        }
        let program = b.finish(main).unwrap();
        let trace = Executor::new(&program).run(100).unwrap();
        assert_eq!(trace.len(), 3);
        let first = program.instruction(trace.committed[0].loc);
        assert!(first.is_hint_noop());
        assert_eq!(first.iq_hint, Some(16));
    }

    #[test]
    fn branch_outcomes_recorded_per_dynamic_instance() {
        let program = counted_loop(3, 1);
        let trace = Executor::new(&program).run(1000).unwrap();
        let outcomes: Vec<bool> = trace.committed.iter().filter_map(|d| d.taken).collect();
        assert_eq!(outcomes, vec![true, true, false]);
    }
}
