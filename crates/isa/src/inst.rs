//! Instruction representation.

use crate::opcode::{FuClass, Opcode};
use crate::program::{BlockId, ProcId};
use crate::reg::ArchReg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A memory reference: `base + offset`, evaluated by the functional executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Base address register (always an integer register).
    pub base: ArchReg,
    /// Constant byte offset added to the base.
    pub offset: i64,
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.offset, self.base)
    }
}

/// A single static instruction.
///
/// Instructions are built through [`crate::builder::BlockBuilder`] (or the
/// lower-level constructors here) and are immutable once the program is
/// finished, with one exception: the compiler pass may attach an issue-queue
/// hint ([`Instruction::iq_hint`]) or insert extra [`Opcode::HintNoop`]
/// instructions when rewriting the program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// Operation.
    pub opcode: Opcode,
    /// Destination register, if the instruction produces a value.
    pub dest: Option<ArchReg>,
    /// Source registers (at most two).
    pub srcs: [Option<ArchReg>; 2],
    /// Immediate operand, when present.
    pub imm: Option<i64>,
    /// Memory reference for loads and stores.
    pub mem: Option<MemRef>,
    /// Taken target of a conditional branch or unconditional jump.
    pub branch_target: Option<BlockId>,
    /// Callee of a `Call`.
    pub call_target: Option<ProcId>,
    /// Issue-queue size hint.
    ///
    /// * On a [`Opcode::HintNoop`], this is the `max_new_range` the special
    ///   NOOP encodes (the NOOP technique).
    /// * On an ordinary instruction, this is the tag used by the *Extension*
    ///   / *Improved* techniques: the decoder picks the value up without a
    ///   separate instruction.
    pub iq_hint: Option<u8>,
    /// `true` if the instruction uses the profiled low-energy encoding
    /// (the `lowen-isa` technique): a redundant-bit encoding that costs
    /// nothing architecturally but reduces fetch/decode energy. Purely an
    /// energy-accounting marker — timing is unaffected.
    pub low_energy: bool,
}

impl Instruction {
    /// Creates a bare instruction with no operands; callers fill in fields.
    pub fn new(opcode: Opcode) -> Self {
        Instruction {
            opcode,
            dest: None,
            srcs: [None, None],
            imm: None,
            mem: None,
            branch_target: None,
            call_target: None,
            iq_hint: None,
            low_energy: false,
        }
    }

    /// A three-register ALU-style instruction `dest = src0 op src1`.
    pub fn rrr(opcode: Opcode, dest: ArchReg, src0: ArchReg, src1: ArchReg) -> Self {
        Instruction {
            dest: Some(dest),
            srcs: [Some(src0), Some(src1)],
            ..Instruction::new(opcode)
        }
    }

    /// A register-immediate instruction `dest = src0 op imm`.
    pub fn rri(opcode: Opcode, dest: ArchReg, src0: ArchReg, imm: i64) -> Self {
        Instruction {
            dest: Some(dest),
            srcs: [Some(src0), None],
            imm: Some(imm),
            ..Instruction::new(opcode)
        }
    }

    /// A load-immediate style instruction `dest = imm`.
    pub fn ri(opcode: Opcode, dest: ArchReg, imm: i64) -> Self {
        Instruction {
            dest: Some(dest),
            imm: Some(imm),
            ..Instruction::new(opcode)
        }
    }

    /// A load `dest = mem[base + offset]`.
    pub fn load(opcode: Opcode, dest: ArchReg, base: ArchReg, offset: i64) -> Self {
        Instruction {
            dest: Some(dest),
            srcs: [Some(base), None],
            mem: Some(MemRef { base, offset }),
            ..Instruction::new(opcode)
        }
    }

    /// A store `mem[base + offset] = value`.
    pub fn store(opcode: Opcode, value: ArchReg, base: ArchReg, offset: i64) -> Self {
        Instruction {
            srcs: [Some(base), Some(value)],
            mem: Some(MemRef { base, offset }),
            ..Instruction::new(opcode)
        }
    }

    /// A conditional branch comparing `src0` against `src1`, taken to `target`.
    pub fn branch_rr(opcode: Opcode, src0: ArchReg, src1: ArchReg, target: BlockId) -> Self {
        Instruction {
            srcs: [Some(src0), Some(src1)],
            branch_target: Some(target),
            ..Instruction::new(opcode)
        }
    }

    /// A conditional branch comparing `src0` against an immediate, taken to
    /// `target`.
    pub fn branch_ri(opcode: Opcode, src0: ArchReg, imm: i64, target: BlockId) -> Self {
        Instruction {
            srcs: [Some(src0), None],
            imm: Some(imm),
            branch_target: Some(target),
            ..Instruction::new(opcode)
        }
    }

    /// An unconditional jump to `target`.
    pub fn jump(target: BlockId) -> Self {
        Instruction {
            branch_target: Some(target),
            ..Instruction::new(Opcode::Jump)
        }
    }

    /// A call to `target`.
    pub fn call(target: ProcId) -> Self {
        Instruction {
            call_target: Some(target),
            ..Instruction::new(Opcode::Call)
        }
    }

    /// A return from the current procedure.
    pub fn ret() -> Self {
        Instruction::new(Opcode::Return)
    }

    /// A special NOOP carrying `max_new_range` for the NOOP technique.
    pub fn hint_noop(max_new_range: u8) -> Self {
        Instruction {
            iq_hint: Some(max_new_range),
            ..Instruction::new(Opcode::HintNoop)
        }
    }

    /// Source registers that are actually present.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// Number of present source register operands.
    pub fn source_count(&self) -> usize {
        self.srcs.iter().flatten().count()
    }

    /// Functional-unit class (delegates to the opcode).
    pub fn fu_class(&self) -> FuClass {
        self.opcode.fu_class()
    }

    /// Base execution latency (delegates to the opcode).
    pub fn latency(&self) -> u32 {
        self.opcode.latency()
    }

    /// `true` if this is a special NOOP hint.
    pub fn is_hint_noop(&self) -> bool {
        self.opcode.is_hint()
    }

    /// Attaches an issue-queue tag (Extension technique) and returns `self`.
    pub fn with_iq_hint(mut self, hint: u8) -> Self {
        self.iq_hint = Some(hint);
        self
    }

    /// Marks the instruction as using the profiled low-energy encoding
    /// (`lowen-isa` technique) and returns `self`.
    pub fn with_low_energy(mut self) -> Self {
        self.low_energy = true;
        self
    }

    /// Checks structural well-formedness of the instruction (operand shapes
    /// appropriate for the opcode). Returns a human-readable description of
    /// the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        use Opcode::*;
        let o = self.opcode;
        match o {
            Li => {
                if self.dest.is_none() || self.imm.is_none() {
                    return Err(format!("{o} requires a destination and an immediate"));
                }
            }
            Load | FLoad => {
                if self.dest.is_none() || self.mem.is_none() {
                    return Err(format!("{o} requires a destination and a memory reference"));
                }
            }
            Store | FStore => {
                if self.mem.is_none() || self.source_count() < 2 {
                    return Err(format!(
                        "{o} requires a memory reference and a value source register"
                    ));
                }
            }
            Beq | Bne | Blt | Bge | Bgt | Ble => {
                if self.branch_target.is_none() {
                    return Err(format!("{o} requires a branch target"));
                }
                if self.source_count() == 0 {
                    return Err(format!("{o} requires at least one source register"));
                }
                if self.source_count() == 1 && self.imm.is_none() {
                    return Err(format!(
                        "{o} with a single source register requires an immediate"
                    ));
                }
            }
            Jump => {
                if self.branch_target.is_none() {
                    return Err("jump requires a branch target".to_string());
                }
            }
            Call => {
                if self.call_target.is_none() {
                    return Err("call requires a callee".to_string());
                }
            }
            HintNoop => {
                if self.iq_hint.is_none() {
                    return Err("special NOOP requires an issue-queue size".to_string());
                }
            }
            Add | Sub | Mul | Div | And | Or | Xor | Shl | Shr | Slt | FAdd | FSub | FMul
            | FDiv => {
                if self.dest.is_none() || self.source_count() < 2 {
                    return Err(format!("{o} requires a destination and two sources"));
                }
            }
            Addi | Subi | Slti => {
                if self.dest.is_none() || self.source_count() < 1 || self.imm.is_none() {
                    return Err(format!(
                        "{o} requires a destination, one source and an immediate"
                    ));
                }
            }
            Mov | FMov | ItoF | FtoI => {
                if self.dest.is_none() || self.source_count() < 1 {
                    return Err(format!("{o} requires a destination and one source"));
                }
            }
            Return | Nop => {}
        }
        Ok(())
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.opcode)?;
        if let Some(d) = self.dest {
            write!(f, " {d}")?;
        }
        for s in self.sources() {
            write!(f, ", {s}")?;
        }
        if let Some(imm) = self.imm {
            write!(f, ", #{imm}")?;
        }
        if let Some(m) = self.mem {
            write!(f, ", {m}")?;
        }
        if let Some(t) = self.branch_target {
            write!(f, ", {t}")?;
        }
        if let Some(p) = self.call_target {
            write!(f, ", {p}")?;
        }
        if let Some(h) = self.iq_hint {
            write!(f, " [iq={h}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{BlockId, ProcId};
    use crate::reg::{fp_reg, int_reg};

    #[test]
    fn rrr_builder_sets_operands() {
        let i = Instruction::rrr(Opcode::Add, int_reg(1), int_reg(2), int_reg(3));
        assert_eq!(i.dest, Some(int_reg(1)));
        assert_eq!(
            i.sources().collect::<Vec<_>>(),
            vec![int_reg(2), int_reg(3)]
        );
        assert!(i.validate().is_ok());
    }

    #[test]
    fn load_store_builders() {
        let ld = Instruction::load(Opcode::Load, int_reg(5), int_reg(6), 16);
        assert!(ld.validate().is_ok());
        assert_eq!(ld.mem.unwrap().offset, 16);
        let st = Instruction::store(Opcode::Store, int_reg(5), int_reg(6), -8);
        assert!(st.validate().is_ok());
        assert_eq!(st.source_count(), 2);
    }

    #[test]
    fn branch_builders_require_targets() {
        let b = Instruction::branch_ri(Opcode::Bgt, int_reg(1), 0, BlockId(3));
        assert!(b.validate().is_ok());
        let mut bad = b.clone();
        bad.branch_target = None;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn hint_noop_requires_value() {
        let h = Instruction::hint_noop(12);
        assert!(h.validate().is_ok());
        assert!(h.is_hint_noop());
        let mut bad = h.clone();
        bad.iq_hint = None;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn tagging_an_instruction_keeps_it_valid() {
        let i = Instruction::rrr(Opcode::Add, int_reg(1), int_reg(2), int_reg(3)).with_iq_hint(7);
        assert_eq!(i.iq_hint, Some(7));
        assert!(i.validate().is_ok());
        assert!(!i.is_hint_noop());
    }

    #[test]
    fn validate_rejects_malformed_alu() {
        let mut i = Instruction::new(Opcode::Add);
        assert!(i.validate().is_err());
        i.dest = Some(int_reg(1));
        i.srcs = [Some(int_reg(2)), Some(int_reg(3))];
        assert!(i.validate().is_ok());
    }

    #[test]
    fn display_is_readable() {
        let i = Instruction::rri(Opcode::Addi, int_reg(1), int_reg(1), 4);
        assert_eq!(i.to_string(), "addi r1, r1, #4");
        let c = Instruction::call(ProcId(2));
        assert!(c.to_string().starts_with("call"));
        let f = Instruction::rrr(Opcode::FAdd, fp_reg(0), fp_reg(1), fp_reg(2));
        assert_eq!(f.to_string(), "fadd f0, f1, f2");
    }
}
