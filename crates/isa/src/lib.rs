//! # sdiq-isa — synthetic ISA, program representation and functional executor
//!
//! The HPCA 2005 paper evaluates its technique on Alpha binaries compiled
//! with MachineSUIF and executed on SimpleScalar/Wattch. Neither the Alpha
//! toolchain nor SPEC sources are available to this reproduction, so this
//! crate provides the substrate they played: a small, fully synthetic
//! RISC-style instruction set with
//!
//! * typed opcodes mapped to functional-unit classes and latencies
//!   (matching Table 1 of the paper),
//! * a structured program representation (procedures → basic blocks →
//!   instructions) that the compiler IR ([`sdiq-ir`]) analyses directly,
//! * per-instruction issue-queue *hints* — either stand-alone special NOOPs
//!   ([`Opcode::HintNoop`]) or tags attached to ordinary instructions
//!   ([`Instruction::iq_hint`]) — which are how the compiler communicates
//!   `max_new_range` to the processor, and
//! * a deterministic functional executor ([`exec::Executor`]) that resolves
//!   branches, memory addresses and loop trip counts, producing the dynamic
//!   instruction trace that the timing simulator replays.
//!
//! # Example
//!
//! ```
//! use sdiq_isa::builder::ProgramBuilder;
//! use sdiq_isa::exec::Executor;
//! use sdiq_isa::reg::int_reg;
//!
//! // A tiny program: r1 = 1 + 2; loop 3 times decrementing r2.
//! let mut b = ProgramBuilder::new();
//! let main = b.procedure("main");
//! {
//!     let p = b.proc_mut(main);
//!     let entry = p.block();
//!     let body = p.block();
//!     let exit = p.block();
//!     p.with_block(entry, |bb| {
//!         bb.li(int_reg(1), 1);
//!         bb.li(int_reg(2), 3);
//!         bb.jump(body);
//!     });
//!     p.with_block(body, |bb| {
//!         bb.addi(int_reg(1), int_reg(1), 2);
//!         bb.subi(int_reg(2), int_reg(2), 1);
//!         bb.bgt(int_reg(2), 0, body, exit);
//!     });
//!     p.with_block(exit, |bb| {
//!         bb.ret();
//!     });
//!     p.set_entry(entry);
//! }
//! let program = b.finish(main).expect("valid program");
//!
//! let trace = Executor::new(&program).run(10_000).expect("terminates");
//! assert!(trace.committed.len() > 5);
//! ```

pub mod builder;
pub mod exec;
pub mod inst;
pub mod machine;
pub mod opcode;
pub mod program;
pub mod reg;

pub use builder::{BlockBuilder, ProcedureBuilder, ProgramBuilder};
pub use exec::{DynInst, ExecError, Executor, Trace};
pub use inst::{Instruction, MemRef};
pub use machine::{FuCounts, MachineWidths};
pub use opcode::{FuClass, Opcode};
pub use program::{
    AddressMap, BasicBlock, BlockId, BlockRef, InstrLoc, ProcId, Procedure, Program,
};
pub use reg::{fp_reg, int_reg, ArchReg, RegClass, NUM_ARCH_FP_REGS, NUM_ARCH_INT_REGS};
