//! Machine parameters shared by the compiler pass and the timing simulator.
//!
//! Both sides of the paper's technique must agree on the processor's issue
//! width and functional-unit pools (Table 1): the compiler's pseudo issue
//! queue models them when computing how many entries a region needs, and the
//! simulator enforces them when executing. Keeping the numbers here avoids a
//! dependency between `sdiq-compiler` and `sdiq-sim`.

use crate::opcode::FuClass;
use serde::{Deserialize, Serialize};

/// Number of functional units per pool (Table 1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FuCounts {
    /// Integer ALUs (1-cycle latency).
    pub int_alu: usize,
    /// Integer multipliers (3-cycle latency).
    pub int_mul: usize,
    /// FP ALUs (2-cycle latency).
    pub fp_alu: usize,
    /// FP multiply/divide units (4-cycle mult, 12-cycle div).
    pub fp_mul_div: usize,
    /// Load/store ports into the L1 data cache.
    pub mem_ports: usize,
}

impl FuCounts {
    /// Functional-unit pools from Table 1 of the paper, plus the 2 memory
    /// ports SimpleScalar's default out-of-order configuration provides.
    pub const fn hpca2005() -> Self {
        FuCounts {
            int_alu: 6,
            int_mul: 3,
            fp_alu: 4,
            fp_mul_div: 2,
            mem_ports: 2,
        }
    }

    /// Units available for a given class (`usize::MAX` for [`FuClass::None`],
    /// which never competes for hardware).
    pub fn for_class(&self, class: FuClass) -> usize {
        match class {
            FuClass::IntAlu => self.int_alu,
            FuClass::IntMul => self.int_mul,
            FuClass::FpAlu => self.fp_alu,
            FuClass::FpMulDiv => self.fp_mul_div,
            FuClass::MemPort => self.mem_ports,
            FuClass::None => usize::MAX,
        }
    }

    /// Total number of hardware functional units.
    pub fn total(&self) -> usize {
        self.int_alu + self.int_mul + self.fp_alu + self.fp_mul_div + self.mem_ports
    }
}

impl Default for FuCounts {
    fn default() -> Self {
        FuCounts::hpca2005()
    }
}

/// Front-end and window widths shared by compiler and simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MachineWidths {
    /// Fetch, decode, dispatch and commit width (8 in Table 1).
    pub pipeline_width: usize,
    /// Issue-queue capacity in entries (80 in Table 1).
    pub iq_capacity: usize,
    /// Reorder-buffer capacity (128 in Table 1).
    pub rob_capacity: usize,
}

impl MachineWidths {
    /// Widths from Table 1 of the paper.
    pub const fn hpca2005() -> Self {
        MachineWidths {
            pipeline_width: 8,
            iq_capacity: 80,
            rob_capacity: 128,
        }
    }
}

impl Default for MachineWidths {
    fn default() -> Self {
        MachineWidths::hpca2005()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_pools() {
        let fu = FuCounts::hpca2005();
        assert_eq!(fu.int_alu, 6);
        assert_eq!(fu.int_mul, 3);
        assert_eq!(fu.fp_alu, 4);
        assert_eq!(fu.fp_mul_div, 2);
        assert_eq!(fu.for_class(FuClass::IntAlu), 6);
        assert_eq!(fu.for_class(FuClass::None), usize::MAX);
        assert_eq!(fu.total(), 6 + 3 + 4 + 2 + 2);
    }

    #[test]
    fn table1_widths() {
        let w = MachineWidths::hpca2005();
        assert_eq!(w.pipeline_width, 8);
        assert_eq!(w.iq_capacity, 80);
        assert_eq!(w.rob_capacity, 128);
        assert_eq!(MachineWidths::default(), w);
        assert_eq!(FuCounts::default(), FuCounts::hpca2005());
    }
}
