//! Opcodes, functional-unit classes and execution latencies.
//!
//! Latencies and functional-unit pools follow Table 1 of the paper:
//!
//! | Pool          | Units | Latency                     |
//! |---------------|-------|-----------------------------|
//! | Int ALU       | 6     | 1 cycle                     |
//! | Int Mul       | 3     | 3 cycles                    |
//! | FP ALU        | 4     | 2 cycles                    |
//! | FP Mul/Div    | 2     | 4 cycles mult, 12 cycles div|
//! | Memory port   | cfg   | L1D 2 cycles hit (see sim)  |

use serde::{Deserialize, Serialize};
use std::fmt;

/// Functional-unit class an instruction executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FuClass {
    /// Integer ALU (adds, logic, shifts, compares, branches).
    IntAlu,
    /// Integer multiplier (also hosts the rare integer divide).
    IntMul,
    /// Floating-point adder/comparator.
    FpAlu,
    /// Floating-point multiplier/divider.
    FpMulDiv,
    /// Load/store memory port (latency comes from the cache hierarchy).
    MemPort,
    /// Executes on no functional unit (special NOOPs are stripped at the
    /// final decode stage and never enter the issue queue).
    None,
}

impl FuClass {
    /// All classes that correspond to real hardware pools.
    pub const HARDWARE: [FuClass; 5] = [
        FuClass::IntAlu,
        FuClass::IntMul,
        FuClass::FpAlu,
        FuClass::FpMulDiv,
        FuClass::MemPort,
    ];

    /// Number of classes (for dense per-class tables). Derived from
    /// [`FuClass::HARDWARE`] plus the `None` class so it cannot drift from
    /// the enum.
    pub const COUNT: usize = FuClass::HARDWARE.len() + 1;

    /// Dense index in `0..FuClass::COUNT` (for per-class arrays on hot
    /// paths, avoiding hash maps).
    pub const fn index(self) -> usize {
        match self {
            FuClass::IntAlu => 0,
            FuClass::IntMul => 1,
            FuClass::FpAlu => 2,
            FuClass::FpMulDiv => 3,
            FuClass::MemPort => 4,
            FuClass::None => 5,
        }
    }
}

impl fmt::Display for FuClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuClass::IntAlu => "int-alu",
            FuClass::IntMul => "int-mul",
            FuClass::FpAlu => "fp-alu",
            FuClass::FpMulDiv => "fp-muldiv",
            FuClass::MemPort => "mem-port",
            FuClass::None => "none",
        };
        write!(f, "{s}")
    }
}

/// Instruction opcodes of the synthetic ISA.
///
/// The set is deliberately small but covers every behaviour the issue-queue
/// study needs: integer and FP arithmetic with distinct latencies, loads and
/// stores, conditional and unconditional control flow, calls/returns, and the
/// special NOOP hint instruction that carries `max_new_range` from the
/// compiler to the processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Opcode {
    // --- integer arithmetic / logic ----------------------------------------
    /// Load immediate: `dest = imm`.
    Li,
    /// Register move: `dest = src0`.
    Mov,
    /// `dest = src0 + src1`.
    Add,
    /// `dest = src0 + imm`.
    Addi,
    /// `dest = src0 - src1`.
    Sub,
    /// `dest = src0 - imm`.
    Subi,
    /// `dest = src0 * src1` (integer multiplier pool).
    Mul,
    /// `dest = src0 / src1` (0 if divisor is 0; integer multiplier pool).
    Div,
    /// `dest = src0 & src1`.
    And,
    /// `dest = src0 | src1`.
    Or,
    /// `dest = src0 ^ src1`.
    Xor,
    /// `dest = src0 << (src1 & 63)`.
    Shl,
    /// `dest = src0 >> (src1 & 63)` (arithmetic).
    Shr,
    /// Set-less-than: `dest = (src0 < src1) as i64`.
    Slt,
    /// Set-less-than-immediate: `dest = (src0 < imm) as i64`.
    Slti,

    // --- memory -------------------------------------------------------------
    /// Integer load: `dest = mem[src0 + offset]`.
    Load,
    /// Integer store: `mem[src0 + offset] = src1`.
    Store,
    /// FP load: `dest(fp) = mem[src0 + offset]`.
    FLoad,
    /// FP store: `mem[src0 + offset] = src1(fp)`.
    FStore,

    // --- control flow -------------------------------------------------------
    /// Branch if `src0 == src1` (or `imm` when only one source register).
    Beq,
    /// Branch if `src0 != src1` (or `imm`).
    Bne,
    /// Branch if `src0 < src1` (or `imm`).
    Blt,
    /// Branch if `src0 >= src1` (or `imm`).
    Bge,
    /// Branch if `src0 > src1` (or `imm`).
    Bgt,
    /// Branch if `src0 <= src1` (or `imm`).
    Ble,
    /// Unconditional jump to the block target.
    Jump,
    /// Procedure call (target procedure held by the instruction).
    Call,
    /// Return from procedure.
    Return,

    // --- floating point -----------------------------------------------------
    /// `dest = src0 + src1` (FP).
    FAdd,
    /// `dest = src0 - src1` (FP).
    FSub,
    /// `dest = src0 * src1` (FP).
    FMul,
    /// `dest = src0 / src1` (FP; 0.0 if divisor is 0).
    FDiv,
    /// FP move.
    FMov,
    /// Convert integer to FP: `dest(fp) = src0(int) as f64`.
    ItoF,
    /// Convert FP to integer: `dest(int) = src0(fp) as i64`.
    FtoI,

    // --- hints / no-ops -----------------------------------------------------
    /// Ordinary no-op. Occupies fetch/decode/dispatch/issue like a real
    /// instruction (on the integer ALU pool).
    Nop,
    /// Special NOOP carrying the issue-queue size (`max_new_range`) in its
    /// unused bits. It is stripped out of the instruction stream in the final
    /// decode stage and never dispatched, but it *does* consume a fetch and
    /// decode slot — the source of the small ILP loss §5.2.1 discusses.
    HintNoop,
}

impl Opcode {
    /// The functional-unit class this opcode executes on.
    pub fn fu_class(&self) -> FuClass {
        use Opcode::*;
        match self {
            Li | Mov | Add | Addi | Sub | Subi | And | Or | Xor | Shl | Shr | Slt | Slti => {
                FuClass::IntAlu
            }
            Mul | Div => FuClass::IntMul,
            Load | Store | FLoad | FStore => FuClass::MemPort,
            Beq | Bne | Blt | Bge | Bgt | Ble | Jump | Call | Return => FuClass::IntAlu,
            FAdd | FSub | FMov | ItoF | FtoI => FuClass::FpAlu,
            FMul | FDiv => FuClass::FpMulDiv,
            Nop => FuClass::IntAlu,
            HintNoop => FuClass::None,
        }
    }

    /// Execution latency in cycles, excluding memory-hierarchy latency for
    /// loads/stores (the simulator adds the cache access time on top of the
    /// 1-cycle address generation this returns).
    pub fn latency(&self) -> u32 {
        use Opcode::*;
        match self {
            Mul | Div => 3,
            FAdd | FSub | FMov | ItoF | FtoI => 2,
            FMul => 4,
            FDiv => 12,
            HintNoop => 0,
            _ => 1,
        }
    }

    /// `true` for conditional branches.
    pub fn is_cond_branch(&self) -> bool {
        matches!(
            self,
            Opcode::Beq | Opcode::Bne | Opcode::Blt | Opcode::Bge | Opcode::Bgt | Opcode::Ble
        )
    }

    /// `true` for any control-transfer instruction (conditional branch,
    /// jump, call or return).
    pub fn is_control(&self) -> bool {
        self.is_cond_branch() || matches!(self, Opcode::Jump | Opcode::Call | Opcode::Return)
    }

    /// `true` for loads (integer or FP).
    pub fn is_load(&self) -> bool {
        matches!(self, Opcode::Load | Opcode::FLoad)
    }

    /// `true` for stores (integer or FP).
    pub fn is_store(&self) -> bool {
        matches!(self, Opcode::Store | Opcode::FStore)
    }

    /// `true` for any memory access.
    pub fn is_mem(&self) -> bool {
        self.is_load() || self.is_store()
    }

    /// `true` if this opcode operates on floating-point values.
    pub fn is_fp(&self) -> bool {
        matches!(
            self,
            Opcode::FAdd
                | Opcode::FSub
                | Opcode::FMul
                | Opcode::FDiv
                | Opcode::FMov
                | Opcode::FLoad
                | Opcode::FStore
                | Opcode::ItoF
        )
    }

    /// `true` for the special NOOP hint instruction.
    pub fn is_hint(&self) -> bool {
        matches!(self, Opcode::HintNoop)
    }

    /// A short mnemonic for display.
    pub fn mnemonic(&self) -> &'static str {
        use Opcode::*;
        match self {
            Li => "li",
            Mov => "mov",
            Add => "add",
            Addi => "addi",
            Sub => "sub",
            Subi => "subi",
            Mul => "mul",
            Div => "div",
            And => "and",
            Or => "or",
            Xor => "xor",
            Shl => "shl",
            Shr => "shr",
            Slt => "slt",
            Slti => "slti",
            Load => "ld",
            Store => "st",
            FLoad => "fld",
            FStore => "fst",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bgt => "bgt",
            Ble => "ble",
            Jump => "j",
            Call => "call",
            Return => "ret",
            FAdd => "fadd",
            FSub => "fsub",
            FMul => "fmul",
            FDiv => "fdiv",
            FMov => "fmov",
            ItoF => "itof",
            FtoI => "ftoi",
            Nop => "nop",
            HintNoop => "hint.iq",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_table1() {
        assert_eq!(Opcode::Add.latency(), 1);
        assert_eq!(Opcode::Mul.latency(), 3);
        assert_eq!(Opcode::FAdd.latency(), 2);
        assert_eq!(Opcode::FMul.latency(), 4);
        assert_eq!(Opcode::FDiv.latency(), 12);
    }

    #[test]
    fn fu_classes_match_table1_pools() {
        assert_eq!(Opcode::Add.fu_class(), FuClass::IntAlu);
        assert_eq!(Opcode::Mul.fu_class(), FuClass::IntMul);
        assert_eq!(Opcode::Div.fu_class(), FuClass::IntMul);
        assert_eq!(Opcode::FAdd.fu_class(), FuClass::FpAlu);
        assert_eq!(Opcode::FMul.fu_class(), FuClass::FpMulDiv);
        assert_eq!(Opcode::FDiv.fu_class(), FuClass::FpMulDiv);
        assert_eq!(Opcode::Load.fu_class(), FuClass::MemPort);
        assert_eq!(Opcode::Store.fu_class(), FuClass::MemPort);
    }

    #[test]
    fn hint_noop_uses_no_functional_unit() {
        assert_eq!(Opcode::HintNoop.fu_class(), FuClass::None);
        assert_eq!(Opcode::HintNoop.latency(), 0);
        assert!(Opcode::HintNoop.is_hint());
        assert!(!Opcode::Nop.is_hint());
    }

    #[test]
    fn control_flow_classification() {
        assert!(Opcode::Beq.is_cond_branch());
        assert!(Opcode::Beq.is_control());
        assert!(Opcode::Jump.is_control());
        assert!(!Opcode::Jump.is_cond_branch());
        assert!(Opcode::Call.is_control());
        assert!(Opcode::Return.is_control());
        assert!(!Opcode::Add.is_control());
    }

    #[test]
    fn memory_classification() {
        assert!(Opcode::Load.is_load());
        assert!(Opcode::FLoad.is_load());
        assert!(Opcode::Store.is_store());
        assert!(Opcode::FStore.is_store());
        assert!(Opcode::Load.is_mem());
        assert!(!Opcode::Add.is_mem());
    }

    #[test]
    fn fp_classification() {
        assert!(Opcode::FAdd.is_fp());
        assert!(Opcode::FLoad.is_fp());
        assert!(!Opcode::Load.is_fp());
        // FtoI produces an integer result even though it runs on the FP ALU.
        assert!(!Opcode::FtoI.is_fp());
        assert_eq!(Opcode::FtoI.fu_class(), FuClass::FpAlu);
    }

    #[test]
    fn mnemonics_are_unique() {
        use Opcode::*;
        let all = [
            Li, Mov, Add, Addi, Sub, Subi, Mul, Div, And, Or, Xor, Shl, Shr, Slt, Slti, Load,
            Store, FLoad, FStore, Beq, Bne, Blt, Bge, Bgt, Ble, Jump, Call, Return, FAdd, FSub,
            FMul, FDiv, FMov, ItoF, FtoI, Nop, HintNoop,
        ];
        let set: std::collections::HashSet<_> = all.iter().map(|o| o.mnemonic()).collect();
        assert_eq!(set.len(), all.len());
    }
}
