//! Program representation: procedures, basic blocks and instruction addresses.

use crate::inst::Instruction;
use crate::opcode::Opcode;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a procedure within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcId(pub usize);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

/// Identifier of a basic block within a [`Procedure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub usize);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// A (procedure, block) pair uniquely naming a basic block in a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockRef {
    /// Owning procedure.
    pub proc: ProcId,
    /// Block within the procedure.
    pub block: BlockId,
}

impl fmt::Display for BlockRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.proc, self.block)
    }
}

/// Location of a single static instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstrLoc {
    /// Owning procedure.
    pub proc: ProcId,
    /// Owning basic block.
    pub block: BlockId,
    /// Index within the block's instruction list.
    pub index: usize,
}

impl fmt::Display for InstrLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.proc, self.block, self.index)
    }
}

/// A basic block: a straight-line instruction sequence with a single entry
/// and a single exit.
///
/// Control flow out of the block is defined by its last instruction plus the
/// optional [`BasicBlock::fallthrough`] successor:
///
/// * conditional branch → taken target + fallthrough,
/// * `Jump` → jump target only,
/// * `Return` → no successor,
/// * `Call` → the callee runs, then control resumes at `fallthrough`,
/// * anything else → `fallthrough` only.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct BasicBlock {
    /// The instructions of the block, in program order.
    pub instructions: Vec<Instruction>,
    /// Fall-through successor (see the type-level docs).
    pub fallthrough: Option<BlockId>,
}

impl BasicBlock {
    /// Creates an empty basic block.
    pub fn new() -> Self {
        BasicBlock::default()
    }

    /// The block's terminating instruction, if any.
    pub fn terminator(&self) -> Option<&Instruction> {
        self.instructions.last()
    }

    /// Successor blocks within the same procedure, in (taken, not-taken)
    /// order for conditional branches.
    pub fn successors(&self) -> Vec<BlockId> {
        let mut out = Vec::with_capacity(2);
        match self.terminator() {
            Some(t) if t.opcode.is_cond_branch() => {
                if let Some(target) = t.branch_target {
                    out.push(target);
                }
                if let Some(ft) = self.fallthrough {
                    out.push(ft);
                }
            }
            Some(t) if t.opcode == Opcode::Jump => {
                if let Some(target) = t.branch_target {
                    out.push(target);
                }
            }
            Some(t) if t.opcode == Opcode::Return => {}
            _ => {
                if let Some(ft) = self.fallthrough {
                    out.push(ft);
                }
            }
        }
        out
    }

    /// The procedure called by this block's terminator, if it ends in a call.
    pub fn callee(&self) -> Option<ProcId> {
        self.terminator().and_then(|t| {
            if t.opcode == Opcode::Call {
                t.call_target
            } else {
                None
            }
        })
    }

    /// Number of instructions, excluding special NOOP hints.
    pub fn real_instruction_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| !i.is_hint_noop())
            .count()
    }

    /// `true` if the block ends the procedure (returns).
    pub fn is_exit(&self) -> bool {
        matches!(self.terminator().map(|t| t.opcode), Some(Opcode::Return))
    }
}

/// A procedure: a named collection of basic blocks with a distinguished entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Procedure {
    /// Human-readable name (unique within a program by construction when
    /// using [`crate::builder::ProgramBuilder`]).
    pub name: String,
    /// Basic blocks, indexed by [`BlockId`].
    pub blocks: Vec<BasicBlock>,
    /// Entry block.
    pub entry: BlockId,
    /// `true` for library routines: the paper's compiler pass does not
    /// analyse these and lets the issue queue grow to its maximum size
    /// immediately before calling them (§4.4).
    pub is_library: bool,
}

impl Procedure {
    /// Returns the block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.0]
    }

    /// Iterates over `(BlockId, &BasicBlock)` pairs in id order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &BasicBlock)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId(i), b))
    }

    /// Total number of static instructions in the procedure.
    pub fn instruction_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instructions.len()).sum()
    }

    /// All procedures this procedure may call directly.
    pub fn callees(&self) -> Vec<ProcId> {
        let mut out: Vec<ProcId> = self.blocks.iter().filter_map(|b| b.callee()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// A whole program: procedures plus the entry procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Procedures, indexed by [`ProcId`].
    pub procedures: Vec<Procedure>,
    /// Entry procedure (execution starts at its entry block).
    pub entry: ProcId,
    /// Optional descriptive name (e.g. the benchmark it models).
    pub name: String,
}

impl Program {
    /// Returns the procedure with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn proc(&self, id: ProcId) -> &Procedure {
        &self.procedures[id.0]
    }

    /// Mutable access to a procedure.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn proc_mut(&mut self, id: ProcId) -> &mut Procedure {
        &mut self.procedures[id.0]
    }

    /// Iterates `(ProcId, &Procedure)` pairs in id order.
    pub fn iter_procs(&self) -> impl Iterator<Item = (ProcId, &Procedure)> {
        self.procedures
            .iter()
            .enumerate()
            .map(|(i, p)| (ProcId(i), p))
    }

    /// Looks a procedure up by name.
    pub fn proc_by_name(&self, name: &str) -> Option<ProcId> {
        self.procedures
            .iter()
            .position(|p| p.name == name)
            .map(ProcId)
    }

    /// The instruction at `loc`.
    ///
    /// # Panics
    ///
    /// Panics if any component of the location is out of range.
    pub fn instruction(&self, loc: InstrLoc) -> &Instruction {
        &self.proc(loc.proc).block(loc.block).instructions[loc.index]
    }

    /// Total static instruction count across all procedures.
    pub fn static_instruction_count(&self) -> usize {
        self.procedures.iter().map(|p| p.instruction_count()).sum()
    }

    /// Count of special NOOP hint instructions (inserted by the compiler's
    /// NOOP technique).
    pub fn hint_noop_count(&self) -> usize {
        self.procedures
            .iter()
            .flat_map(|p| p.blocks.iter())
            .flat_map(|b| b.instructions.iter())
            .filter(|i| i.is_hint_noop())
            .count()
    }

    /// Iterates over every instruction location in the program, in
    /// (procedure, block, index) order.
    pub fn iter_locs(&self) -> impl Iterator<Item = InstrLoc> + '_ {
        self.iter_procs().flat_map(|(pid, p)| {
            p.iter_blocks().flat_map(move |(bid, b)| {
                (0..b.instructions.len()).map(move |i| InstrLoc {
                    proc: pid,
                    block: bid,
                    index: i,
                })
            })
        })
    }

    /// Structural validation of the whole program.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found: dangling block or
    /// procedure references, blocks with neither a terminator nor a
    /// fall-through, malformed instructions, or an empty entry procedure.
    pub fn validate(&self) -> Result<(), String> {
        if self.procedures.is_empty() {
            return Err("program has no procedures".to_string());
        }
        if self.entry.0 >= self.procedures.len() {
            return Err(format!("entry {} out of range", self.entry));
        }
        for (pid, proc) in self.iter_procs() {
            if proc.blocks.is_empty() {
                return Err(format!("{pid} ({}) has no blocks", proc.name));
            }
            if proc.entry.0 >= proc.blocks.len() {
                return Err(format!("{pid} entry {} out of range", proc.entry));
            }
            for (bid, block) in proc.iter_blocks() {
                for (idx, inst) in block.instructions.iter().enumerate() {
                    inst.validate()
                        .map_err(|e| format!("{pid}:{bid}:{idx} ({}): {e}", proc.name))?;
                    if let Some(target) = inst.branch_target {
                        if target.0 >= proc.blocks.len() {
                            return Err(format!(
                                "{pid}:{bid}:{idx}: branch target {target} out of range"
                            ));
                        }
                    }
                    if let Some(callee) = inst.call_target {
                        if callee.0 >= self.procedures.len() {
                            return Err(format!(
                                "{pid}:{bid}:{idx}: call target {callee} out of range"
                            ));
                        }
                    }
                    // Control-flow instructions must terminate their block.
                    if inst.opcode.is_control() && idx + 1 != block.instructions.len() {
                        return Err(format!(
                            "{pid}:{bid}:{idx}: control-flow instruction {} is not the block terminator",
                            inst.opcode
                        ));
                    }
                }
                if let Some(ft) = block.fallthrough {
                    if ft.0 >= proc.blocks.len() {
                        return Err(format!("{pid}:{bid}: fallthrough {ft} out of range"));
                    }
                }
                let term = block.terminator().map(|t| t.opcode);
                let needs_fallthrough = match term {
                    Some(Opcode::Jump) | Some(Opcode::Return) => false,
                    Some(op) if op.is_cond_branch() => true,
                    Some(Opcode::Call) => true,
                    _ => true,
                };
                if needs_fallthrough && block.fallthrough.is_none() {
                    return Err(format!(
                        "{pid}:{bid} ({}) has no fall-through successor and does not end in a jump or return",
                        proc.name
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Assigns a pseudo address to every static instruction.
///
/// Addresses drive the branch predictor, BTB and I-cache in the timing
/// simulator, standing in for the code layout a real linker would produce.
/// Instructions are laid out contiguously, 4 bytes apart, procedure by
/// procedure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AddressMap {
    /// `block_base[proc][block]` = address of the block's first instruction.
    block_base: Vec<Vec<u64>>,
    /// Reverse map from block start address to block.
    by_addr: HashMap<u64, BlockRef>,
    /// First address after the program.
    end: u64,
}

/// Base address of the first instruction in the program.
pub const TEXT_BASE: u64 = 0x0040_0000;
/// Size of one encoded instruction in bytes.
pub const INSTR_BYTES: u64 = 4;

impl AddressMap {
    /// Builds the address map for `program`.
    pub fn build(program: &Program) -> Self {
        let mut block_base = Vec::with_capacity(program.procedures.len());
        let mut by_addr = HashMap::new();
        let mut cursor = TEXT_BASE;
        for (pid, proc) in program.iter_procs() {
            let mut bases = Vec::with_capacity(proc.blocks.len());
            for (bid, block) in proc.iter_blocks() {
                bases.push(cursor);
                by_addr.insert(
                    cursor,
                    BlockRef {
                        proc: pid,
                        block: bid,
                    },
                );
                cursor += INSTR_BYTES * block.instructions.len().max(1) as u64;
            }
            block_base.push(bases);
        }
        AddressMap {
            block_base,
            by_addr,
            end: cursor,
        }
    }

    /// Address of the instruction at `loc`.
    ///
    /// # Panics
    ///
    /// Panics if the location is out of range for the program this map was
    /// built from.
    pub fn addr_of(&self, loc: InstrLoc) -> u64 {
        self.block_base[loc.proc.0][loc.block.0] + INSTR_BYTES * loc.index as u64
    }

    /// Address of the first instruction of a block.
    pub fn block_addr(&self, block: BlockRef) -> u64 {
        self.block_base[block.proc.0][block.block.0]
    }

    /// Block starting at `addr`, if any.
    pub fn block_at(&self, addr: u64) -> Option<BlockRef> {
        self.by_addr.get(&addr).copied()
    }

    /// One past the last instruction address.
    pub fn end(&self) -> u64 {
        self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::reg::int_reg;

    fn two_proc_program() -> Program {
        let mut b = ProgramBuilder::new();
        let callee = b.procedure("callee");
        {
            let p = b.proc_mut(callee);
            let entry = p.block();
            p.with_block(entry, |bb| {
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.ret();
            });
            p.set_entry(entry);
        }
        let main = b.procedure("main");
        {
            let p = b.proc_mut(main);
            let b0 = p.block();
            let b1 = p.block();
            let b2 = p.block();
            p.with_block(b0, |bb| {
                bb.li(int_reg(1), 0);
                bb.call(callee, b1);
            });
            p.with_block(b1, |bb| {
                bb.addi(int_reg(1), int_reg(1), 1);
                bb.bgt(int_reg(1), 10, b2, b2);
            });
            p.with_block(b2, |bb| {
                bb.ret();
            });
            p.set_entry(b0);
        }
        b.finish(main).unwrap()
    }

    #[test]
    fn validates_well_formed_program() {
        let p = two_proc_program();
        assert!(p.validate().is_ok());
        assert_eq!(p.procedures.len(), 2);
        assert!(p.static_instruction_count() >= 6);
    }

    #[test]
    fn successors_follow_terminator_shape() {
        let p = two_proc_program();
        let main = p.proc_by_name("main").unwrap();
        let proc = p.proc(main);
        // Entry block ends in a call → successor is the fall-through.
        assert_eq!(proc.block(proc.entry).successors().len(), 1);
        assert!(proc.block(proc.entry).callee().is_some());
        // Return block has no successors.
        let exit = proc
            .iter_blocks()
            .find(|(_, b)| b.is_exit())
            .map(|(id, _)| id)
            .unwrap();
        assert!(proc.block(exit).successors().is_empty());
    }

    #[test]
    fn validation_rejects_dangling_branch_target() {
        let mut p = two_proc_program();
        let main = p.proc_by_name("main").unwrap();
        // Point a branch at a non-existent block.
        let proc = p.proc_mut(main);
        for block in &mut proc.blocks {
            for inst in &mut block.instructions {
                if inst.opcode.is_cond_branch() {
                    inst.branch_target = Some(BlockId(999));
                }
            }
        }
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_missing_fallthrough() {
        let mut p = two_proc_program();
        let main = p.proc_by_name("main").unwrap();
        let proc = p.proc_mut(main);
        // Remove the fall-through from the conditional-branch block.
        for block in &mut proc.blocks {
            if block
                .terminator()
                .map(|t| t.opcode.is_cond_branch())
                .unwrap_or(false)
            {
                block.fallthrough = None;
            }
        }
        assert!(p.validate().is_err());
    }

    #[test]
    fn validation_rejects_control_flow_mid_block() {
        let mut p = two_proc_program();
        let main = p.proc_by_name("main").unwrap();
        let entry = p.proc(main).entry;
        let ret = Instruction::ret();
        p.proc_mut(main)
            .block_mut(entry)
            .instructions
            .insert(0, ret);
        assert!(p.validate().is_err());
    }

    #[test]
    fn address_map_is_monotone_and_reversible() {
        let p = two_proc_program();
        let map = AddressMap::build(&p);
        let mut last = 0;
        for loc in p.iter_locs() {
            let a = map.addr_of(loc);
            assert!(a >= TEXT_BASE);
            assert!(a < map.end());
            assert!(a > last || last == 0);
            last = a;
        }
        // Block starts resolve back to the correct block.
        for (pid, proc) in p.iter_procs() {
            for (bid, _) in proc.iter_blocks() {
                let r = BlockRef {
                    proc: pid,
                    block: bid,
                };
                assert_eq!(map.block_at(map.block_addr(r)), Some(r));
            }
        }
    }

    #[test]
    fn hint_noop_count_tracks_inserted_hints() {
        let mut p = two_proc_program();
        assert_eq!(p.hint_noop_count(), 0);
        let main = p.proc_by_name("main").unwrap();
        let entry = p.proc(main).entry;
        p.proc_mut(main)
            .block_mut(entry)
            .instructions
            .insert(0, Instruction::hint_noop(8));
        assert_eq!(p.hint_noop_count(), 1);
        assert!(p.validate().is_ok());
    }
}
