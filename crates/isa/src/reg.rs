//! Architectural registers.
//!
//! The synthetic ISA has 32 integer and 32 floating-point architectural
//! registers, mirroring the Alpha-like machine modelled by the paper. The
//! timing simulator renames these onto the banked physical register files
//! described in Table 1 (112 integer + 112 FP physical registers, 14 banks
//! of 8 each).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of integer architectural registers.
pub const NUM_ARCH_INT_REGS: u8 = 32;
/// Number of floating-point architectural registers.
pub const NUM_ARCH_FP_REGS: u8 = 32;

/// Register class: integer or floating point.
///
/// The paper only reports results for the *integer* register file because the
/// SPECint benchmarks contain few FP instructions, but the machine model (and
/// this reproduction) carries both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RegClass {
    /// Integer registers `r0..r31`.
    Int,
    /// Floating-point registers `f0..f31`.
    Fp,
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Int => write!(f, "int"),
            RegClass::Fp => write!(f, "fp"),
        }
    }
}

/// An architectural register (class + index).
///
/// Construct with [`int_reg`] / [`fp_reg`] or [`ArchReg::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ArchReg {
    class: RegClass,
    index: u8,
}

impl ArchReg {
    /// Creates a new architectural register.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the class (>= 32).
    pub fn new(class: RegClass, index: u8) -> Self {
        let limit = match class {
            RegClass::Int => NUM_ARCH_INT_REGS,
            RegClass::Fp => NUM_ARCH_FP_REGS,
        };
        assert!(
            index < limit,
            "architectural register index {index} out of range for class {class}"
        );
        ArchReg { class, index }
    }

    /// The register class.
    pub fn class(&self) -> RegClass {
        self.class
    }

    /// The register index within its class.
    pub fn index(&self) -> u8 {
        self.index
    }

    /// Returns `true` if this is an integer register.
    pub fn is_int(&self) -> bool {
        self.class == RegClass::Int
    }

    /// Returns `true` if this is a floating-point register.
    pub fn is_fp(&self) -> bool {
        self.class == RegClass::Fp
    }

    /// A dense index over both classes (`0..32` int, `32..64` fp), handy for
    /// rename-table lookups.
    pub fn flat_index(&self) -> usize {
        match self.class {
            RegClass::Int => self.index as usize,
            RegClass::Fp => NUM_ARCH_INT_REGS as usize + self.index as usize,
        }
    }

    /// Total number of architectural registers over both classes.
    pub const fn flat_count() -> usize {
        NUM_ARCH_INT_REGS as usize + NUM_ARCH_FP_REGS as usize
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class {
            RegClass::Int => write!(f, "r{}", self.index),
            RegClass::Fp => write!(f, "f{}", self.index),
        }
    }
}

/// Shorthand constructor for an integer register.
///
/// # Panics
///
/// Panics if `index >= 32`.
pub fn int_reg(index: u8) -> ArchReg {
    ArchReg::new(RegClass::Int, index)
}

/// Shorthand constructor for a floating-point register.
///
/// # Panics
///
/// Panics if `index >= 32`.
pub fn fp_reg(index: u8) -> ArchReg {
    ArchReg::new(RegClass::Fp, index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_reg_roundtrip() {
        let r = int_reg(7);
        assert_eq!(r.class(), RegClass::Int);
        assert_eq!(r.index(), 7);
        assert!(r.is_int());
        assert!(!r.is_fp());
        assert_eq!(r.to_string(), "r7");
    }

    #[test]
    fn fp_reg_roundtrip() {
        let r = fp_reg(31);
        assert_eq!(r.class(), RegClass::Fp);
        assert_eq!(r.index(), 31);
        assert!(r.is_fp());
        assert_eq!(r.to_string(), "f31");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn int_reg_out_of_range_panics() {
        let _ = int_reg(32);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fp_reg_out_of_range_panics() {
        let _ = fp_reg(200);
    }

    #[test]
    fn flat_index_is_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..NUM_ARCH_INT_REGS {
            assert!(seen.insert(int_reg(i).flat_index()));
        }
        for i in 0..NUM_ARCH_FP_REGS {
            assert!(seen.insert(fp_reg(i).flat_index()));
        }
        assert_eq!(seen.len(), ArchReg::flat_count());
        assert!(seen.iter().all(|&i| i < ArchReg::flat_count()));
    }

    #[test]
    fn ordering_groups_by_class_then_index() {
        assert!(int_reg(31) < fp_reg(0));
        assert!(int_reg(3) < int_reg(4));
    }
}
