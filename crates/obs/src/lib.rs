//! # sdiq-obs — observability for the reproduction pipeline
//!
//! The reproduction now spans compiled plans, a work-queue engine,
//! subprocess shards and a TCP fleet, but until this crate the only
//! timing signal was ad-hoc `eprintln!` lines and whatever a profiler
//! could be talked into. This crate is the shared substrate the engine,
//! the artifact cache, the checkpoint writer and the remote scheduler
//! all record into:
//!
//! * **Tracing spans** ([`span`], [`instant`]) — RAII guards over a
//!   monotonic [`Instant`] clock, buffered per thread and drained to a
//!   global collector ([`drain`]). Off by default: when tracing is
//!   disabled ([`set_tracing`]), `span()` is one relaxed atomic load
//!   and returns `None` — no allocation, no lock, no clock read. The
//!   drained [`TraceEvent`]s are exported as Chrome trace-event JSON by
//!   `sdiq_core::trace` (kept there because the JSON builder lives in
//!   `sdiq-core`; this crate stays dependency-free either way).
//! * **Metrics** ([`metrics`]) — an always-on registry of atomic
//!   counters, gauges and log2-bucketed histograms. "Always-on" is
//!   affordable because every operation is one relaxed atomic RMW per
//!   *cell-grained* event (cells run for milliseconds; nothing in the
//!   per-cycle simulator loop touches this crate). [`MetricsDelta`] is
//!   the compact wire snapshot `repro serve` daemons piggyback on their
//!   heartbeat frames so a coordinator can aggregate per-worker cache
//!   hit rates and simulated-instruction throughput live.
//! * **Progress** ([`Progress`]) — a rate-limited cells-done/total/ETA
//!   line for `--progress`, written by callers to **stderr only** so
//!   piped stdout (figures, `--sweep-summary`) stays machine-parseable.
//!
//! The hard contract, enforced by the integration suite and a
//! `sim_throughput` overhead row: observability is strictly
//! *out-of-band*. Cell keys, persisted bytes and `ActivityStats` are
//! bit-identical with tracing on or off, because nothing here feeds back
//! into the simulation — this crate only ever observes.
//!
//! Std-only, no dependencies (the workspace builds fully offline).

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Clock and the tracing switch
// ---------------------------------------------------------------------------

/// Global tracing enable. Relaxed ordering is deliberate: the flag only
/// gates *whether* events are recorded, never any data another thread
/// must observe consistently.
static TRACING: AtomicBool = AtomicBool::new(false);

/// Turns span/instant recording on or off process-wide. Metrics are
/// unaffected (they are always on).
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::Relaxed);
}

/// `true` if spans are currently being recorded.
pub fn tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// The process's trace epoch: every timestamp is nanoseconds since the
/// first call to this function. Monotonic ([`Instant`]), so spans can
/// never go backwards even if the wall clock steps.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch (also the daemon-lifetime wall used
/// by [`MetricsDelta::capture`]).
pub fn now_nanos() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Trace events
// ---------------------------------------------------------------------------

/// One recorded trace event: a duration span (`dur_nanos = Some`) or an
/// instant marker (`dur_nanos = None`), in Chrome trace-event terms a
/// B/E pair or an `i` event. `pid` is a process lane: `0` is the local
/// process; a remote coordinator re-lanes worker events to
/// `worker index + 1` before injecting them, so Perfetto shows one
/// process track per fleet member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span or marker name (e.g. `cell`, `compile`, `run-batch`).
    pub name: String,
    /// Category lane (e.g. `cache`, `cell`, `sched`, `server`,
    /// `persist`).
    pub cat: String,
    /// Process lane (see type docs).
    pub pid: u64,
    /// Thread lane, assigned per recording thread in first-use order.
    pub tid: u64,
    /// Start time, nanoseconds since the recording process's epoch.
    pub start_nanos: u64,
    /// Span duration; `None` marks an instant event.
    pub dur_nanos: Option<u64>,
    /// Free-form `key=value` annotations (cell keys, batch sizes, ...).
    pub args: Vec<(String, String)>,
}

/// Global collector cap: a runaway tracer degrades to dropping events
/// (counted in [`Metrics::trace_events_dropped`]) instead of eating the
/// heap. 2^20 events ≈ a few hundred MB worst case, far above any real
/// matrix run.
const MAX_GLOBAL_EVENTS: usize = 1 << 20;

/// Thread buffers flush to the global collector at this size so the
/// global lock is touched once per ~kilobatch, not per span.
const FLUSH_THRESHOLD: usize = 1024;

fn global() -> &'static Mutex<Vec<TraceEvent>> {
    static GLOBAL: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());
    &GLOBAL
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Locks recovering from poisoning: collectors hold no invariants a
/// panicking recorder could have broken mid-update (the vectors are
/// append-only), so surviving threads keep tracing.
fn lock_or_recover<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

struct LocalBuffer {
    tid: u64,
    events: Vec<TraceEvent>,
}

impl LocalBuffer {
    fn flush(&mut self) {
        if self.events.is_empty() {
            return;
        }
        let mut global = lock_or_recover(global());
        let room = MAX_GLOBAL_EVENTS.saturating_sub(global.len());
        if self.events.len() > room {
            metrics()
                .trace_events_dropped
                .add((self.events.len() - room) as u64);
            self.events.truncate(room);
        }
        global.append(&mut self.events);
    }
}

impl Drop for LocalBuffer {
    // Thread exit flushes whatever the thread still holds — a backstop
    // only: `std::thread::scope` unblocks its owner when the spawned
    // closure returns, and TLS destructors run *after* that during
    // thread teardown, so a drain racing the teardown would miss these
    // events. Worker closures therefore call [`flush`] explicitly as
    // their last act.
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuffer> = const {
        RefCell::new(LocalBuffer { tid: 0, events: Vec::new() })
    };
}

fn record(mut event: TraceEvent) {
    LOCAL.with(|buffer| {
        let mut buffer = buffer.borrow_mut();
        if buffer.tid == 0 {
            buffer.tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        }
        event.tid = buffer.tid;
        buffer.events.push(event);
        if buffer.events.len() >= FLUSH_THRESHOLD {
            buffer.flush();
        }
    });
}

/// An open duration span: created by [`span`], recorded when dropped.
/// Annotate with [`Span::arg`]. The guard is cheap — one clock read at
/// open, one at drop, a thread-local push in between.
#[must_use = "a span records its duration when dropped"]
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    cat: &'static str,
    start_nanos: u64,
    args: Vec<(String, String)>,
}

impl Span {
    /// Attaches a `key=value` annotation (allocates — only reachable
    /// when tracing is on).
    pub fn arg(mut self, key: &str, value: &str) -> Span {
        self.args.push((key.to_string(), value.to_string()));
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let end = now_nanos();
        record(TraceEvent {
            name: self.name.to_string(),
            cat: self.cat.to_string(),
            pid: 0,
            tid: 0, // assigned by `record`
            start_nanos: self.start_nanos,
            dur_nanos: Some(end.saturating_sub(self.start_nanos)),
            args: std::mem::take(&mut self.args),
        });
    }
}

/// Opens a duration span, or returns `None` (one relaxed load, nothing
/// else) when tracing is off. Typical use:
/// `let _span = sdiq_obs::span("compile", "cache");`
pub fn span(name: &'static str, cat: &'static str) -> Option<Span> {
    if !tracing() {
        return None;
    }
    Some(Span {
        name,
        cat,
        start_nanos: now_nanos(),
        args: Vec::new(),
    })
}

/// Records an instant event (a zero-duration marker) when tracing is on.
pub fn instant(name: &'static str, cat: &'static str, args: &[(&str, &str)]) {
    if !tracing() {
        return;
    }
    record(TraceEvent {
        name: name.to_string(),
        cat: cat.to_string(),
        pid: 0,
        tid: 0,
        start_nanos: now_nanos(),
        dur_nanos: None,
        args: args
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    });
}

/// Flushes the calling thread's buffer and takes every collected event.
///
/// Only the calling thread's buffer can be flushed from here; other
/// threads deliver their events when they exit (scoped pools join
/// before their spawner continues, so by the time a run returns and the
/// runner drains, every worker's events are in). A long-lived thread
/// recording concurrently with `drain` keeps its unflushed tail for the
/// next drain — nothing is lost, only deferred.
pub fn drain() -> Vec<TraceEvent> {
    flush();
    std::mem::take(&mut *lock_or_recover(global()))
}

/// Flushes the calling thread's buffer to the global collector.
///
/// Pool and driver threads must call this as the last statement of
/// their spawned closure: `std::thread::scope` unblocks the spawner the
/// moment the closure returns, while the TLS-destructor flush only
/// happens later during thread teardown — an unsynchronised window in
/// which a [`drain`] would miss the thread's events entirely.
pub fn flush() {
    LOCAL.with(|buffer| buffer.borrow_mut().flush());
}

/// Injects externally produced events (a remote worker's drained trace,
/// re-laned to that worker's pid) into the collector.
pub fn inject(events: Vec<TraceEvent>) {
    let mut global = lock_or_recover(global());
    let room = MAX_GLOBAL_EVENTS.saturating_sub(global.len());
    if events.len() > room {
        metrics()
            .trace_events_dropped
            .add((events.len() - room) as u64);
    }
    global.extend(events.into_iter().take(room));
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (e.g. cells currently in flight).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (saturating at zero under racy over-subtraction —
    /// a gauge briefly reading low beats wrapping to 2^64).
    pub fn sub(&self, n: u64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count of [`Histogram`]: one per log2 magnitude of a `u64`
/// (bucket 0 holds exactly the value 0; bucket `k ≥ 1` holds values in
/// `[2^(k−1), 2^k)`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed log2-bucketed histogram (count, sum, 65 magnitude buckets).
/// Fixed buckets mean `observe` is a branch and three relaxed RMWs —
/// cheap enough to leave on for every cell.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The log2 bucket index a value lands in.
pub fn histogram_bucket(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[histogram_bucket(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(index, bucket)| {
                    let count = bucket.load(Ordering::Relaxed);
                    (count > 0).then_some((index as u32, count))
                })
                .collect(),
        }
    }
}

/// A copied-out histogram: total count, total sum, and the non-empty
/// log2 buckets as `(bucket index, count)` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Non-empty buckets, ascending by index (see [`histogram_bucket`]).
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The process-wide metrics registry: every field is one always-on
/// atomic instrument. Names are the wire/report names (see the
/// EXPERIMENTS.md span-and-metric taxonomy).
#[derive(Debug, Default)]
pub struct Metrics {
    /// `ArtifactCache` program slots served from cache.
    pub cache_program_hits: Counter,
    /// `ArtifactCache` program slots built (initializer ran).
    pub cache_program_misses: Counter,
    /// `ArtifactCache` compile slots served from cache.
    pub cache_compile_hits: Counter,
    /// `ArtifactCache` compile slots built.
    pub cache_compile_misses: Counter,
    /// `ArtifactCache` plan slots served from cache.
    pub cache_plan_hits: Counter,
    /// `ArtifactCache` plan slots built.
    pub cache_plan_misses: Counter,
    /// Cells computed to completion by the engine (seeded cells do not
    /// count — they were never run).
    pub cells_done: Counter,
    /// Cells currently being simulated by this process.
    pub cells_in_flight: Gauge,
    /// Simulated (committed) instructions across all completed cells.
    pub sim_instructions: Counter,
    /// Per-cell wall time, nanoseconds.
    pub cell_wall_nanos: Histogram,
    /// Cells appended to a checkpoint file.
    pub checkpoint_appends: Counter,
    /// Batches submitted to remote workers by the scheduler.
    pub batches_issued: Counter,
    /// Cells speculatively re-issued to an idle worker.
    pub speculation_issued: Counter,
    /// Speculation races decided: the duplicate arrived after a result
    /// was already accepted (the extra work lost).
    pub speculation_duplicates: Counter,
    /// Cells re-queued after a worker failure.
    pub requeues: Counter,
    /// Workers declared dead by the heartbeat deadline.
    pub deadline_verdicts: Counter,
    /// Trace events discarded because the collector was full.
    pub trace_events_dropped: Counter,
}

/// One metric rendered out of [`Metrics::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (stable; the report/wire vocabulary).
    pub name: &'static str,
    /// Unit, for display (`cells`, `events`, `ns`, ...).
    pub unit: &'static str,
    /// The value at snapshot time.
    pub value: SampleValue,
}

/// The value of one [`Sample`].
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// A monotonic counter's value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(u64),
    /// A histogram's state.
    Histogram(HistogramSnapshot),
}

impl Metrics {
    /// A point-in-time copy of every instrument, in declaration order.
    pub fn snapshot(&self) -> Vec<Sample> {
        fn counter(name: &'static str, unit: &'static str, c: &Counter) -> Sample {
            Sample {
                name,
                unit,
                value: SampleValue::Counter(c.get()),
            }
        }
        vec![
            counter("cache_program_hits", "programs", &self.cache_program_hits),
            counter(
                "cache_program_misses",
                "programs",
                &self.cache_program_misses,
            ),
            counter("cache_compile_hits", "compiles", &self.cache_compile_hits),
            counter(
                "cache_compile_misses",
                "compiles",
                &self.cache_compile_misses,
            ),
            counter("cache_plan_hits", "plans", &self.cache_plan_hits),
            counter("cache_plan_misses", "plans", &self.cache_plan_misses),
            counter("cells_done", "cells", &self.cells_done),
            Sample {
                name: "cells_in_flight",
                unit: "cells",
                value: SampleValue::Gauge(self.cells_in_flight.get()),
            },
            counter("sim_instructions", "instructions", &self.sim_instructions),
            Sample {
                name: "cell_wall_nanos",
                unit: "ns",
                value: SampleValue::Histogram(self.cell_wall_nanos.snapshot()),
            },
            counter("checkpoint_appends", "cells", &self.checkpoint_appends),
            counter("batches_issued", "batches", &self.batches_issued),
            counter("speculation_issued", "cells", &self.speculation_issued),
            counter(
                "speculation_duplicates",
                "cells",
                &self.speculation_duplicates,
            ),
            counter("requeues", "cells", &self.requeues),
            counter("deadline_verdicts", "workers", &self.deadline_verdicts),
            counter("trace_events_dropped", "events", &self.trace_events_dropped),
        ]
    }

    /// Total cache hits across the three artifact kinds.
    pub fn cache_hits(&self) -> u64 {
        self.cache_program_hits.get() + self.cache_compile_hits.get() + self.cache_plan_hits.get()
    }

    /// Total cache misses across the three artifact kinds.
    pub fn cache_misses(&self) -> u64 {
        self.cache_program_misses.get()
            + self.cache_compile_misses.get()
            + self.cache_plan_misses.get()
    }
}

/// The process-wide metrics registry.
pub fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(Metrics::default)
}

// ---------------------------------------------------------------------------
// The wire snapshot
// ---------------------------------------------------------------------------

/// The compact per-worker metrics snapshot a `repro serve` daemon
/// piggybacks on its heartbeat frames. Every field is a **cumulative
/// total since the daemon's epoch** (not an increment): snapshots are
/// idempotent, so a lost or reordered heartbeat never corrupts the
/// coordinator's aggregate — the next one simply supersedes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsDelta {
    /// Cells computed to completion.
    pub cells_done: u64,
    /// Cells in flight at snapshot time (the one gauge).
    pub cells_in_flight: u64,
    /// Committed instructions simulated.
    pub sim_instructions: u64,
    /// Artifact-cache hits (programs + compiles + plans).
    pub cache_hits: u64,
    /// Artifact-cache misses.
    pub cache_misses: u64,
    /// Nanoseconds since the daemon's trace epoch, for rate math.
    pub wall_nanos: u64,
}

impl MetricsDelta {
    /// Snapshots the process registry.
    pub fn capture() -> MetricsDelta {
        let m = metrics();
        MetricsDelta {
            cells_done: m.cells_done.get(),
            cells_in_flight: m.cells_in_flight.get(),
            sim_instructions: m.sim_instructions.get(),
            cache_hits: m.cache_hits(),
            cache_misses: m.cache_misses(),
            wall_nanos: now_nanos(),
        }
    }

    /// Cache hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Lifetime average simulated instructions per second.
    pub fn instructions_per_second(&self) -> f64 {
        if self.wall_nanos == 0 {
            0.0
        } else {
            self.sim_instructions as f64 / (self.wall_nanos as f64 / 1e9)
        }
    }
}

// ---------------------------------------------------------------------------
// Progress
// ---------------------------------------------------------------------------

/// Rate-limited progress reporting for long matrix runs: one
/// `cells done/total (%) · rate · ETA` line at most once a second (plus
/// one final line at completion). The caller prints the returned line —
/// to **stderr** — so this type stays I/O-free and testable.
#[derive(Debug)]
pub struct Progress {
    total: usize,
    done: AtomicUsize,
    started: Instant,
    last_emit: Mutex<Option<Instant>>,
}

impl Progress {
    /// A tracker over `total` expected completions.
    pub fn new(total: usize) -> Progress {
        Progress {
            total,
            done: AtomicUsize::new(0),
            started: Instant::now(),
            last_emit: Mutex::new(None),
        }
    }

    /// Records one completion. Returns a line to print when at least a
    /// second has passed since the last emitted line — or always for
    /// the final completion, so short runs still report once.
    pub fn record(&self) -> Option<String> {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let mut last = lock_or_recover(&self.last_emit);
        let now = Instant::now();
        let due = done >= self.total
            || match *last {
                None => true,
                Some(at) => now.duration_since(at).as_secs_f64() >= 1.0,
            };
        if !due {
            return None;
        }
        *last = Some(now);
        Some(self.line_at(done))
    }

    /// The current progress line (without recording anything).
    pub fn line(&self) -> String {
        self.line_at(self.done.load(Ordering::Relaxed))
    }

    fn line_at(&self, done: usize) -> String {
        let elapsed = self.started.elapsed().as_secs_f64();
        let rate = if elapsed > 0.0 {
            done as f64 / elapsed
        } else {
            0.0
        };
        let percent = if self.total == 0 {
            100.0
        } else {
            done as f64 * 100.0 / self.total as f64
        };
        let eta = if rate > 0.0 && done < self.total {
            format!(", ETA {:.0}s", (self.total - done) as f64 / rate)
        } else {
            String::new()
        };
        format!(
            "progress: {done}/{} cells ({percent:.1}%), {rate:.1} cells/s{eta}",
            self.total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global; tests that toggle it serialise
    /// here so cargo's parallel test threads don't interleave.
    fn tracing_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn spans_record_nested_durations_and_drain() {
        let _guard = tracing_lock();
        let _ = drain(); // discard anything a prior test left behind
        set_tracing(true);
        {
            let _outer = span("outer", "test").map(|s| s.arg("key", "value"));
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("inner", "test");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            instant("marker", "test", &[("n", "1")]);
        }
        set_tracing(false);
        let events = drain();
        assert_eq!(events.len(), 3);
        // Drop order: inner span, then the instant, then the outer span.
        let inner = &events[0];
        let marker = &events[1];
        let outer = &events[2];
        assert_eq!(inner.name, "inner");
        assert_eq!(marker.name, "marker");
        assert_eq!(marker.dur_nanos, None);
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.args, vec![("key".to_string(), "value".to_string())]);
        let (inner_dur, outer_dur) = (inner.dur_nanos.unwrap(), outer.dur_nanos.unwrap());
        assert!(
            outer_dur > inner_dur,
            "outer {outer_dur} > inner {inner_dur}"
        );
        // Proper nesting: inner starts after outer, ends before it.
        assert!(inner.start_nanos >= outer.start_nanos);
        assert!(
            inner.start_nanos + inner_dur <= outer.start_nanos + outer_dur,
            "inner span must close inside the outer one"
        );
        // Same thread, same lane.
        assert_eq!(inner.tid, outer.tid);
    }

    #[test]
    fn disabled_tracing_records_nothing() {
        let _guard = tracing_lock();
        set_tracing(false);
        let _ = drain();
        assert!(span("x", "test").is_none());
        instant("y", "test", &[]);
        assert!(drain().is_empty());
    }

    #[test]
    fn injected_events_come_back_out_of_drain() {
        let _guard = tracing_lock();
        let _ = drain();
        let event = TraceEvent {
            name: "remote".to_string(),
            cat: "cell".to_string(),
            pid: 3,
            tid: 1,
            start_nanos: 10,
            dur_nanos: Some(5),
            args: Vec::new(),
        };
        inject(vec![event.clone()]);
        assert_eq!(drain(), vec![event]);
    }

    #[test]
    fn histogram_buckets_are_log2_magnitudes() {
        assert_eq!(histogram_bucket(0), 0);
        assert_eq!(histogram_bucket(1), 1);
        assert_eq!(histogram_bucket(2), 2);
        assert_eq!(histogram_bucket(3), 2);
        assert_eq!(histogram_bucket(4), 3);
        assert_eq!(histogram_bucket(1023), 10);
        assert_eq!(histogram_bucket(1024), 11);
        assert_eq!(histogram_bucket(u64::MAX), 64);

        let h = Histogram::default();
        h.observe(0);
        h.observe(3);
        h.observe(3);
        h.observe(1024);
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        assert_eq!(snap.sum, 1030);
        assert_eq!(snap.buckets, vec![(0, 1), (2, 2), (11, 1)]);
        assert!((snap.mean() - 257.5).abs() < 1e-9);
    }

    #[test]
    fn gauge_saturates_instead_of_wrapping() {
        let g = Gauge::default();
        g.add(2);
        g.sub(5);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn metrics_delta_capture_is_monotonic_against_the_registry() {
        let before = MetricsDelta::capture();
        metrics().cells_done.inc();
        metrics().sim_instructions.add(100);
        let after = MetricsDelta::capture();
        assert!(after.cells_done > before.cells_done);
        assert!(after.sim_instructions >= before.sim_instructions + 100);
        assert!(after.wall_nanos >= before.wall_nanos);
    }

    #[test]
    fn progress_reports_first_and_final_completions() {
        let p = Progress::new(3);
        let first = p.record().expect("first completion always reports");
        assert!(first.starts_with("progress: 1/3 cells (33.3%)"), "{first}");
        // Second lands within the rate limit window.
        assert!(p.record().is_none());
        let last = p.record().expect("final completion always reports");
        assert!(last.starts_with("progress: 3/3 cells (100.0%)"), "{last}");
        assert!(!last.contains("ETA"), "complete runs have no ETA: {last}");
    }

    #[test]
    fn snapshot_names_are_unique_and_stable() {
        let samples = metrics().snapshot();
        let names: std::collections::HashSet<&str> =
            samples.iter().map(|sample| sample.name).collect();
        assert_eq!(names.len(), samples.len(), "duplicate metric name");
        assert!(names.contains("cells_done"));
        assert!(names.contains("cell_wall_nanos"));
        assert!(names.contains("cache_program_hits"));
    }
}
