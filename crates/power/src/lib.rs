//! # sdiq-power — Wattch-style activity-based power model
//!
//! The paper reports issue-queue and register-file power savings measured
//! with Wattch on top of SimpleScalar. Wattch's methodology is simple and
//! reproducible: every microarchitectural event (a CAM comparison, an array
//! read, a selection, a bank's leakage for one cycle) carries a fixed energy,
//! and the simulator's activity counts turn into energy by multiplication.
//! This crate applies that methodology to the [`sdiq_sim::ActivityStats`]
//! produced by the timing simulator.
//!
//! Absolute Joule values are meaningless here (the per-event energies are
//! relative weights, not extracted from a circuit model), but every number
//! the paper reports is a *normalised saving* against the baseline machine,
//! which only needs relative energies — exactly what this model provides.
//!
//! The crate distinguishes the three wakeup-accounting schemes compared in
//! the paper's Figure 8:
//!
//! * [`WakeupScheme::Full`] — the unmanaged baseline: every operand of every
//!   entry of the 80-entry queue is woken on every result broadcast,
//! * [`WakeupScheme::NonEmptyOnly`] — Folegnani & González's gating of empty
//!   entries (the `nonEmpty` bar),
//! * [`WakeupScheme::Gated`] — empty *and* ready operands gated, the
//!   assumption the paper's technique (and the Abella comparator) runs with.

pub mod low_energy;
pub mod model;
pub mod savings;
pub mod way_memo;

pub use model::{EnergyModel, PowerBreakdown, StructurePower, WakeupScheme};
pub use savings::{overall_processor_dynamic_savings, pct_saving, PowerSavings};
