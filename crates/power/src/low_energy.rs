//! Fetch/decode savings of the profiled low-energy instruction encoding
//! (the `lowen-isa` technique).
//!
//! Sleeba et al. (see PAPERS.md) add a reduced-toggle encoding for the
//! instructions a profile places on the hot path; fetching and decoding a
//! re-encoded instruction costs a fixed fraction less energy than the
//! conventional format, and nothing else changes. The compiler side lives
//! in `sdiq_compiler::low_energy` (loop blocks are the profile proxy); the
//! simulator counts the re-encoded commits in
//! [`ActivityStats::committed_low_energy`]; this module prices that count
//! at reporting time.

use sdiq_sim::ActivityStats;

/// Fraction of one instruction's fetch/decode energy the low-energy
/// encoding saves (a relative weight, like every energy in this crate).
pub const ENCODING_SAVING_FRACTION: f64 = 0.3;

/// Fraction of committed instructions (hint NOOPs included — they are
/// fetched and decoded too) that carried the low-energy encoding.
pub fn low_energy_commit_fraction(stats: &ActivityStats) -> f64 {
    let fetched = stats.committed + stats.committed_hints;
    if fetched == 0 {
        return 0.0;
    }
    stats.committed_low_energy as f64 / fetched as f64
}

/// Percentage of fetch/decode energy the run saved through the low-energy
/// encoding: the re-encoded fraction of the committed stream times the
/// per-instruction saving.
pub fn fetch_decode_dynamic_savings_pct(stats: &ActivityStats) -> f64 {
    100.0 * ENCODING_SAVING_FRACTION * low_energy_commit_fraction(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(committed: u64, hints: u64, low_energy: u64) -> ActivityStats {
        ActivityStats {
            committed,
            committed_hints: hints,
            committed_low_energy: low_energy,
            ..ActivityStats::default()
        }
    }

    #[test]
    fn empty_run_saves_nothing() {
        assert_eq!(fetch_decode_dynamic_savings_pct(&stats(0, 0, 0)), 0.0);
    }

    #[test]
    fn untracked_run_saves_nothing() {
        assert_eq!(fetch_decode_dynamic_savings_pct(&stats(1000, 10, 0)), 0.0);
    }

    #[test]
    fn fully_re_encoded_run_saves_the_full_fraction() {
        let pct = fetch_decode_dynamic_savings_pct(&stats(1000, 0, 1000));
        assert!((pct - 100.0 * ENCODING_SAVING_FRACTION).abs() < 1e-12);
    }

    #[test]
    fn savings_scale_with_the_re_encoded_fraction() {
        let half = fetch_decode_dynamic_savings_pct(&stats(1000, 0, 500));
        let full = fetch_decode_dynamic_savings_pct(&stats(1000, 0, 1000));
        assert!((2.0 * half - full).abs() < 1e-12);
    }
}
