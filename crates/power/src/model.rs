//! Per-event energies and the activity → energy conversion.

use sdiq_sim::ActivityStats;
use serde::{Deserialize, Serialize};

/// Which wakeup-gating scheme the issue-queue CAM runs with (Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WakeupScheme {
    /// Every operand of every entry is woken on every broadcast.
    Full,
    /// Only non-empty entries are woken (Folegnani & González).
    NonEmptyOnly,
    /// Empty and already-ready operands are gated (the paper's assumption
    /// for its technique and for the Abella comparator).
    Gated,
}

/// Relative per-event energies, in arbitrary units.
///
/// The ratios follow the usual Wattch observations for an 80-entry CAM/RAM
/// issue queue and a 112-entry multi-ported register file: the wakeup CAM
/// match is the dominant per-event cost in the issue queue, array reads and
/// writes are a few times cheaper, the selection tree is cheap ("the
/// selection logic ... consumes much lower energy than wakeup logic",
/// Palacharla et al., cited in §3.1), and leakage is charged per powered-on
/// bank per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy of one operand tag comparison in the wakeup CAM.
    pub iq_wakeup_comparison: f64,
    /// Energy of writing one entry at dispatch (CAM + RAM write).
    pub iq_write: f64,
    /// Energy of reading one entry at issue (payload RAM read).
    pub iq_read: f64,
    /// Energy of the selection logic, charged once per cycle (it is always
    /// on, §3.1).
    pub iq_selection_per_cycle: f64,
    /// Leakage energy of one issue-queue bank for one cycle.
    pub iq_bank_leakage_per_cycle: f64,
    /// Energy of one register-file port access when *all* banks are powered;
    /// the effective cost scales with the fraction of banks currently on.
    pub rf_access: f64,
    /// Leakage energy of one register-file bank for one cycle.
    pub rf_bank_leakage_per_cycle: f64,
}

impl EnergyModel {
    /// Default relative energies (see the type-level docs for the rationale).
    pub fn wattch_default() -> Self {
        EnergyModel {
            iq_wakeup_comparison: 1.0,
            iq_write: 4.0,
            iq_read: 3.0,
            iq_selection_per_cycle: 2.0,
            iq_bank_leakage_per_cycle: 1.0,
            rf_access: 2.0,
            rf_bank_leakage_per_cycle: 1.0,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::wattch_default()
    }
}

/// Dynamic and static energy of one structure over a run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct StructurePower {
    /// Total dynamic (switching) energy.
    pub dynamic: f64,
    /// Total static (leakage) energy.
    pub static_: f64,
}

/// Energy of the structures the paper evaluates, for one run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Issue queue.
    pub iq: StructurePower,
    /// Integer register file (the paper only evaluates the integer file,
    /// §5.2.3).
    pub int_rf: StructurePower,
    /// FP register file (reported for completeness).
    pub fp_rf: StructurePower,
}

impl PowerBreakdown {
    /// Converts one run's activity counts into energies.
    ///
    /// `bank_gating` says whether the configuration is able to switch unused
    /// issue-queue / register-file banks off. The unmanaged baseline (and the
    /// pure wakeup-gating `nonEmpty` configuration) cannot: their leakage is
    /// charged for every bank on every cycle, and their register-file
    /// accesses always pay the full-array cost, which is exactly the
    /// normalisation the paper's static-power figures use.
    pub fn from_stats(
        stats: &ActivityStats,
        model: &EnergyModel,
        scheme: WakeupScheme,
        bank_gating: bool,
    ) -> Self {
        let comparisons = match scheme {
            WakeupScheme::Full => stats.wakeup_comparisons_full,
            WakeupScheme::NonEmptyOnly => stats.wakeup_comparisons_nonempty,
            WakeupScheme::Gated => stats.wakeup_comparisons_gated,
        } as f64;

        let iq_dynamic = comparisons * model.iq_wakeup_comparison
            + stats.iq_writes as f64 * model.iq_write
            + stats.iq_reads as f64 * model.iq_read
            + stats.cycles as f64 * model.iq_selection_per_cycle;
        let iq_banks_charged = if bank_gating {
            stats.iq_banks_on_sum as f64
        } else {
            (stats.iq_total_banks * stats.cycles) as f64
        };
        let iq_static = iq_banks_charged * model.iq_bank_leakage_per_cycle;

        let int_accesses = (stats.int_rf_reads + stats.int_rf_writes) as f64;
        let int_banks_fraction =
            if !bank_gating || stats.int_rf_total_banks == 0 || stats.cycles == 0 {
                1.0
            } else {
                stats.avg_int_rf_banks_on() / stats.int_rf_total_banks as f64
            };
        let int_rf_dynamic = int_accesses * model.rf_access * int_banks_fraction;
        let int_rf_banks_charged = if bank_gating {
            stats.int_rf_banks_on_sum as f64
        } else {
            (stats.int_rf_total_banks * stats.cycles) as f64
        };
        let int_rf_static = int_rf_banks_charged * model.rf_bank_leakage_per_cycle;

        let fp_accesses = (stats.fp_rf_reads + stats.fp_rf_writes) as f64;
        let fp_banks_fraction = if !bank_gating || stats.fp_rf_total_banks == 0 || stats.cycles == 0
        {
            1.0
        } else {
            (stats.fp_rf_banks_on_sum as f64 / stats.cycles as f64) / stats.fp_rf_total_banks as f64
        };
        let fp_rf_dynamic = fp_accesses * model.rf_access * fp_banks_fraction;
        let fp_rf_banks_charged = if bank_gating {
            stats.fp_rf_banks_on_sum as f64
        } else {
            (stats.fp_rf_total_banks * stats.cycles) as f64
        };
        let fp_rf_static = fp_rf_banks_charged * model.rf_bank_leakage_per_cycle;

        PowerBreakdown {
            iq: StructurePower {
                dynamic: iq_dynamic,
                static_: iq_static,
            },
            int_rf: StructurePower {
                dynamic: int_rf_dynamic,
                static_: int_rf_static,
            },
            fp_rf: StructurePower {
                dynamic: fp_rf_dynamic,
                static_: fp_rf_static,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> ActivityStats {
        ActivityStats {
            cycles: 1000,
            committed: 2000,
            wakeup_comparisons_full: 160_000,
            wakeup_comparisons_nonempty: 60_000,
            wakeup_comparisons_gated: 30_000,
            iq_writes: 2000,
            iq_reads: 2000,
            iq_banks_on_sum: 6000,
            iq_total_banks: 10,
            iq_total_entries: 80,
            int_rf_reads: 3000,
            int_rf_writes: 1500,
            int_rf_banks_on_sum: 8000,
            int_rf_total_banks: 14,
            fp_rf_total_banks: 14,
            ..ActivityStats::default()
        }
    }

    #[test]
    fn gating_schemes_are_strictly_ordered() {
        let s = stats();
        let m = EnergyModel::wattch_default();
        let full = PowerBreakdown::from_stats(&s, &m, WakeupScheme::Full, true);
        let non_empty = PowerBreakdown::from_stats(&s, &m, WakeupScheme::NonEmptyOnly, true);
        let gated = PowerBreakdown::from_stats(&s, &m, WakeupScheme::Gated, true);
        assert!(full.iq.dynamic > non_empty.iq.dynamic);
        assert!(non_empty.iq.dynamic > gated.iq.dynamic);
        // Static energy and register-file energy do not depend on the scheme.
        assert_eq!(full.iq.static_, gated.iq.static_);
        assert_eq!(full.int_rf, gated.int_rf);
    }

    #[test]
    fn iq_dynamic_energy_matches_hand_computation() {
        let s = stats();
        let m = EnergyModel::wattch_default();
        let p = PowerBreakdown::from_stats(&s, &m, WakeupScheme::Gated, true);
        let expected = 30_000.0 * 1.0 + 2000.0 * 4.0 + 2000.0 * 3.0 + 1000.0 * 2.0;
        assert!((p.iq.dynamic - expected).abs() < 1e-9);
        assert!((p.iq.static_ - 6000.0).abs() < 1e-9);
    }

    #[test]
    fn rf_dynamic_energy_scales_with_active_banks() {
        let m = EnergyModel::wattch_default();
        let mut low = stats();
        low.int_rf_banks_on_sum = 7000; // 7 of 14 banks on average
        let mut high = stats();
        high.int_rf_banks_on_sum = 14_000; // all banks on
        let p_low = PowerBreakdown::from_stats(&low, &m, WakeupScheme::Gated, true);
        let p_high = PowerBreakdown::from_stats(&high, &m, WakeupScheme::Gated, true);
        assert!(p_low.int_rf.dynamic < p_high.int_rf.dynamic);
        assert!((p_low.int_rf.dynamic * 2.0 - p_high.int_rf.dynamic).abs() < 1e-6);
    }

    #[test]
    fn zero_activity_means_zero_dynamic_energy() {
        let s = ActivityStats::default();
        let p = PowerBreakdown::from_stats(
            &s,
            &EnergyModel::wattch_default(),
            WakeupScheme::Full,
            true,
        );
        assert_eq!(p.iq.dynamic, 0.0);
        assert_eq!(p.int_rf.dynamic, 0.0);
        assert_eq!(p.iq.static_, 0.0);
    }

    #[test]
    fn without_bank_gating_every_bank_leaks_every_cycle() {
        let s = stats();
        let m = EnergyModel::wattch_default();
        let gated = PowerBreakdown::from_stats(&s, &m, WakeupScheme::Full, true);
        let ungated = PowerBreakdown::from_stats(&s, &m, WakeupScheme::Full, false);
        // 10 banks × 1000 cycles vs the 6000 bank-cycles actually occupied.
        assert!((ungated.iq.static_ - 10_000.0).abs() < 1e-9);
        assert!((gated.iq.static_ - 6000.0).abs() < 1e-9);
        assert!(ungated.int_rf.static_ > gated.int_rf.static_);
        assert!(ungated.int_rf.dynamic > gated.int_rf.dynamic);
    }
}
