//! Normalised power savings, matching how the paper reports its results
//! (every figure is "normalised ... power savings" against the baseline
//! processor with the unmanaged 80-entry queue).

use crate::model::PowerBreakdown;
use serde::{Deserialize, Serialize};

/// Percentage savings of one technique relative to the baseline run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerSavings {
    /// Issue-queue dynamic power saving, percent (Figure 8 / 11, left).
    pub iq_dynamic_pct: f64,
    /// Issue-queue static power saving, percent (Figure 8 / 11, right).
    pub iq_static_pct: f64,
    /// Integer register-file dynamic power saving, percent (Figure 9 / 12).
    pub rf_dynamic_pct: f64,
    /// Integer register-file static power saving, percent (Figure 9 / 12).
    pub rf_static_pct: f64,
}

/// Percentage saving of `technique` power relative to `baseline` power.
///
/// A negative result means the technique *spends* power the baseline did
/// not. `None` marks the degenerate case: a non-positive baseline with a
/// technique that still consumes power has no meaningful percentage — the
/// old convention of returning `0.0` there silently reported "no savings"
/// for a strictly worse technique. When both sides are non-positive the
/// runs are indistinguishable and the saving is an honest `Some(0.0)`.
pub fn pct_saving(baseline: f64, technique: f64) -> Option<f64> {
    if baseline > 0.0 {
        Some((1.0 - technique / baseline) * 100.0)
    } else if technique > 0.0 {
        None
    } else {
        Some(0.0)
    }
}

impl PowerSavings {
    /// Computes the savings of `technique` relative to `baseline`.
    ///
    /// Fields keep the plain-`f64` shape the figures consume; the
    /// degenerate case ([`pct_saving`] returning `None`) surfaces as `NaN`
    /// rather than a fake `0.0`, so it poisons averages and renders as
    /// `NaN` instead of masquerading as "no savings". Real runs always
    /// have positive baseline power for the structures reported here.
    pub fn relative_to(baseline: &PowerBreakdown, technique: &PowerBreakdown) -> Self {
        let pct = |b, t| pct_saving(b, t).unwrap_or(f64::NAN);
        PowerSavings {
            iq_dynamic_pct: pct(baseline.iq.dynamic, technique.iq.dynamic),
            iq_static_pct: pct(baseline.iq.static_, technique.iq.static_),
            rf_dynamic_pct: pct(baseline.int_rf.dynamic, technique.int_rf.dynamic),
            rf_static_pct: pct(baseline.int_rf.static_, technique.int_rf.static_),
        }
    }
}

/// Overall processor dynamic power saving (§6): the paper assumes the issue
/// queue and integer register file consume `iq_share` and `rf_share` of the
/// whole processor's power (22% and 11% respectively) and reports
/// `iq_share × iq_saving + rf_share × rf_saving ≈ 11%`.
pub fn overall_processor_dynamic_savings(
    savings: &PowerSavings,
    iq_share: f64,
    rf_share: f64,
) -> f64 {
    iq_share * savings.iq_dynamic_pct + rf_share * savings.rf_dynamic_pct
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StructurePower;

    fn breakdown(iq_dyn: f64, iq_stat: f64, rf_dyn: f64, rf_stat: f64) -> PowerBreakdown {
        PowerBreakdown {
            iq: StructurePower {
                dynamic: iq_dyn,
                static_: iq_stat,
            },
            int_rf: StructurePower {
                dynamic: rf_dyn,
                static_: rf_stat,
            },
            fp_rf: StructurePower::default(),
        }
    }

    #[test]
    fn savings_match_hand_computation() {
        let base = breakdown(100.0, 50.0, 40.0, 20.0);
        let tech = breakdown(53.0, 34.5, 31.2, 15.8);
        let s = PowerSavings::relative_to(&base, &tech);
        assert!((s.iq_dynamic_pct - 47.0).abs() < 1e-9);
        assert!((s.iq_static_pct - 31.0).abs() < 1e-9);
        assert!((s.rf_dynamic_pct - 22.0).abs() < 1e-9);
        assert!((s.rf_static_pct - 21.0).abs() < 1e-9);
    }

    #[test]
    fn identical_runs_save_nothing() {
        let base = breakdown(100.0, 50.0, 40.0, 20.0);
        let s = PowerSavings::relative_to(&base, &base);
        assert_eq!(s.iq_dynamic_pct, 0.0);
        assert_eq!(s.rf_static_pct, 0.0);
    }

    #[test]
    fn worse_technique_reports_negative_savings() {
        let base = breakdown(100.0, 50.0, 40.0, 20.0);
        let worse = breakdown(110.0, 55.0, 44.0, 22.0);
        let s = PowerSavings::relative_to(&base, &worse);
        assert!(s.iq_dynamic_pct < 0.0);
        assert!(s.rf_dynamic_pct < 0.0);
    }

    #[test]
    fn identical_zero_power_runs_save_exactly_nothing() {
        let base = breakdown(0.0, 0.0, 0.0, 0.0);
        let s = PowerSavings::relative_to(&base, &base);
        assert_eq!(s.iq_dynamic_pct, 0.0);
        assert_eq!(s.rf_static_pct, 0.0);
        assert_eq!(pct_saving(0.0, 0.0), Some(0.0));
    }

    #[test]
    fn spending_against_a_zero_baseline_is_not_reported_as_no_savings() {
        // Regression: this used to return 0.0 — "no savings" — even though
        // the technique burns power the baseline never did.
        assert_eq!(pct_saving(0.0, 1.0), None);
        assert_eq!(pct_saving(-0.5, 1.0), None);
        let base = breakdown(0.0, 0.0, 0.0, 0.0);
        let tech = breakdown(1.0, 1.0, 1.0, 1.0);
        let s = PowerSavings::relative_to(&base, &tech);
        assert!(s.iq_dynamic_pct.is_nan(), "undefined, not 0.0");
        assert!(s.rf_static_pct.is_nan());
    }

    #[test]
    fn negative_savings_pass_through_the_helper() {
        let worse = pct_saving(100.0, 110.0).expect("positive baseline is well defined");
        assert!((worse + 10.0).abs() < 1e-9);
        assert_eq!(pct_saving(50.0, 100.0), Some(-100.0));
    }

    #[test]
    fn overall_savings_reproduce_the_papers_11_percent_claim() {
        // §6: 45% IQ dynamic saving and 22% RF dynamic saving with the IQ at
        // 22% and the RF at 11% of processor power ≈ 11% + 2.4% ≈ 12%; the
        // paper rounds to "11%".
        let s = PowerSavings {
            iq_dynamic_pct: 45.0,
            iq_static_pct: 30.0,
            rf_dynamic_pct: 22.0,
            rf_static_pct: 21.0,
        };
        let overall = overall_processor_dynamic_savings(&s, 0.22, 0.11);
        assert!(overall > 10.0 && overall < 13.0, "got {overall}");
    }
}
