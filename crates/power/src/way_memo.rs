//! Way-memoization savings for the L1 D-cache (the `way-memo` technique).
//!
//! Ishihara & Fallah (see PAPERS.md) store, per cache line, a link to the
//! way the last access to that line resolved to. A memoized access drives
//! only that one way's data array and skips the tag comparison entirely; a
//! miss (or a cold link) falls back to the conventional parallel probe of
//! every way. The technique is architecturally invisible — hit latency,
//! miss handling and the pipeline are untouched — so the `way-memo`
//! technique runs the *baseline* pipeline configuration and all the savings
//! are computed here, at reporting time, from the activity counters the
//! simulator already produces (`dcache_accesses` / `dcache_misses`).
//!
//! As everywhere in this crate the per-event energies are relative weights:
//! the output is a *normalised saving* of D-cache read energy against the
//! conventional set-associative access, which is what the figures need.

use sdiq_sim::ActivityStats;

/// Ways of the modelled L1 D-cache (Table 1's 4-way 64 KB cache; kept as a
/// module constant because the cell-key fingerprint pins [`crate::EnergyModel`]
/// to exactly its seven historical fields).
pub const L1D_WAYS: u64 = 4;

/// Relative energy of one way's data-array read (the unit of this model).
pub const WAY_READ_ENERGY: f64 = 1.0;

/// Relative energy of the tag match across all ways of a set, skipped
/// entirely on a memoized access (the link register *is* the tag check).
pub const TAG_MATCH_ENERGY: f64 = 0.4;

/// D-cache read energy of one run under the conventional parallel probe:
/// every access reads all ways and matches all tags.
pub fn conventional_energy(stats: &ActivityStats) -> f64 {
    stats.dcache_accesses as f64 * (L1D_WAYS as f64 * WAY_READ_ENERGY + TAG_MATCH_ENERGY)
}

/// D-cache read energy of the same run with way-memoization: hits read the
/// one memoized way and skip the tag match; misses pay the conventional
/// probe (the link is only valid when the line is resident).
pub fn memoized_energy(stats: &ActivityStats) -> f64 {
    let hits = stats.dcache_accesses.saturating_sub(stats.dcache_misses);
    hits as f64 * WAY_READ_ENERGY
        + stats.dcache_misses as f64 * (L1D_WAYS as f64 * WAY_READ_ENERGY + TAG_MATCH_ENERGY)
}

/// Percentage of D-cache read energy way-memoization saves for this run
/// (0 when the run made no D-cache accesses).
pub fn dcache_dynamic_savings_pct(stats: &ActivityStats) -> f64 {
    let conventional = conventional_energy(stats);
    if conventional == 0.0 {
        return 0.0;
    }
    100.0 * (1.0 - memoized_energy(stats) / conventional)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(accesses: u64, misses: u64) -> ActivityStats {
        ActivityStats {
            dcache_accesses: accesses,
            dcache_misses: misses,
            ..ActivityStats::default()
        }
    }

    #[test]
    fn no_accesses_no_savings() {
        assert_eq!(dcache_dynamic_savings_pct(&stats(0, 0)), 0.0);
    }

    #[test]
    fn all_hits_saves_the_most() {
        // Every access reads 1 way instead of 4 ways + tag match.
        let pct = dcache_dynamic_savings_pct(&stats(1000, 0));
        let expected = 100.0 * (1.0 - 1.0 / (4.0 + 0.4));
        assert!((pct - expected).abs() < 1e-12);
    }

    #[test]
    fn all_misses_saves_nothing() {
        assert_eq!(dcache_dynamic_savings_pct(&stats(1000, 1000)), 0.0);
    }

    #[test]
    fn savings_shrink_monotonically_with_miss_rate() {
        let mut last = f64::INFINITY;
        for misses in [0, 100, 500, 900, 1000] {
            let pct = dcache_dynamic_savings_pct(&stats(1000, misses));
            assert!(pct < last);
            last = pct;
        }
    }
}
