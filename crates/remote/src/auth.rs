//! HMAC-SHA-256 handshake for untrusted networks — std-only, no TLS.
//!
//! A fleet reachable over a routable port needs *some* peer
//! authentication: without it any process that can open a TCP connection
//! can feed the coordinator fabricated `CellDone` frames or burn worker
//! time with bogus matrices. The workspace builds offline with no crypto
//! dependencies, so this module hand-rolls the two primitives the
//! handshake needs: FIPS-180-4 SHA-256 (pinned below against the
//! standard test vectors) and RFC-2104 HMAC over it.
//!
//! The handshake is three frames before the ordinary greeting, mutual,
//! and always JSON-framed (it precedes codec negotiation):
//!
//! ```text
//! acceptor → dialer   AuthChallenge{nonce_a}
//! dialer → acceptor   AuthResponse{nonce_d, mac = HMAC(key, "sdiq-dial:" nonce_a ":" nonce_d)}
//! acceptor → dialer   AuthOk{mac = HMAC(key, "sdiq-accept:" nonce_a ":" nonce_d)}
//! ```
//!
//! Both nonces enter both MACs, so each side proves possession of the
//! key over fresh material it did not choose alone (no replay of either
//! direction), and the direction labels stop a reflected transcript from
//! answering itself. MAC comparison is constant-time.
//!
//! What this deliberately does not do: encrypt. Frames stay readable on
//! the wire (cell reports are not secrets); the handshake only ensures
//! both ends hold `--auth-key`. Key agreement happens out of band.

use crate::frame;
use crate::protocol::Message;
use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4)
// ---------------------------------------------------------------------------

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 (enough surface for HMAC: update + finalize).
struct Sha256 {
    state: [u32; 8],
    /// Partial input block awaiting its 64th byte.
    buffer: [u8; 64],
    buffered: usize,
    /// Total message length so far, in bytes.
    length: u64,
}

impl Sha256 {
    fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buffer: [0; 64],
            buffered: 0,
            length: 0,
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (slot, add) in self.state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *slot = slot.wrapping_add(add);
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.length += data.len() as u64;
        if self.buffered > 0 {
            let take = data.len().min(64 - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&data[..take]);
            self.buffered += take;
            data = &data[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
            // Either the block just compressed (buffered reset) or the
            // input ran out inside it — don't let the tail copy below
            // clobber the partial block.
            if !data.is_empty() {
                debug_assert_eq!(self.buffered, 0);
            } else {
                return;
            }
        }
        while let Some((block, rest)) = data.split_first_chunk::<64>() {
            self.compress(block);
            data = rest;
        }
        self.buffer[..data.len()].copy_from_slice(data);
        self.buffered = data.len();
    }

    fn finalize(mut self) -> [u8; 32] {
        let bit_length = self.length * 8;
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0x00]);
        }
        self.update(&bit_length.to_be_bytes());
        debug_assert_eq!(self.buffered, 0);
        let mut digest = [0u8; 32];
        for (chunk, word) in digest.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        digest
    }
}

/// SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut hasher = Sha256::new();
    hasher.update(data);
    hasher.finalize()
}

// ---------------------------------------------------------------------------
// HMAC (RFC 2104)
// ---------------------------------------------------------------------------

/// HMAC-SHA-256 of `message` under `key`.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; 64];
    if key.len() > 64 {
        key_block[..32].copy_from_slice(&sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();
    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

// ---------------------------------------------------------------------------
// Handshake material
// ---------------------------------------------------------------------------

/// Lowercase hex of `bytes`.
pub fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for byte in bytes {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

/// A fresh challenge nonce. Nonces need uniqueness, not secrecy: this
/// hashes the wall clock, the process id and a process-global counter,
/// so two calls never collide within a process and practically never
/// across processes.
pub fn nonce() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let mut material = Vec::with_capacity(24);
    material.extend_from_slice(&now.to_le_bytes());
    material.extend_from_slice(&u64::from(std::process::id()).to_le_bytes());
    material.extend_from_slice(&COUNTER.fetch_add(1, Ordering::Relaxed).to_le_bytes());
    hex(&sha256(&material)[..16])
}

/// The dialer's proof: `HMAC(key, "sdiq-dial:" nonce_a ":" nonce_d)`, hex.
pub fn dial_mac(key: &str, acceptor_nonce: &str, dialer_nonce: &str) -> String {
    let message = format!("sdiq-dial:{acceptor_nonce}:{dialer_nonce}");
    hex(&hmac_sha256(key.as_bytes(), message.as_bytes()))
}

/// The acceptor's counter-proof: `HMAC(key, "sdiq-accept:" nonce_a ":" nonce_d)`, hex.
pub fn accept_mac(key: &str, acceptor_nonce: &str, dialer_nonce: &str) -> String {
    let message = format!("sdiq-accept:{acceptor_nonce}:{dialer_nonce}");
    hex(&hmac_sha256(key.as_bytes(), message.as_bytes()))
}

/// Constant-time equality for MAC strings: the loop touches every byte
/// whatever the first mismatch position, so response timing does not
/// leak how much of a guessed MAC was right.
pub fn macs_equal(a: &str, b: &str) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.bytes().zip(b.bytes()) {
        diff |= x ^ y;
    }
    diff == 0
}

// ---------------------------------------------------------------------------
// The handshake itself
// ---------------------------------------------------------------------------

/// Runs the acceptor side of the handshake on a fresh connection:
/// challenge, verify the dialer's proof, counter-prove. On a bad or
/// missing proof the peer gets an `Error` frame naming the problem
/// (so a mis-keyed fleet fails with a message, not a hang) and this
/// returns `PermissionDenied`.
pub fn acceptor_handshake(
    reader: &mut impl Read,
    writer: &mut impl Write,
    key: &str,
) -> io::Result<()> {
    let my_nonce = nonce();
    frame::write_message(
        writer,
        &Message::AuthChallenge {
            nonce: my_nonce.clone(),
        },
    )?;
    match frame::read_message(reader)? {
        Message::AuthResponse {
            nonce: peer_nonce,
            mac,
        } => {
            if !macs_equal(&mac, &dial_mac(key, &my_nonce, &peer_nonce)) {
                let _ = frame::write_message(
                    writer,
                    &Message::Error {
                        message: "authentication failed: MAC mismatch (wrong --auth-key?)"
                            .to_string(),
                    },
                );
                return Err(io::Error::new(
                    io::ErrorKind::PermissionDenied,
                    "peer failed authentication (wrong --auth-key?)",
                ));
            }
            frame::write_message(
                writer,
                &Message::AuthOk {
                    mac: accept_mac(key, &my_nonce, &peer_nonce),
                },
            )
        }
        other => {
            let _ = frame::write_message(
                writer,
                &Message::Error {
                    message: "authentication required: peer must be started with the shared \
                              --auth-key"
                        .to_string(),
                },
            );
            Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                format!("peer sent {other:?} instead of AuthResponse — is it missing --auth-key?"),
            ))
        }
    }
}

/// Runs the dialer side, given the acceptor's already-received
/// challenge nonce: prove, then verify the counter-proof (the handshake
/// is mutual — a bogus acceptor cannot bluff past this without the key).
pub fn dialer_handshake(
    reader: &mut impl Read,
    writer: &mut impl Write,
    key: &str,
    acceptor_nonce: &str,
) -> io::Result<()> {
    let my_nonce = nonce();
    frame::write_message(
        writer,
        &Message::AuthResponse {
            nonce: my_nonce.clone(),
            mac: dial_mac(key, acceptor_nonce, &my_nonce),
        },
    )?;
    match frame::read_message(reader)? {
        Message::AuthOk { mac }
            if macs_equal(&mac, &accept_mac(key, acceptor_nonce, &my_nonce)) =>
        {
            Ok(())
        }
        Message::AuthOk { .. } => Err(io::Error::new(
            io::ErrorKind::PermissionDenied,
            "acceptor failed to prove knowledge of the auth key",
        )),
        Message::Error { message } => Err(io::Error::new(
            io::ErrorKind::PermissionDenied,
            format!("authentication rejected: {message}"),
        )),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("expected AuthOk, got {other:?}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha256_matches_the_fips_test_vectors() {
        // FIPS 180-4 / NIST CAVP short-message vectors.
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // Multi-block + buffering: a million 'a's fed in uneven chunks.
        let mut hasher = Sha256::new();
        let chunk = [b'a'; 997];
        let mut fed = 0;
        while fed < 1_000_000 {
            let take = chunk.len().min(1_000_000 - fed);
            hasher.update(&chunk[..take]);
            fed += take;
        }
        assert_eq!(
            hex(&hasher.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn hmac_matches_the_rfc4231_test_vectors() {
        // RFC 4231 test case 1.
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Test case 2: short key, short message.
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // Test case 6: key longer than one block (hashed first).
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn handshake_macs_verify_and_reject() {
        let (na, nd) = (nonce(), nonce());
        assert_ne!(na, nd, "nonces must be unique");
        let mac = dial_mac("secret", &na, &nd);
        assert!(macs_equal(&mac, &dial_mac("secret", &na, &nd)));
        // Wrong key, swapped nonces, or wrong direction: all rejected.
        assert!(!macs_equal(&mac, &dial_mac("other", &na, &nd)));
        assert!(!macs_equal(&mac, &dial_mac("secret", &nd, &na)));
        assert!(!macs_equal(&mac, &accept_mac("secret", &na, &nd)));
        assert!(!macs_equal(&mac, ""));
    }
}
