//! The `bin1` frame codec: compact binary payloads for [`Message`].
//!
//! JSON frames re-render field names, decimal numbers and escaped
//! strings on every message; on a hot fleet connection the `CellDone`
//! stream is the bulk of the traffic and almost all of that is codec
//! overhead. This layout strips it: one tag byte selects the message,
//! then the fields in fixed order using `sdiq_core::persist_bin`'s
//! primitives (LEB128 varints, length-prefixed UTF-8, `f64::to_bits`).
//! A `bin1` `CellDone` is ~4× smaller than its JSON twin and decodes
//! without a parser.
//!
//! Every tag byte is `< 0x20`, which no JSON document can start with —
//! that is what lets [`crate::frame`] auto-detect the codec of each
//! incoming frame instead of tracking reader-side negotiation state.
//! The layout is versioned by its negotiated name (`"bin1"`, see
//! [`crate::protocol::CODEC_BIN1`]): breaking changes get a new name,
//! and peers that never advertised it never see these bytes.
//!
//! Decoding is total on untrusted input: the bounds-checked
//! [`ByteReader`] errors on truncation and hostile lengths (never
//! panics, never over-reads), unknown tags error, and trailing bytes
//! after a well-formed message are rejected — both sides must agree on
//! the whole payload, not a prefix of it.

use crate::protocol::Message;
use sdiq_core::persist::PersistError;
use sdiq_core::persist_bin::{
    decode_matrix_spec, decode_report, encode_matrix_spec, encode_report, put_str, put_u64_fixed,
    put_usize, put_varint, ByteReader,
};
use sdiq_obs::{MetricsDelta, TraceEvent};

/// `Hello{capacity, codecs}`.
pub const TAG_HELLO: u8 = 0x01;
/// `Register{capacity, codecs}`.
pub const TAG_REGISTER: u8 = 0x02;
/// `RunCells{fingerprint, spec, keys}`.
pub const TAG_RUN_CELLS: u8 = 0x03;
/// `CellDone{key, report}`.
pub const TAG_CELL_DONE: u8 = 0x04;
/// `Heartbeat` — the whole payload is this one byte (the zero-allocation
/// fast path in [`crate::frame`] depends on that).
pub const TAG_HEARTBEAT: u8 = 0x05;
/// `Done{computed}`.
pub const TAG_DONE: u8 = 0x06;
/// `Error{message}`.
pub const TAG_ERROR: u8 = 0x07;
/// `SetCodec{codec}`.
pub const TAG_SET_CODEC: u8 = 0x08;
/// `AuthChallenge{nonce}`.
pub const TAG_AUTH_CHALLENGE: u8 = 0x09;
/// `AuthResponse{nonce, mac}`.
pub const TAG_AUTH_RESPONSE: u8 = 0x0a;
/// `AuthOk{mac}`.
pub const TAG_AUTH_OK: u8 = 0x0b;
/// `RunCells` with at least one observability flag set: a flags byte
/// (bit 0 = observe, bit 1 = trace) then the [`TAG_RUN_CELLS`] fields.
/// A batch with both flags off still encodes as plain [`TAG_RUN_CELLS`],
/// so pre-observability byte streams are reproduced exactly and old
/// peers — which are never sent the flags — never see this tag.
pub const TAG_RUN_CELLS_OBS: u8 = 0x0c;
/// `HeartbeatMetrics{metrics}`: the six cumulative counters as varints.
pub const TAG_HEARTBEAT_METRICS: u8 = 0x0d;
/// `TraceEvents{events}`.
pub const TAG_TRACE_EVENTS: u8 = 0x0e;

/// First payload byte below this is a `bin1` tag; at or above it, the
/// payload is JSON text (JSON documents start at `{` = 0x7b, or at worst
/// whitespace = 0x20). This is the codec auto-detection boundary.
pub const MAX_TAG: u8 = 0x20;

/// Encodes one message as a `bin1` frame payload.
pub fn encode_message(message: &Message) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match message {
        Message::Hello { capacity, codecs } => {
            out.push(TAG_HELLO);
            put_usize(&mut out, *capacity);
            put_usize(&mut out, codecs.len());
            for codec in codecs {
                put_str(&mut out, codec);
            }
        }
        Message::Register { capacity, codecs } => {
            out.push(TAG_REGISTER);
            put_usize(&mut out, *capacity);
            put_usize(&mut out, codecs.len());
            for codec in codecs {
                put_str(&mut out, codec);
            }
        }
        Message::RunCells {
            fingerprint,
            spec,
            keys,
            observe,
            trace,
        } => {
            // Flags off → the pre-observability layout, byte for byte.
            if *observe || *trace {
                out.push(TAG_RUN_CELLS_OBS);
                out.push(u8::from(*observe) | (u8::from(*trace) << 1));
            } else {
                out.push(TAG_RUN_CELLS);
            }
            put_u64_fixed(&mut out, *fingerprint);
            encode_matrix_spec(&mut out, spec);
            put_usize(&mut out, keys.len());
            for key in keys {
                put_str(&mut out, key);
            }
        }
        Message::CellDone { key, report } => {
            out.push(TAG_CELL_DONE);
            put_str(&mut out, key);
            encode_report(&mut out, report);
        }
        Message::Heartbeat => out.push(TAG_HEARTBEAT),
        Message::Done { computed } => {
            out.push(TAG_DONE);
            put_usize(&mut out, *computed);
        }
        Message::Error { message } => {
            out.push(TAG_ERROR);
            put_str(&mut out, message);
        }
        Message::SetCodec { codec } => {
            out.push(TAG_SET_CODEC);
            put_str(&mut out, codec);
        }
        Message::AuthChallenge { nonce } => {
            out.push(TAG_AUTH_CHALLENGE);
            put_str(&mut out, nonce);
        }
        Message::AuthResponse { nonce, mac } => {
            out.push(TAG_AUTH_RESPONSE);
            put_str(&mut out, nonce);
            put_str(&mut out, mac);
        }
        Message::AuthOk { mac } => {
            out.push(TAG_AUTH_OK);
            put_str(&mut out, mac);
        }
        Message::HeartbeatMetrics { metrics } => {
            out.push(TAG_HEARTBEAT_METRICS);
            put_varint(&mut out, metrics.cells_done);
            put_varint(&mut out, metrics.cells_in_flight);
            put_varint(&mut out, metrics.sim_instructions);
            put_varint(&mut out, metrics.cache_hits);
            put_varint(&mut out, metrics.cache_misses);
            put_varint(&mut out, metrics.wall_nanos);
        }
        Message::TraceEvents { events } => {
            out.push(TAG_TRACE_EVENTS);
            put_usize(&mut out, events.len());
            for event in events {
                put_str(&mut out, &event.name);
                put_str(&mut out, &event.cat);
                put_varint(&mut out, event.pid);
                put_varint(&mut out, event.tid);
                put_varint(&mut out, event.start_nanos);
                match event.dur_nanos {
                    None => out.push(0),
                    Some(dur) => {
                        out.push(1);
                        put_varint(&mut out, dur);
                    }
                }
                put_usize(&mut out, event.args.len());
                for (key, value) in &event.args {
                    put_str(&mut out, key);
                    put_str(&mut out, value);
                }
            }
        }
    }
    out
}

fn decode_trace_event(reader: &mut ByteReader<'_>) -> Result<TraceEvent, PersistError> {
    let name = reader.str()?.to_string();
    let cat = reader.str()?.to_string();
    let pid = reader.varint()?;
    let tid = reader.varint()?;
    let start_nanos = reader.varint()?;
    let dur_nanos = match reader.u8()? {
        0 => None,
        1 => Some(reader.varint()?),
        other => {
            return Err(PersistError::new(format!(
                "trace event duration marker must be 0 or 1, got {other}"
            )))
        }
    };
    let arg_count = reader.seq_len(2)?;
    let mut args = Vec::with_capacity(arg_count);
    for _ in 0..arg_count {
        let key = reader.str()?.to_string();
        let value = reader.str()?.to_string();
        args.push((key, value));
    }
    Ok(TraceEvent {
        name,
        cat,
        pid,
        tid,
        start_nanos,
        dur_nanos,
        args,
    })
}

fn decode_codecs(reader: &mut ByteReader<'_>) -> Result<Vec<String>, PersistError> {
    let count = reader.seq_len(1)?;
    let mut codecs = Vec::with_capacity(count);
    for _ in 0..count {
        codecs.push(reader.str()?.to_string());
    }
    Ok(codecs)
}

/// Decodes one `bin1` frame payload. Errors on unknown tags, truncated
/// or hostile field lengths, and trailing bytes; never panics.
pub fn decode_message(payload: &[u8]) -> Result<Message, PersistError> {
    let mut reader = ByteReader::new(payload);
    let tag = reader.u8()?;
    let message = match tag {
        TAG_HELLO => Message::Hello {
            capacity: reader.usize()?,
            codecs: decode_codecs(&mut reader)?,
        },
        TAG_REGISTER => Message::Register {
            capacity: reader.usize()?,
            codecs: decode_codecs(&mut reader)?,
        },
        TAG_RUN_CELLS | TAG_RUN_CELLS_OBS => {
            let (observe, trace) = if tag == TAG_RUN_CELLS_OBS {
                let flags = reader.u8()?;
                if flags >= 4 {
                    return Err(PersistError::new(format!(
                        "unknown RunCells observability flags {flags:#04x}"
                    )));
                }
                (flags & 1 != 0, flags & 2 != 0)
            } else {
                (false, false)
            };
            let fingerprint = reader.u64_fixed()?;
            let spec = decode_matrix_spec(&mut reader)?;
            let count = reader.seq_len(1)?;
            let mut keys = Vec::with_capacity(count);
            for _ in 0..count {
                keys.push(reader.str()?.to_string());
            }
            Message::RunCells {
                fingerprint,
                spec,
                keys,
                observe,
                trace,
            }
        }
        TAG_CELL_DONE => Message::CellDone {
            key: reader.str()?.to_string(),
            report: Box::new(decode_report(&mut reader)?),
        },
        TAG_HEARTBEAT => Message::Heartbeat,
        TAG_DONE => Message::Done {
            computed: reader.usize()?,
        },
        TAG_ERROR => Message::Error {
            message: reader.str()?.to_string(),
        },
        TAG_SET_CODEC => Message::SetCodec {
            codec: reader.str()?.to_string(),
        },
        TAG_AUTH_CHALLENGE => Message::AuthChallenge {
            nonce: reader.str()?.to_string(),
        },
        TAG_AUTH_RESPONSE => Message::AuthResponse {
            nonce: reader.str()?.to_string(),
            mac: reader.str()?.to_string(),
        },
        TAG_AUTH_OK => Message::AuthOk {
            mac: reader.str()?.to_string(),
        },
        TAG_HEARTBEAT_METRICS => Message::HeartbeatMetrics {
            metrics: MetricsDelta {
                cells_done: reader.varint()?,
                cells_in_flight: reader.varint()?,
                sim_instructions: reader.varint()?,
                cache_hits: reader.varint()?,
                cache_misses: reader.varint()?,
                wall_nanos: reader.varint()?,
            },
        },
        TAG_TRACE_EVENTS => {
            // Minimum event: two empty strings, three zero varints, the
            // duration marker and a zero arg count — 7 bytes.
            let count = reader.seq_len(7)?;
            let mut events = Vec::with_capacity(count);
            for _ in 0..count {
                events.push(decode_trace_event(&mut reader)?);
            }
            Message::TraceEvents { events }
        }
        other => {
            return Err(PersistError::new(format!(
                "unknown binary message tag {other:#04x}"
            )))
        }
    };
    reader.finish()?;
    Ok(message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CODEC_BIN1;
    use sdiq_core::{Experiment, MatrixSpec, Technique};
    use sdiq_workloads::Benchmark;

    fn sample_messages() -> Vec<Message> {
        let experiment = Experiment {
            scale: 0.05,
            ..Experiment::paper()
        };
        let report = experiment.run(Benchmark::Gzip, Technique::Noop);
        let spec = MatrixSpec {
            scale: 0.05,
            sweeps: vec![("iq".to_string(), vec![48.0, 32.0])],
            benchmarks: vec!["gzip".to_string(), "mcf".to_string()],
            techniques: vec!["baseline".to_string(), "noop".to_string()],
        };
        vec![
            Message::Hello {
                capacity: 4,
                codecs: vec![CODEC_BIN1.to_string()],
            },
            Message::Register {
                capacity: 16,
                codecs: Vec::new(),
            },
            Message::RunCells {
                fingerprint: 0xdead_beef_0123_4567,
                spec: spec.clone(),
                keys: vec!["a|b|c|00".to_string(), "d|e|f|01".to_string()],
                observe: false,
                trace: false,
            },
            Message::RunCells {
                fingerprint: 0xdead_beef_0123_4567,
                spec,
                keys: vec!["a|b|c|00".to_string()],
                observe: true,
                trace: true,
            },
            Message::HeartbeatMetrics {
                metrics: MetricsDelta {
                    cells_done: 12,
                    cells_in_flight: 2,
                    sim_instructions: 123_456_789,
                    cache_hits: 30,
                    cache_misses: 6,
                    wall_nanos: 9_876_543_210,
                },
            },
            Message::TraceEvents {
                events: vec![
                    TraceEvent {
                        name: "cell".to_string(),
                        cat: "cell".to_string(),
                        pid: 0,
                        tid: 3,
                        start_nanos: 1_000,
                        dur_nanos: Some(5_000),
                        args: vec![("key".to_string(), "gzip|noop|base".to_string())],
                    },
                    TraceEvent {
                        name: "mark".to_string(),
                        cat: "sched".to_string(),
                        pid: 2,
                        tid: 1,
                        start_nanos: 42,
                        dur_nanos: None,
                        args: Vec::new(),
                    },
                ],
            },
            Message::TraceEvents { events: Vec::new() },
            Message::CellDone {
                key: "gzip|noop|base|0123456789abcdef".to_string(),
                report: Box::new(report),
            },
            Message::Heartbeat,
            Message::Done { computed: 6 },
            Message::Error {
                message: "matrix fingerprint mismatch".to_string(),
            },
            Message::SetCodec {
                codec: CODEC_BIN1.to_string(),
            },
            Message::AuthChallenge {
                nonce: "00ff".to_string(),
            },
            Message::AuthResponse {
                nonce: "a1b2".to_string(),
                mac: "deadbeef".to_string(),
            },
            Message::AuthOk {
                mac: "beefdead".to_string(),
            },
        ]
    }

    #[test]
    fn every_message_round_trips_and_stays_below_the_tag_boundary() {
        for message in sample_messages() {
            let payload = encode_message(&message);
            assert!(
                payload[0] < MAX_TAG,
                "tag {:#04x} must stay in the auto-detect range",
                payload[0]
            );
            assert_eq!(
                decode_message(&payload).unwrap(),
                message,
                "{message:?} must round-trip"
            );
        }
    }

    #[test]
    fn binary_and_json_payloads_decode_to_the_same_message() {
        // Differential against the JSON oracle: both codecs reproduce
        // the identical message value.
        for message in sample_messages() {
            let via_binary = decode_message(&encode_message(&message)).unwrap();
            let via_json = Message::parse(&message.render()).unwrap();
            assert_eq!(via_binary, via_json);
        }
    }

    #[test]
    fn cell_done_is_substantially_smaller_than_json() {
        let cell_done = sample_messages()
            .into_iter()
            .find(|m| matches!(m, Message::CellDone { .. }))
            .unwrap();
        let binary = encode_message(&cell_done).len();
        let json = cell_done.render().len();
        assert!(
            binary * 3 < json,
            "bin1 CellDone is {binary} bytes vs {json} JSON — expected ≥3× smaller"
        );
    }

    #[test]
    fn plain_batches_keep_the_pre_observability_tag() {
        let mut plain = None;
        let mut flagged = None;
        for message in sample_messages() {
            if let Message::RunCells { observe, trace, .. } = &message {
                let payload = encode_message(&message);
                if *observe || *trace {
                    flagged = Some(payload);
                } else {
                    plain = Some(payload);
                }
            }
        }
        let plain = plain.unwrap();
        let flagged = flagged.unwrap();
        assert_eq!(plain[0], TAG_RUN_CELLS, "flags off keep the old layout");
        assert_eq!(flagged[0], TAG_RUN_CELLS_OBS);
        // Unknown flag bits must error, not decode to something silently
        // different from what the sender meant.
        let mut hostile = flagged;
        hostile[1] = 0x04;
        assert!(decode_message(&hostile).is_err(), "unknown flag bits");
    }

    #[test]
    fn truncation_and_trailing_bytes_error_cleanly() {
        for message in sample_messages() {
            let payload = encode_message(&message);
            for cut in 0..payload.len() {
                // Every strict prefix must fail to decode (the codec has
                // no optional tails), and must never panic.
                assert!(
                    decode_message(&payload[..cut]).is_err(),
                    "{message:?} truncated to {cut} bytes must error"
                );
            }
            let mut padded = payload.clone();
            padded.push(0);
            assert!(
                decode_message(&padded).is_err(),
                "{message:?} with a trailing byte must error"
            );
        }
        assert!(decode_message(&[0x1f]).is_err(), "unknown tag");
    }
}
