//! The coordinator's side of one worker connection: dial the daemon,
//! read its `Hello`, then expose the connection as a
//! [`WorkerLink`](crate::scheduler::WorkerLink) for the scheduler.

use crate::frame;
use crate::protocol::Message;
use crate::scheduler::{WorkerEvent, WorkerLink};
use sdiq_core::MatrixSpec;
use std::io::{self, BufReader};
use std::net::TcpStream;

/// A worker daemon reached over TCP.
struct TcpWorkerLink {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    capacity: usize,
    spec: MatrixSpec,
    fingerprint: u64,
}

/// Dials a worker daemon at `addr` (`host:port`), performs the `Hello`
/// handshake, and returns the connected link. This is the production
/// [`Dialer`](crate::scheduler::Dialer).
pub fn dial(addr: &str, spec: &MatrixSpec, fingerprint: u64) -> io::Result<Box<dyn WorkerLink>> {
    let stream = TcpStream::connect(addr)?;
    // Frames are small and latency-sensitive (each CellDone unblocks
    // scheduling decisions); never batch them behind Nagle.
    stream.set_nodelay(true)?;
    let writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    match frame::read_message(&mut reader)? {
        Message::Hello { capacity } => Ok(Box::new(TcpWorkerLink {
            reader,
            writer,
            capacity,
            spec: spec.clone(),
            fingerprint,
        })),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("worker {addr} opened with {other:?} instead of Hello"),
        )),
    }
}

impl WorkerLink for TcpWorkerLink {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn submit(&mut self, keys: &[String]) -> io::Result<()> {
        frame::write_message(
            &mut self.writer,
            &Message::RunCells {
                fingerprint: self.fingerprint,
                spec: self.spec.clone(),
                keys: keys.to_vec(),
            },
        )
    }

    fn recv(&mut self) -> io::Result<WorkerEvent> {
        loop {
            match frame::read_message(&mut self.reader)? {
                Message::CellDone { key, report } => return Ok(WorkerEvent::Cell(key, report)),
                Message::Done { .. } => return Ok(WorkerEvent::Done),
                Message::Heartbeat => continue, // keep-alive, not an event
                Message::Error { message } => {
                    // The worker refused or failed the batch; surfacing it
                    // as an I/O error makes the scheduler re-queue this
                    // batch and abandon the worker.
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("worker refused the batch: {message}"),
                    ));
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected frame from worker: {other:?}"),
                    ))
                }
            }
        }
    }
}
