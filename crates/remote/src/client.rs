//! The coordinator's side of one worker connection: dial the daemon
//! (or accept its `Register`), authenticate when `--auth-key` is set,
//! read its greeting, negotiate the frame codec, then expose the
//! connection as a [`WorkerLink`](crate::scheduler::WorkerLink) for the
//! scheduler.
//!
//! Liveness lives here: every worker socket carries a read deadline of
//! [`RemoteSpec::heartbeat_deadline`]. Healthy daemons emit a
//! `Heartbeat` at least every few seconds even while a long cell
//! computes, so *any* read that times out means the worker went silent
//! past the deadline — a hung machine, a blackholed network — and the
//! link surfaces it as an error so the scheduler re-queues the worker's
//! in-flight cells. Before this deadline existed, a hung worker stalled
//! the whole run forever: `recv` blocked in `read` with no way out.
//!
//! Codec negotiation is one-sided and cheap: a worker whose greeting
//! advertises `bin1` gets a `SetCodec` frame back and both directions
//! switch to the compact binary codec; any other worker — an old build,
//! `serve --wire json` — keeps JSON and never sees a frame it cannot
//! parse. Reads auto-detect per frame, so the switch needs no ack.

use crate::auth;
use crate::fleet;
use crate::frame::{self, Codec};
use crate::protocol::{Message, CAP_OBS1, CODEC_BIN1};
use crate::scheduler::{WorkerEvent, WorkerLink};
use sdiq_core::{Registration, RemoteSpec};
use std::io::{self, BufReader};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// A worker daemon reached over TCP (dialed or self-registered).
struct TcpWorkerLink {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    capacity: usize,
    remote: RemoteSpec,
    fingerprint: u64,
    /// Negotiated codec for frames *we* send (reads auto-detect).
    codec: Codec,
    /// The address this link reports fleet metrics and traces under.
    addr: String,
    /// Ask for metrics heartbeats / span shipping on every batch. Only
    /// set when the run wants it *and* this worker advertised
    /// [`CAP_OBS1`] — an old daemon is never sent the request.
    observe: bool,
    /// Ask for span recording on every batch (same gating as `observe`).
    trace: bool,
}

/// The observability flags for one worker link: what the run asked for
/// ([`RemoteSpec::observe`]), masked by whether this worker's greeting
/// advertised the [`CAP_OBS1`] capability.
fn observe_flags(remote: &RemoteSpec, codecs: &[String]) -> (bool, bool) {
    let capable = codecs.iter().any(|codec| codec == CAP_OBS1);
    (
        capable && remote.observe.metrics,
        capable && remote.observe.trace,
    )
}

/// Connects to `addr` within `remote.connect_timeout` (a blackholed
/// address must not stall startup for the OS default of minutes) and
/// applies the heartbeat read deadline to the stream. The error names
/// the address: with several `--workers`, "connection timed out" alone
/// does not say which machine to go look at.
fn connect(addr: &str, remote: &RemoteSpec) -> io::Result<TcpStream> {
    let timeout = remote.connect_timeout;
    let stream = connect_bounded(addr, timeout).map_err(|error| {
        io::Error::new(
            error.kind(),
            format!("worker {addr} unreachable within {timeout:?}: {error}"),
        )
    })?;
    configure(&stream, remote)?;
    Ok(stream)
}

/// `TcpStream::connect` with a per-attempt bound: like the unbounded
/// version, every resolved socket address is tried in turn (a dual-stack
/// host whose first record is unreachable must not shadow a reachable
/// second one), and the last error is reported. Zero timeout = plain
/// `connect`.
pub(crate) fn connect_bounded(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    if timeout.is_zero() {
        return TcpStream::connect(addr);
    }
    let mut last = None;
    for resolved in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&resolved, timeout) {
            Ok(stream) => return Ok(stream),
            Err(error) => last = Some(error),
        }
    }
    Err(last.unwrap_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("address `{addr}` resolves to no socket address"),
        )
    }))
}

/// Socket options every worker link needs, dialed or accepted: no Nagle
/// (frames are small and latency-sensitive — each `CellDone` unblocks
/// scheduling decisions) and the heartbeat read deadline (zero = the
/// deadline is disabled and reads block forever).
fn configure(stream: &TcpStream, remote: &RemoteSpec) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let deadline = remote.heartbeat_deadline;
    stream.set_read_timeout((!deadline.is_zero()).then_some(deadline))
}

/// Picks the frame codec for a worker that advertised `codecs` and, when
/// the pick is not the implicit JSON, tells the worker with `SetCodec`
/// (the worker switches its own frames on receipt; TCP ordering makes an
/// ack unnecessary).
fn negotiate(writer: &mut TcpStream, remote: &RemoteSpec, codecs: &[String]) -> io::Result<Codec> {
    if remote.binary_wire && codecs.iter().any(|codec| codec == CODEC_BIN1) {
        frame::write_message(
            writer,
            &Message::SetCodec {
                codec: CODEC_BIN1.to_string(),
            },
        )?;
        Ok(Codec::Binary)
    } else {
        Ok(Codec::Json)
    }
}

/// Dials a worker daemon at `addr` (`host:port`), runs the auth
/// handshake when configured, performs the `Hello` handshake, and
/// returns the connected link. This is the production
/// [`Dialer`](crate::scheduler::Dialer).
pub fn dial(addr: &str, remote: &RemoteSpec, fingerprint: u64) -> io::Result<Box<dyn WorkerLink>> {
    let stream = connect(addr, remote)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // The deadline already applies: a daemon that accepts and then hangs
    // cannot stall the handshake either.
    let mut first = frame::read_message(&mut reader).map_err(|e| deadline_error(remote, e))?;
    if let Message::AuthChallenge { nonce } = &first {
        // The worker demands authentication (it is the acceptor here).
        let Some(key) = &remote.auth_key else {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                format!("worker {addr} requires authentication — pass the shared --auth-key"),
            ));
        };
        auth::dialer_handshake(&mut reader, &mut writer, key, nonce)
            .map_err(|e| io::Error::new(e.kind(), format!("worker {addr}: {e}")))?;
        first = frame::read_message(&mut reader).map_err(|e| deadline_error(remote, e))?;
    } else if remote.auth_key.is_some() {
        // We hold a key but the worker never asked for proof: a config
        // mismatch that would silently run unauthenticated — refuse.
        return Err(io::Error::new(
            io::ErrorKind::PermissionDenied,
            format!(
                "worker {addr} did not request authentication but --auth-key is set \
                 (is the daemon running without --auth-key?)"
            ),
        ));
    }
    match first {
        Message::Hello { capacity, codecs } => {
            let codec = negotiate(&mut writer, remote, &codecs)?;
            let (observe, trace) = observe_flags(remote, &codecs);
            Ok(Box::new(TcpWorkerLink {
                reader,
                writer,
                capacity,
                remote: remote.clone(),
                fingerprint,
                codec,
                addr: addr.to_string(),
                observe,
                trace,
            }))
        }
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("worker {addr} opened with {other:?} instead of Hello"),
        )),
    }
}

/// Binds `registration.listen` and accepts worker daemons dialing *in*
/// (`repro serve --register`) until `registration.expect` of them have
/// sent a valid `Register` frame; returns their connected links. A
/// connection that opens with anything else (or goes silent before
/// registering) is logged and dropped — the listener keeps accepting, so
/// a port-scanner cannot consume a registration slot. With an auth key,
/// the coordinator (the acceptor here) challenges every connection
/// before reading its `Register`; failing the handshake also just drops
/// the connection.
///
/// The bound address is announced on stderr as
/// `remote: listening for workers on <addr> (expecting <n>)` so scripts
/// binding port `0` can discover the real port.
pub fn accept_registrations(
    registration: &Registration,
    remote: &RemoteSpec,
    fingerprint: u64,
) -> io::Result<Vec<(String, Box<dyn WorkerLink>)>> {
    let listener = TcpListener::bind(&registration.listen)?;
    let bound = listener.local_addr()?;
    eprintln!(
        "remote: listening for workers on {bound} (expecting {})",
        registration.expect
    );
    let mut links: Vec<(String, Box<dyn WorkerLink>)> = Vec::new();
    while links.len() < registration.expect {
        let (stream, peer) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(error) => {
                eprintln!("remote: accepting a registration failed: {error}; continuing");
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        let peer = peer.to_string();
        // The handshake must complete promptly even when the run's
        // heartbeat deadline is disabled: a half-open connection must
        // not wedge the rendezvous.
        let handshake = match remote.heartbeat_deadline {
            deadline if deadline.is_zero() => Duration::from_secs(10),
            deadline => deadline,
        };
        let register = configure(&stream, remote)
            .and_then(|()| stream.set_read_timeout(Some(handshake)))
            .and_then(|()| stream.try_clone())
            .and_then(|mut writer| {
                let mut reader = BufReader::new(stream);
                if let Some(key) = &remote.auth_key {
                    auth::acceptor_handshake(&mut reader, &mut writer, key)?;
                }
                frame::read_message(&mut reader).map(|message| (message, reader, writer))
            });
        match register {
            Ok((Message::Register { capacity, codecs }, reader, mut writer)) => {
                // Restore the run deadline the handshake timeout replaced
                // (the clone shares the socket, so this covers the reader).
                let deadline = remote.heartbeat_deadline;
                let configured = writer
                    .set_read_timeout((!deadline.is_zero()).then_some(deadline))
                    .and_then(|()| negotiate(&mut writer, remote, &codecs));
                let codec = match configured {
                    Ok(codec) => codec,
                    Err(error) => {
                        eprintln!("remote: configuring registered worker {peer} failed: {error}");
                        continue;
                    }
                };
                eprintln!(
                    "remote: worker {peer} registered with capacity {capacity} ({}/{})",
                    links.len() + 1,
                    registration.expect
                );
                let (observe, trace) = observe_flags(remote, &codecs);
                links.push((
                    peer.clone(),
                    Box::new(TcpWorkerLink {
                        reader,
                        writer,
                        capacity,
                        remote: remote.clone(),
                        fingerprint,
                        codec,
                        addr: peer,
                        observe,
                        trace,
                    }),
                ));
            }
            Ok((other, _, _)) => {
                eprintln!("remote: {peer} opened with {other:?} instead of Register; dropping");
            }
            Err(error) => {
                eprintln!("remote: registration from {peer} failed: {error}; dropping");
            }
        }
    }
    Ok(links)
}

/// Rewrites a socket-timeout error into the liveness verdict it means:
/// the worker was silent past the heartbeat deadline. (`WouldBlock` is
/// what Unix returns for a timed-out read on a socket with
/// `SO_RCVTIMEO`; Windows says `TimedOut`.)
fn deadline_error(remote: &RemoteSpec, error: io::Error) -> io::Error {
    match error.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => io::Error::new(
            io::ErrorKind::TimedOut,
            format!(
                "silent past the {:?} heartbeat deadline — presumed hung",
                remote.heartbeat_deadline
            ),
        ),
        _ => error,
    }
}

impl WorkerLink for TcpWorkerLink {
    fn capacity(&self) -> usize {
        self.capacity
    }

    fn submit(&mut self, keys: &[String]) -> io::Result<()> {
        frame::write_message_codec(
            &mut self.writer,
            &Message::RunCells {
                fingerprint: self.fingerprint,
                spec: self.remote.spec.clone(),
                keys: keys.to_vec(),
                observe: self.observe,
                trace: self.trace,
            },
            self.codec,
        )
    }

    fn recv(&mut self) -> io::Result<WorkerEvent> {
        loop {
            let message = frame::read_message(&mut self.reader)
                .map_err(|e| deadline_error(&self.remote, e))?;
            match message {
                Message::CellDone { key, report } => return Ok(WorkerEvent::Cell(key, report)),
                Message::Done { .. } => return Ok(WorkerEvent::Done),
                Message::Heartbeat => continue, // keep-alive: the read itself reset the deadline
                Message::HeartbeatMetrics { metrics } => {
                    // A keep-alive like any other (the read reset the
                    // deadline), plus the worker's latest totals for the
                    // fleet view.
                    fleet::record(&self.addr, metrics);
                    continue;
                }
                Message::TraceEvents { events } => {
                    // The worker's spans for this batch, re-laned onto
                    // its fleet pid and merged for the trace export.
                    fleet::inject_trace(&self.addr, events);
                    continue;
                }
                Message::Error { message } => {
                    // The worker refused or failed the batch; surfacing it
                    // as an I/O error makes the scheduler re-queue this
                    // batch and abandon the worker.
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("worker refused the batch: {message}"),
                    ));
                }
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unexpected frame from worker: {other:?}"),
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_core::MatrixSpec;

    fn test_spec(heartbeat_deadline: Duration) -> RemoteSpec {
        RemoteSpec {
            workers: Vec::new(),
            registration: None,
            spec: MatrixSpec {
                scale: 0.05,
                sweeps: Vec::new(),
                benchmarks: vec!["gzip".to_string()],
                techniques: vec!["baseline".to_string()],
            },
            retry_budget: 0,
            connect_timeout: Duration::from_secs(5),
            heartbeat_deadline,
            speculate: true,
            binary_wire: true,
            pipeline_window: 0,
            auth_key: None,
            observe: sdiq_core::ObserveSpec::default(),
            launch: |_, _, _, _| unreachable!("client tests never launch"),
        }
    }

    fn hello(capacity: usize) -> Message {
        Message::Hello {
            capacity,
            codecs: Vec::new(),
        }
    }

    /// The liveness bugfix, pinned at the socket level: a worker that
    /// says Hello and then goes silent (no frames, socket open — the
    /// wire signature of a hung machine) must surface as a timeout
    /// within the heartbeat deadline, not block forever.
    #[test]
    fn a_silent_worker_times_out_at_the_heartbeat_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            frame::write_message(&mut stream, &hello(1)).unwrap();
            // Hold the socket open, silently, longer than the deadline.
            std::thread::sleep(Duration::from_secs(2));
            drop(stream);
        });
        let spec = test_spec(Duration::from_millis(200));
        let mut link = dial(&addr, &spec, 0).expect("handshake inside the deadline");
        let started = std::time::Instant::now();
        let error = link.recv().expect_err("silence must not block forever");
        assert_eq!(error.kind(), io::ErrorKind::TimedOut);
        assert!(
            error.to_string().contains("heartbeat deadline"),
            "error names the deadline: {error}"
        );
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "the deadline fired, not the 2 s server sleep"
        );
        server.join().unwrap();
    }

    /// Heartbeats are what keeps a slow-but-alive worker alive: each one
    /// resets the read deadline, so a cell that computes for many
    /// deadline-lengths survives as long as the daemon keeps beating.
    #[test]
    fn heartbeats_reset_the_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            frame::write_message(&mut stream, &hello(1)).unwrap();
            for _ in 0..6 {
                std::thread::sleep(Duration::from_millis(100));
                frame::write_message(&mut stream, &Message::Heartbeat).unwrap();
            }
            frame::write_message(&mut stream, &Message::Done { computed: 0 }).unwrap();
        });
        let spec = test_spec(Duration::from_millis(300));
        let mut link = dial(&addr, &spec, 0).unwrap();
        // Six 100 ms beats span 600 ms — twice the deadline — yet the
        // stream stays live because every beat resets it.
        match link.recv().expect("kept alive by heartbeats") {
            WorkerEvent::Done => {}
            other => panic!("expected Done, got {other:?}"),
        }
        server.join().unwrap();
    }

    /// The dial itself is bounded too: an address that drops SYNs (here:
    /// a listener whose backlog we never accept from is the closest
    /// portable stand-in — so instead use an unroutable port on a bound
    /// but never-accepting socket) must fail within `connect_timeout`.
    /// Localhost refuses instantly, so the observable contract is just
    /// that refused dials name the address.
    #[test]
    fn unreachable_workers_name_the_address() {
        let spec = test_spec(Duration::from_millis(200));
        // Bind-then-drop: the port was just free, so the dial is refused.
        let port = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let addr = format!("127.0.0.1:{port}");
        let error = match dial(&addr, &spec, 0) {
            Err(error) => error,
            Ok(_) => panic!("nobody listens there"),
        };
        assert!(
            error.to_string().contains(&addr),
            "error names the address: {error}"
        );
    }

    /// A worker that advertises `bin1` gets `SetCodec` and subsequent
    /// batches arrive binary-framed; one that advertises nothing keeps
    /// receiving JSON. Both observed from the worker's side of the wire.
    #[test]
    fn codec_negotiation_switches_exactly_the_advertising_worker() {
        for advertise in [true, false] {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap().to_string();
            let server = std::thread::spawn(move || {
                let (stream, _) = listener.accept().unwrap();
                let mut writer = stream.try_clone().unwrap();
                let codecs = if advertise {
                    vec![CODEC_BIN1.to_string()]
                } else {
                    Vec::new()
                };
                frame::write_message(
                    &mut writer,
                    &Message::Hello {
                        capacity: 1,
                        codecs,
                    },
                )
                .unwrap();
                let mut reader = BufReader::new(stream);
                let mut saw_set_codec = false;
                // Read raw frames: length prefix + payload, so the test
                // sees the actual encoding, not just the decoded message.
                while let Ok(Some(message)) = frame::read_message_opt(&mut reader) {
                    match message {
                        Message::SetCodec { codec } => {
                            assert_eq!(codec, CODEC_BIN1);
                            saw_set_codec = true;
                        }
                        Message::RunCells { keys, .. } => {
                            assert_eq!(keys, vec!["k".to_string()]);
                            frame::write_message(&mut writer, &Message::Done { computed: 0 })
                                .unwrap();
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
                assert_eq!(saw_set_codec, advertise, "SetCodec iff advertised");
            });
            let spec = test_spec(Duration::from_secs(2));
            let mut link = dial(&addr, &spec, 0).unwrap();
            link.submit(&["k".to_string()]).unwrap();
            match link.recv().unwrap() {
                WorkerEvent::Done => {}
                other => panic!("expected Done, got {other:?}"),
            }
            drop(link);
            server.join().unwrap();
        }
    }

    /// Auth, both failure shapes: a keyless coordinator dialing a keyed
    /// worker gets a clean "requires authentication" error, and a keyed
    /// coordinator dialing a keyless worker refuses to proceed — neither
    /// hangs.
    #[test]
    fn auth_mismatches_fail_cleanly_in_both_directions() {
        // Keyed worker, keyless coordinator.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let _ = auth::acceptor_handshake(&mut reader, &mut writer, "sesame");
        });
        let spec = test_spec(Duration::from_secs(2));
        let error = match dial(&addr, &spec, 0) {
            Err(error) => error,
            Ok(_) => panic!("must refuse without a key"),
        };
        assert!(
            error.to_string().contains("requires authentication"),
            "clean error: {error}"
        );
        server.join().unwrap();

        // Keyless worker, keyed coordinator.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            frame::write_message(&mut stream, &hello(1)).unwrap();
            std::thread::sleep(Duration::from_millis(100));
        });
        let mut spec = test_spec(Duration::from_secs(2));
        spec.auth_key = Some("sesame".to_string());
        let error = match dial(&addr, &spec, 0) {
            Err(error) => error,
            Ok(_) => panic!("must refuse unauthenticated worker"),
        };
        assert!(
            error.to_string().contains("did not request authentication"),
            "clean error: {error}"
        );
        server.join().unwrap();

        // Wrong key: the handshake itself rejects.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            let error = auth::acceptor_handshake(&mut reader, &mut writer, "sesame")
                .expect_err("wrong key must fail");
            assert_eq!(error.kind(), io::ErrorKind::PermissionDenied);
        });
        let mut spec = test_spec(Duration::from_secs(2));
        spec.auth_key = Some("not-sesame".to_string());
        let error = match dial(&addr, &spec, 0) {
            Err(error) => error,
            Ok(_) => panic!("wrong key must fail"),
        };
        assert!(
            error.to_string().contains("authentication"),
            "clean error: {error}"
        );
        server.join().unwrap();
    }

    /// The full handshake succeeding end to end: keyed on both sides,
    /// then a normal greeting and batch.
    #[test]
    fn matching_auth_keys_handshake_and_run() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut writer = stream.try_clone().unwrap();
            let mut reader = BufReader::new(stream);
            auth::acceptor_handshake(&mut reader, &mut writer, "sesame").unwrap();
            frame::write_message(&mut writer, &hello(1)).unwrap();
            match frame::read_message(&mut reader).unwrap() {
                Message::RunCells { .. } => {
                    frame::write_message(&mut writer, &Message::Done { computed: 0 }).unwrap();
                }
                other => panic!("unexpected {other:?}"),
            }
        });
        let mut spec = test_spec(Duration::from_secs(2));
        spec.auth_key = Some("sesame".to_string());
        let mut link = dial(&addr, &spec, 0).unwrap();
        link.submit(&["k".to_string()]).unwrap();
        match link.recv().unwrap() {
            WorkerEvent::Done => {}
            other => panic!("expected Done, got {other:?}"),
        }
        server.join().unwrap();
    }
}
