//! Coordinator-side fleet observability: the per-worker registry behind
//! `--progress` and the merged Chrome trace.
//!
//! Worker daemons report cumulative [`MetricsDelta`] totals piggybacked
//! on their heartbeats (see [`crate::protocol::Message::HeartbeatMetrics`])
//! and, when tracing, ship their recorded spans back right before `Done`.
//! Both arrive on the scheduler's per-worker driver threads, so the
//! registry is a mutex over a small vector — entries are keyed by worker
//! address and the insertion order doubles as the worker's stable 1-based
//! fleet index, which is the `pid` lane its events occupy in the exported
//! trace (`pid` 0 is the coordinator itself).
//!
//! The registry is process-global because the scheduler reaches it from
//! plain function-pointer dialers with no room for a context handle;
//! [`reset`] at launch scopes it to one run at a time, matching how a
//! coordinator process actually behaves.

use sdiq_obs::{MetricsDelta, TraceEvent};
use std::sync::{Mutex, PoisonError};

static REGISTRY: Mutex<Vec<(String, MetricsDelta)>> = Mutex::new(Vec::new());

fn registry() -> std::sync::MutexGuard<'static, Vec<(String, MetricsDelta)>> {
    // Entries are plain value swaps; a panic mid-update cannot leave a
    // torn entry, so recovering from poison is safe.
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Clears the registry. Called once at the start of every remote launch
/// so a second run in the same process (tests, library use) starts from
/// an empty fleet view.
pub fn reset() {
    registry().clear();
}

/// Records `addr`'s latest cumulative totals, replacing any previous
/// report (the deltas are monotonic totals, not increments, so the last
/// report is the whole story).
pub fn record(addr: &str, delta: MetricsDelta) {
    let mut entries = registry();
    match entries.iter_mut().find(|(worker, _)| worker == addr) {
        Some((_, existing)) => *existing = delta,
        None => entries.push((addr.to_string(), delta)),
    }
}

/// The current fleet view: every worker that has reported, with its
/// latest totals, in fleet-index order.
pub fn snapshot() -> Vec<(String, MetricsDelta)> {
    registry().clone()
}

/// `addr`'s stable 1-based fleet index (`pid` lane in the exported
/// trace). A worker that has not reported metrics yet is registered with
/// zeroed totals so trace-only runs still get stable lanes.
pub fn worker_id(addr: &str) -> u64 {
    let mut entries = registry();
    if let Some(index) = entries.iter().position(|(worker, _)| worker == addr) {
        return index as u64 + 1;
    }
    entries.push((addr.to_string(), MetricsDelta::default()));
    entries.len() as u64
}

/// Merges `addr`'s shipped trace events into this process's collector,
/// re-laned onto the worker's `pid` so the export shows one process
/// track per fleet member (workers record everything as their own
/// `pid` 0 — they have no idea which fleet slot they are).
pub fn inject_trace(addr: &str, mut events: Vec<TraceEvent>) {
    let pid = worker_id(addr);
    for event in &mut events {
        event.pid = pid;
    }
    sdiq_obs::inject(events);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(cells_done: u64) -> MetricsDelta {
        MetricsDelta {
            cells_done,
            ..MetricsDelta::default()
        }
    }

    #[test]
    fn records_replace_and_ids_are_stable() {
        reset();
        record("a:1", delta(1));
        record("b:2", delta(2));
        record("a:1", delta(5));
        assert_eq!(
            snapshot(),
            vec![("a:1".to_string(), delta(5)), ("b:2".to_string(), delta(2))]
        );
        assert_eq!(worker_id("a:1"), 1);
        assert_eq!(worker_id("b:2"), 2);
        assert_eq!(worker_id("c:3"), 3, "unknown workers get the next lane");
        assert_eq!(worker_id("a:1"), 1, "ids never move");
        reset();
        assert!(snapshot().is_empty());
    }

    #[test]
    fn injected_traces_are_relaned_to_the_worker_pid() {
        reset();
        record("w:9", delta(0));
        let drained = sdiq_obs::drain(); // discard whatever other tests left
        drop(drained);
        inject_trace(
            "w:9",
            vec![TraceEvent {
                name: "cell".to_string(),
                cat: "cell".to_string(),
                pid: 0,
                tid: 7,
                start_nanos: 1,
                dur_nanos: Some(2),
                args: Vec::new(),
            }],
        );
        let drained = sdiq_obs::drain();
        let event = drained
            .iter()
            .find(|e| e.name == "cell" && e.tid == 7)
            .expect("injected event is in the collector");
        assert_eq!(event.pid, 1, "re-laned to the worker's fleet index");
    }
}
