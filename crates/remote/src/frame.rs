//! Wire framing: every message travels as a 4-byte **big-endian** length
//! prefix followed by exactly that many payload bytes. Length prefixes
//! make the stream self-delimiting without sentinel scanning; big-endian
//! keeps the bytes architecture-independent, like the engine's cell-key
//! fingerprints.
//!
//! The payload is one of two codecs, chosen per *writer* by negotiation
//! (see [`crate::protocol`]): UTF-8 JSON, or the compact `bin1` layout in
//! [`crate::binary`]. Readers never need to know what was negotiated —
//! binary payloads start with a tag byte `< 0x20` and JSON documents
//! cannot, so [`read_message_opt`] detects the codec of every frame from
//! its first byte. That keeps the reader stateless across the `SetCodec`
//! switch and makes mixed-codec streams (during negotiation) safe by
//! construction.
//!
//! `Heartbeat` frames are the highest-frequency message on a healthy
//! fleet, so both directions special-case them: the encoded frame is a
//! compile-time constant in either codec (no rendering, no allocation),
//! and the decoder recognises both constant payloads byte-wise before
//! any codec machinery runs. Small frames are staged through a stack
//! buffer, so a heartbeat round-trip allocates nothing at all (pinned by
//! the `heartbeat_alloc` integration test).

use crate::binary;
use crate::protocol::Message;
use std::io::{self, Read, Write};

/// Hard ceiling on one frame's payload, in bytes. A `RunCells` frame
/// carries at most a few thousand cell keys and a `CellDone` one report
/// (a few KiB); anything near this limit is a corrupt or hostile length
/// prefix, and rejecting it beats a multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Which codec a writer uses for its frames (readers auto-detect).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Codec {
    /// UTF-8 JSON payloads (the implicit default every peer speaks).
    Json,
    /// The `bin1` binary layout ([`crate::binary`]), after negotiation.
    Binary,
}

/// The JSON heartbeat payload (exactly what `Message::Heartbeat.render()`
/// produces — asserted by test, since the fast path must stay
/// byte-identical to the slow one).
const HEARTBEAT_JSON: &[u8] = b"{\"type\":\"heartbeat\"}";

/// The complete JSON heartbeat frame, prefix included.
const HEARTBEAT_JSON_FRAME: &[u8] = &{
    let mut frame = [0u8; 4 + HEARTBEAT_JSON.len()];
    let len = (HEARTBEAT_JSON.len() as u32).to_be_bytes();
    let mut i = 0;
    while i < 4 {
        frame[i] = len[i];
        i += 1;
    }
    while i < frame.len() {
        frame[i] = HEARTBEAT_JSON[i - 4];
        i += 1;
    }
    frame
};

/// The complete `bin1` heartbeat frame: length 1, one tag byte.
const HEARTBEAT_BINARY_FRAME: &[u8] = &[0, 0, 0, 1, binary::TAG_HEARTBEAT];

/// Frames at most this long are staged through a stack buffer on read —
/// covers both heartbeat payloads (and most control frames) without
/// touching the heap.
const STACK_FRAME_BYTES: usize = 64;

/// Writes one message as a frame in `codec` and flushes it, so the peer
/// sees it immediately (cell streaming is the whole point of the
/// protocol). Heartbeats take a zero-allocation constant path in either
/// codec.
pub fn write_message_codec(
    writer: &mut impl Write,
    message: &Message,
    codec: Codec,
) -> io::Result<()> {
    if matches!(message, Message::Heartbeat) {
        writer.write_all(match codec {
            Codec::Json => HEARTBEAT_JSON_FRAME,
            Codec::Binary => HEARTBEAT_BINARY_FRAME,
        })?;
        return writer.flush();
    }
    let payload = match codec {
        Codec::Json => message.render().into_bytes(),
        Codec::Binary => binary::encode_message(message),
    };
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&len| len <= MAX_FRAME_BYTES)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes exceeds the protocol limit",
                    payload.len()
                ),
            )
        })?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(&payload)?;
    writer.flush()
}

/// [`write_message_codec`] with the JSON codec (greetings and the auth
/// handshake, which precede negotiation, plus every un-negotiated
/// connection).
pub fn write_message(writer: &mut impl Write, message: &Message) -> io::Result<()> {
    write_message_codec(writer, message, Codec::Json)
}

/// Decodes one frame payload, auto-detecting its codec from the first
/// byte (see the module docs).
fn decode_payload(payload: &[u8]) -> io::Result<Message> {
    // Zero-allocation heartbeat fast path, both codecs: exact payload
    // compare, no parser.
    if payload == &HEARTBEAT_BINARY_FRAME[4..] || payload == HEARTBEAT_JSON {
        return Ok(Message::Heartbeat);
    }
    match payload.first() {
        None => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad frame: empty payload",
        )),
        Some(&tag) if tag < binary::MAX_TAG => binary::decode_message(payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e}"))),
        Some(_) => {
            let text = std::str::from_utf8(payload).map_err(|e| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("frame is not UTF-8: {e}"),
                )
            })?;
            Message::parse(text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e}")))
        }
    }
}

/// Reads one message, or `Ok(None)` on a clean end-of-stream (the peer
/// closed the connection *between* frames — the normal way a coordinator
/// releases a worker). EOF in the middle of a frame is an error: it is
/// the signature of a peer that died mid-send.
pub fn read_message_opt(reader: &mut impl Read) -> io::Result<Option<Message>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        let n = reader.read(&mut prefix[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed the connection inside a frame length prefix",
            ));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the protocol limit"),
        ));
    }
    let len = len as usize;
    if len <= STACK_FRAME_BYTES {
        // Small frames — heartbeats above all — stay on the stack.
        let mut payload = [0u8; STACK_FRAME_BYTES];
        reader.read_exact(&mut payload[..len])?;
        return decode_payload(&payload[..len]).map(Some);
    }
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    decode_payload(&payload).map(Some)
}

/// [`read_message_opt`] for callers to whom *any* end-of-stream is a
/// failure (the coordinator mid-batch: a vanished worker must surface as
/// an error so its cells get re-queued).
pub fn read_message(reader: &mut impl Read) -> io::Result<Message> {
    read_message_opt(reader)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed the connection"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hello(capacity: usize) -> Message {
        Message::Hello {
            capacity,
            codecs: Vec::new(),
        }
    }

    #[test]
    fn frames_round_trip_and_eof_positions_are_distinguished() {
        let mut buffer = Vec::new();
        write_message(&mut buffer, &Message::Heartbeat).unwrap();
        write_message(&mut buffer, &hello(7)).unwrap();

        let mut reader = &buffer[..];
        assert_eq!(read_message(&mut reader).unwrap(), Message::Heartbeat);
        assert_eq!(read_message(&mut reader).unwrap(), hello(7));
        // Clean EOF at a frame boundary: Ok(None) for the daemon...
        assert!(read_message_opt(&mut reader).unwrap().is_none());
        // ...and an error for the mid-batch coordinator.
        let mut reader = &buffer[..];
        read_message(&mut reader).unwrap();
        read_message(&mut reader).unwrap();
        assert_eq!(
            read_message(&mut reader).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );

        // EOF *inside* a frame is always an error, wherever it lands.
        for cut in 1..buffer.len() {
            let mut torn = &buffer[..cut];
            let mut result = Ok(Some(Message::Heartbeat));
            while matches!(result, Ok(Some(_))) {
                result = read_message_opt(&mut torn);
            }
            match cut {
                // First frame (heartbeat) is 4 + 20 bytes; any cut before a
                // boundary must error, a cut exactly on one must not.
                c if c == 4 + 20 => assert!(matches!(result, Ok(None))),
                _ => assert!(result.is_err(), "cut at {cut} should tear a frame"),
            }
        }
    }

    #[test]
    fn binary_frames_round_trip_and_interleave_with_json() {
        // A mixed stream — as seen across a SetCodec switch — decodes
        // frame by frame with no reader-side state.
        let mut buffer = Vec::new();
        write_message_codec(&mut buffer, &hello(3), Codec::Json).unwrap();
        write_message_codec(
            &mut buffer,
            &Message::SetCodec {
                codec: crate::protocol::CODEC_BIN1.to_string(),
            },
            Codec::Json,
        )
        .unwrap();
        write_message_codec(&mut buffer, &Message::Heartbeat, Codec::Binary).unwrap();
        write_message_codec(&mut buffer, &Message::Done { computed: 9 }, Codec::Binary).unwrap();

        let mut reader = &buffer[..];
        assert_eq!(read_message(&mut reader).unwrap(), hello(3));
        assert!(matches!(
            read_message(&mut reader).unwrap(),
            Message::SetCodec { .. }
        ));
        assert_eq!(read_message(&mut reader).unwrap(), Message::Heartbeat);
        assert_eq!(
            read_message(&mut reader).unwrap(),
            Message::Done { computed: 9 }
        );
        assert!(read_message_opt(&mut reader).unwrap().is_none());
    }

    #[test]
    fn heartbeat_fast_paths_stay_byte_identical_to_the_codecs() {
        // The constant frames must be exactly what the codecs produce —
        // otherwise the fast path would silently fork the protocol.
        assert_eq!(Message::Heartbeat.render().as_bytes(), HEARTBEAT_JSON);
        assert_eq!(
            binary::encode_message(&Message::Heartbeat),
            HEARTBEAT_BINARY_FRAME[4..].to_vec()
        );
        // And the binary heartbeat is the smallest possible frame.
        assert_eq!(HEARTBEAT_BINARY_FRAME.len(), 5);
    }

    #[test]
    fn hostile_length_prefixes_are_rejected_without_allocating() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&u32::MAX.to_be_bytes());
        buffer.extend_from_slice(b"junk");
        let error = read_message(&mut &buffer[..]).unwrap_err();
        assert_eq!(error.kind(), io::ErrorKind::InvalidData);
        assert!(error.to_string().contains("exceeds the protocol limit"));
    }

    #[test]
    fn empty_and_garbage_payloads_error_cleanly() {
        // Zero-length frame.
        let buffer = 0u32.to_be_bytes();
        assert!(read_message(&mut &buffer[..]).is_err());
        // A binary-range first byte with a broken body.
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&2u32.to_be_bytes());
        buffer.extend_from_slice(&[binary::TAG_ERROR, 0xff]);
        assert!(read_message(&mut &buffer[..]).is_err());
    }
}
