//! Wire framing: every message travels as a 4-byte **big-endian** length
//! prefix followed by exactly that many bytes of UTF-8 JSON (the
//! [`crate::protocol`] grammar). Length prefixes make the stream
//! self-delimiting without sentinel scanning; big-endian keeps the bytes
//! architecture-independent, like the engine's cell-key fingerprints.

use crate::protocol::Message;
use std::io::{self, Read, Write};

/// Hard ceiling on one frame's payload, in bytes. A `RunCells` frame
/// carries at most a few thousand cell keys and a `CellDone` one report
/// (a few KiB); anything near this limit is a corrupt or hostile length
/// prefix, and rejecting it beats a multi-gigabyte allocation.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Writes one message as a frame and flushes it, so the peer sees it
/// immediately (cell streaming is the whole point of the protocol).
pub fn write_message(writer: &mut impl Write, message: &Message) -> io::Result<()> {
    let payload = message.render();
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&len| len <= MAX_FRAME_BYTES)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "frame payload of {} bytes exceeds the protocol limit",
                    payload.len()
                ),
            )
        })?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload.as_bytes())?;
    writer.flush()
}

/// Reads one message, or `Ok(None)` on a clean end-of-stream (the peer
/// closed the connection *between* frames — the normal way a coordinator
/// releases a worker). EOF in the middle of a frame is an error: it is
/// the signature of a peer that died mid-send.
pub fn read_message_opt(reader: &mut impl Read) -> io::Result<Option<Message>> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        let n = reader.read(&mut prefix[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "peer closed the connection inside a frame length prefix",
            ));
        }
        filled += n;
    }
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the protocol limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    reader.read_exact(&mut payload)?;
    let text = String::from_utf8(payload).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame is not UTF-8: {e}"),
        )
    })?;
    Message::parse(&text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame: {e}")))
}

/// [`read_message_opt`] for callers to whom *any* end-of-stream is a
/// failure (the coordinator mid-batch: a vanished worker must surface as
/// an error so its cells get re-queued).
pub fn read_message(reader: &mut impl Read) -> io::Result<Message> {
    read_message_opt(reader)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "peer closed the connection"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_eof_positions_are_distinguished() {
        let mut buffer = Vec::new();
        write_message(&mut buffer, &Message::Heartbeat).unwrap();
        write_message(&mut buffer, &Message::Hello { capacity: 7 }).unwrap();

        let mut reader = &buffer[..];
        assert_eq!(read_message(&mut reader).unwrap(), Message::Heartbeat);
        assert_eq!(
            read_message(&mut reader).unwrap(),
            Message::Hello { capacity: 7 }
        );
        // Clean EOF at a frame boundary: Ok(None) for the daemon...
        assert!(read_message_opt(&mut reader).unwrap().is_none());
        // ...and an error for the mid-batch coordinator.
        let mut reader = &buffer[..];
        read_message(&mut reader).unwrap();
        read_message(&mut reader).unwrap();
        assert_eq!(
            read_message(&mut reader).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );

        // EOF *inside* a frame is always an error, wherever it lands.
        for cut in 1..buffer.len() {
            let mut torn = &buffer[..cut];
            let mut result = Ok(Some(Message::Heartbeat));
            while matches!(result, Ok(Some(_))) {
                result = read_message_opt(&mut torn);
            }
            match cut {
                // First frame (heartbeat) is 4 + 20 bytes; any cut before a
                // boundary must error, a cut exactly on one must not.
                c if c == 4 + 20 => assert!(matches!(result, Ok(None))),
                _ => assert!(result.is_err(), "cut at {cut} should tear a frame"),
            }
        }
    }

    #[test]
    fn hostile_length_prefixes_are_rejected_without_allocating() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&u32::MAX.to_be_bytes());
        buffer.extend_from_slice(b"junk");
        let error = read_message(&mut &buffer[..]).unwrap_err();
        assert_eq!(error.kind(), io::ErrorKind::InvalidData);
        assert!(error.to_string().contains("exceeds the protocol limit"));
    }
}
