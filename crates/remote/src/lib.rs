//! # sdiq-remote — networked cell execution for the experiment matrix
//!
//! The engine's distribution story so far stops at one machine: the
//! subprocess backend spawns `repro --shard k/n` workers next to the
//! coordinator. This crate is the next scaling step the ROADMAP asked
//! for — "something that runs the worker command on another machine and
//! ships the file back" — except nothing is shipped as files: cells
//! stream over TCP the moment they finish, straight into the engine's
//! existing [`CellSink`](sdiq_core::CellSink) / checkpoint path.
//!
//! Std-only by construction (`std::net` is the whole transport): the
//! workspace builds offline against vendored shims, and this crate adds
//! no dependency beyond `sdiq-core` itself.
//!
//! ## The pieces
//!
//! * [`frame`] — the wire framing: 4-byte big-endian length prefix +
//!   a payload in one of two codecs, auto-detected on read; heartbeats
//!   take a zero-allocation constant path in both.
//! * [`protocol`] — the message grammar (`Hello`, `RunCells`, `CellDone`,
//!   `Heartbeat`, `Done`, `Error`, plus codec negotiation and the auth
//!   handshake) and its JSON codec over the same model save files use,
//!   so a report's numbers round-trip bit-identically over the network.
//! * [`binary`] — the negotiated `bin1` frame codec: tag bytes, varints,
//!   length-prefixed strings over `sdiq_core::persist_bin` (the persist
//!   JSON codec stays the on-disk format and the differential oracle).
//! * [`auth`] — std-only HMAC-SHA-256 mutual handshake for `--auth-key`
//!   fleets on untrusted networks (wrong or missing key is a clean
//!   protocol error on both sides, never a hang).
//! * [`server`] — the worker daemon behind `repro serve`: accept a
//!   coordinator, advertise capacity, compute requested cells on the
//!   in-process engine, stream each one back.
//! * [`client`] — the coordinator side of one connection: dial, read the
//!   `Hello`, submit batches, receive events.
//! * [`scheduler`] — the fault-tolerant coordinator loop: a shared work
//!   queue of missing cell keys, one driver thread per worker, batches
//!   sized by each worker's advertised capacity, re-queueing of a dead
//!   worker's in-flight cells onto survivors under a retry budget, and a
//!   clear [`BackendError`](sdiq_core::BackendError) when the pool
//!   drains. Liveness is heartbeat-deadline based: a worker silent past
//!   [`RemoteSpec::heartbeat_deadline`] counts as dead even if its
//!   socket never closes (hung OS, blackholed network), and idle
//!   drivers speculatively double-issue straggler cells (first result
//!   wins — benign, because cell results are deterministic). Workers
//!   can also self-register: `repro serve --register host:port` dials
//!   the coordinator's rendezvous listener
//!   ([`sdiq_core::Registration`]) instead of being dialed, for fleets
//!   behind NAT.
//!
//! ## Wiring into the engine
//!
//! `sdiq-core` owns the [`Backend::Remote`](sdiq_core::Backend) variant
//! but no transport: its [`RemoteSpec::launch`](sdiq_core::RemoteSpec)
//! hook is a plain function pointer this crate fills in. [`backend`]
//! builds a ready-to-run `Backend::Remote`; everything else about the
//! run (seeding from `--load`/`--checkpoint` files, streaming into a
//! [`CheckpointWriter`](sdiq_core::CheckpointWriter), `--save`) is the
//! engine's existing machinery, which is how the remote path inherits
//! the hard guarantee: **the assembled suite is byte-for-byte identical
//! to a serial run**, worker deaths included.

// The workspace denies `unwrap()`/`expect()` in shipped code; tests are
// exempt. Lock poisoning is handled via `lock_or_recover` in each module.
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod auth;
pub mod binary;
pub mod client;
pub mod fleet;
pub mod frame;
pub mod protocol;
pub mod scheduler;
pub mod server;

use scheduler::WorkerSource;

/// Locks `mutex`, recovering from poisoning. Every critical section in
/// this crate mutates plain state with no panic point mid-update, so a
/// poisoned lock (some other thread panicked while holding it) must not
/// cascade into killing the surviving threads too.
pub(crate) fn lock_or_recover<T>(mutex: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}
use sdiq_core::{Backend, MatrixSpec, ObserveSpec, Registration, RemoteSpec};
use std::time::Duration;

/// Default number of times one cell may be re-queued after worker
/// failures before the run aborts (a cell that kills three workers in a
/// row is a poison cell, not bad luck).
pub const DEFAULT_RETRY_BUDGET: usize = 3;

/// Default bound on one dial attempt. Generous for a WAN handshake, yet
/// ~12× faster than the OS connect default a blackholed address would
/// otherwise cost (typically over two minutes of stalled startup).
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// Default silence-means-dead threshold: thirty missed heartbeats
/// ([`server`] beats every ~1 s even mid-cell), so transient scheduler
/// hiccups on a loaded worker never count as a death, while a genuinely
/// hung machine is reaped in half a minute instead of never.
pub const DEFAULT_HEARTBEAT_DEADLINE: Duration = Duration::from_secs(30);

/// Everything about a remote pool except the matrix itself; the
/// defaults are what `repro --workers` uses when no tuning flags are
/// given.
#[derive(Debug, Clone)]
pub struct RemoteOptions {
    /// Worker daemon addresses to dial (`host:port`).
    pub workers: Vec<String>,
    /// Rendezvous for workers that dial in (`repro serve --register`).
    pub registration: Option<Registration>,
    /// Per-cell re-queue budget ([`DEFAULT_RETRY_BUDGET`]).
    pub retry_budget: usize,
    /// Dial bound ([`DEFAULT_CONNECT_TIMEOUT`]; zero disables).
    pub connect_timeout: Duration,
    /// Silence-means-dead threshold ([`DEFAULT_HEARTBEAT_DEADLINE`];
    /// zero disables — reads block forever, the pre-liveness behaviour).
    pub heartbeat_deadline: Duration,
    /// Whether idle drivers double-issue straggler cells (default on;
    /// benign because cell results are deterministic).
    pub speculate: bool,
    /// Negotiate the compact `bin1` frame codec with workers that
    /// advertise it (default on; off forces JSON everywhere, for
    /// debugging and codec-vs-codec benchmarking).
    pub binary_wire: bool,
    /// Cells kept outstanding per worker connection; `0` (the default)
    /// means 2× the worker's advertised capacity.
    pub pipeline_window: usize,
    /// Shared secret for the HMAC handshake (`--auth-key`); `None`
    /// leaves connections unauthenticated.
    pub auth_key: Option<String>,
    /// Fleet observability: metrics piggybacked on heartbeats and/or
    /// span tracing shipped back per batch (default: neither). Strictly
    /// out-of-band — never affects the assembled suite.
    pub observe: ObserveSpec,
}

impl Default for RemoteOptions {
    fn default() -> RemoteOptions {
        RemoteOptions {
            workers: Vec::new(),
            registration: None,
            retry_budget: DEFAULT_RETRY_BUDGET,
            connect_timeout: DEFAULT_CONNECT_TIMEOUT,
            heartbeat_deadline: DEFAULT_HEARTBEAT_DEADLINE,
            speculate: true,
            binary_wire: true,
            pipeline_window: 0,
            auth_key: None,
            observe: ObserveSpec::default(),
        }
    }
}

/// A ready-to-run remote backend over the TCP transport: dial
/// `options.workers` (and/or wait for `options.registration` daemons to
/// dial in), describe the matrix to them as `spec`. Pass the result to
/// [`Matrix::run_on`](sdiq_core::Matrix::run_on).
pub fn backend(spec: MatrixSpec, options: RemoteOptions) -> Backend {
    Backend::Remote(RemoteSpec {
        workers: options.workers,
        registration: options.registration,
        spec,
        retry_budget: options.retry_budget,
        connect_timeout: options.connect_timeout,
        heartbeat_deadline: options.heartbeat_deadline,
        speculate: options.speculate,
        binary_wire: options.binary_wire,
        pipeline_window: options.pipeline_window,
        auth_key: options.auth_key,
        observe: options.observe,
        launch,
    })
}

/// The [`sdiq_core::RemoteLaunch`] implementation: the generic scheduler
/// over the TCP dialer, with the registration rendezvous (when
/// configured) run first so self-registered workers join the same pool
/// as dialed ones.
fn launch(
    matrix: &sdiq_core::Matrix<'_>,
    spec: &RemoteSpec,
    seed: &std::collections::HashMap<String, sdiq_core::RunReport>,
    sink: Option<&dyn sdiq_core::CellSink>,
) -> Result<sdiq_core::Sweep, sdiq_core::BackendError> {
    // A fresh fleet view per run: worker ids (= trace pid lanes) and
    // reported totals are scoped to one launch.
    fleet::reset();
    let mut sources: Vec<WorkerSource> = spec
        .workers
        .iter()
        .cloned()
        .map(WorkerSource::Dial)
        .collect();
    if let Some(registration) = &spec.registration {
        let fingerprint = sdiq_core::matrix_fingerprint(&matrix.cell_keys());
        let registered =
            client::accept_registrations(registration, spec, fingerprint).map_err(|e| {
                sdiq_core::BackendError::new(format!(
                    "waiting for worker registrations on {}: {e}",
                    registration.listen
                ))
            })?;
        sources.extend(
            registered
                .into_iter()
                .map(|(addr, link)| WorkerSource::Ready { addr, link }),
        );
    }
    scheduler::run_with_sources(matrix, spec, seed, sink, client::dial, sources)
}
