//! # sdiq-remote — networked cell execution for the experiment matrix
//!
//! The engine's distribution story so far stops at one machine: the
//! subprocess backend spawns `repro --shard k/n` workers next to the
//! coordinator. This crate is the next scaling step the ROADMAP asked
//! for — "something that runs the worker command on another machine and
//! ships the file back" — except nothing is shipped as files: cells
//! stream over TCP the moment they finish, straight into the engine's
//! existing [`CellSink`](sdiq_core::CellSink) / checkpoint path.
//!
//! Std-only by construction (`std::net` is the whole transport): the
//! workspace builds offline against vendored shims, and this crate adds
//! no dependency beyond `sdiq-core` itself.
//!
//! ## The pieces
//!
//! * [`frame`] — the wire framing: 4-byte big-endian length prefix +
//!   UTF-8 JSON payload.
//! * [`protocol`] — the message grammar (`Hello`, `RunCells`, `CellDone`,
//!   `Heartbeat`, `Done`, `Error`) and its codec over the same JSON model
//!   save files use, so a report's numbers round-trip bit-identically
//!   over the network.
//! * [`server`] — the worker daemon behind `repro serve`: accept a
//!   coordinator, advertise capacity, compute requested cells on the
//!   in-process engine, stream each one back.
//! * [`client`] — the coordinator side of one connection: dial, read the
//!   `Hello`, submit batches, receive events.
//! * [`scheduler`] — the fault-tolerant coordinator loop: a shared work
//!   queue of missing cell keys, one driver thread per worker, batches
//!   sized by each worker's advertised capacity, re-queueing of a dead
//!   worker's in-flight cells onto survivors under a retry budget, and a
//!   clear [`BackendError`](sdiq_core::BackendError) when the pool
//!   drains.
//!
//! ## Wiring into the engine
//!
//! `sdiq-core` owns the [`Backend::Remote`](sdiq_core::Backend) variant
//! but no transport: its [`RemoteSpec::launch`](sdiq_core::RemoteSpec)
//! hook is a plain function pointer this crate fills in. [`backend`]
//! builds a ready-to-run `Backend::Remote`; everything else about the
//! run (seeding from `--load`/`--checkpoint` files, streaming into a
//! [`CheckpointWriter`](sdiq_core::CheckpointWriter), `--save`) is the
//! engine's existing machinery, which is how the remote path inherits
//! the hard guarantee: **the assembled suite is byte-for-byte identical
//! to a serial run**, worker deaths included.

pub mod client;
pub mod frame;
pub mod protocol;
pub mod scheduler;
pub mod server;

use sdiq_core::{Backend, MatrixSpec, RemoteSpec};

/// Default number of times one cell may be re-queued after worker
/// failures before the run aborts (a cell that kills three workers in a
/// row is a poison cell, not bad luck).
pub const DEFAULT_RETRY_BUDGET: usize = 3;

/// A ready-to-run remote backend over the TCP transport: dial `workers`,
/// describe the matrix to them as `spec`, tolerate up to `retry_budget`
/// re-queues per cell. Pass the result to
/// [`Matrix::run_on`](sdiq_core::Matrix::run_on).
pub fn backend(workers: Vec<String>, spec: MatrixSpec, retry_budget: usize) -> Backend {
    Backend::Remote(RemoteSpec {
        workers,
        spec,
        retry_budget,
        launch,
    })
}

/// The [`sdiq_core::RemoteLaunch`] implementation: the generic scheduler
/// over the TCP dialer.
fn launch(
    matrix: &sdiq_core::Matrix<'_>,
    spec: &RemoteSpec,
    seed: &std::collections::HashMap<String, sdiq_core::RunReport>,
    sink: Option<&dyn sdiq_core::CellSink>,
) -> Result<sdiq_core::Sweep, sdiq_core::BackendError> {
    scheduler::run(matrix, spec, seed, sink, client::dial)
}
