//! The message grammar of the remote cell-execution protocol.
//!
//! One coordinator connection to one worker daemon speaks, in order:
//!
//! ```text
//! worker → coordinator   Hello{capacity}            once, on accept
//! worker → coordinator   Register{capacity}         once, when the *worker* dialed
//! coordinator → worker   RunCells{fingerprint, spec, keys}     per batch
//! worker → coordinator   Heartbeat                  keep-alive, any time
//! worker → coordinator   CellDone{key, report}      per finished cell
//! worker → coordinator   Done{computed}             batch complete
//! worker → coordinator   Error{message}             instead of Done
//! (coordinator closes the connection when the work queue is empty)
//! ```
//!
//! Messages are JSON objects tagged by a `type` field, rendered and
//! parsed through `sdiq_core::persist`'s exact-round-trip JSON model —
//! the same codec save files and checkpoints use — so a report that
//! crosses the wire is bit-identical to one computed locally, which is
//! what makes the remote suite byte-for-byte equal to a serial `--save`.
//!
//! `Heartbeat` frames may appear anywhere in the worker's stream (the
//! daemon emits one as a batch ack and periodically during long cells);
//! receivers skip them. Unknown `type` tags are an error, not a skip:
//! silently dropping a frame a newer peer considered important is how
//! split-version fleets corrupt results.

use sdiq_core::persist::{
    matrix_spec_from_json, matrix_spec_to_json, parse, report_from_json, report_to_json, Json,
    PersistError,
};
use sdiq_core::{MatrixSpec, RunReport};

/// One protocol message (see the module docs for the grammar).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker → coordinator greeting: how many cells the daemon runs in
    /// parallel (its `--jobs`). The scheduler sizes this worker's batches
    /// to exactly this number.
    Hello {
        /// Advertised parallel capacity (≥ 1).
        capacity: usize,
    },
    /// Worker → coordinator greeting with the dial direction reversed:
    /// a NAT'd daemon (`repro serve --register`) dialed the coordinator's
    /// rendezvous listener and is announcing itself. After this frame the
    /// connection is indistinguishable from a dialed-and-`Hello`ed one.
    Register {
        /// Advertised parallel capacity (≥ 1), exactly as in [`Message::Hello`].
        capacity: usize,
    },
    /// Coordinator → worker: compute these cells of the matrix `spec`
    /// describes. `fingerprint` is [`sdiq_core::matrix_fingerprint`] over
    /// the coordinator's whole cell-key space; the worker recomputes it
    /// from `spec` and refuses on mismatch (version skew).
    RunCells {
        /// Fingerprint of the full cell-key space.
        fingerprint: u64,
        /// Portable description of the matrix.
        spec: MatrixSpec,
        /// The cell keys to compute (a subset of the matrix's key space).
        keys: Vec<String>,
    },
    /// Worker → coordinator: one finished cell, streamed the moment it
    /// exists (the coordinator feeds it straight into its `CellSink`).
    CellDone {
        /// The cell's cache key.
        key: String,
        /// The computed report (boxed: it dwarfs every other variant).
        report: Box<RunReport>,
    },
    /// Keep-alive; receivers skip it.
    Heartbeat,
    /// Worker → coordinator: the current batch is fully delivered.
    Done {
        /// Number of cells the worker computed for this batch.
        computed: usize,
    },
    /// Worker → coordinator: the batch failed (bad spec, fingerprint
    /// mismatch, foreign keys). The coordinator abandons this worker.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl Message {
    /// Serialises this message into the shared JSON model.
    pub fn to_json(&self) -> Json {
        let tagged = |tag: &str, mut fields: Vec<(String, Json)>| {
            fields.insert(0, ("type".to_string(), Json::Str(tag.to_string())));
            Json::Obj(fields)
        };
        match self {
            Message::Hello { capacity } => tagged(
                "hello",
                vec![("capacity".to_string(), Json::of_usize(*capacity))],
            ),
            Message::Register { capacity } => tagged(
                "register",
                vec![("capacity".to_string(), Json::of_usize(*capacity))],
            ),
            Message::RunCells {
                fingerprint,
                spec,
                keys,
            } => tagged(
                "run_cells",
                vec![
                    ("fingerprint".to_string(), Json::of_u64(*fingerprint)),
                    ("spec".to_string(), matrix_spec_to_json(spec)),
                    (
                        "keys".to_string(),
                        Json::Arr(keys.iter().cloned().map(Json::Str).collect()),
                    ),
                ],
            ),
            Message::CellDone { key, report } => tagged(
                "cell_done",
                vec![
                    ("key".to_string(), Json::Str(key.clone())),
                    ("report".to_string(), report_to_json(report)),
                ],
            ),
            Message::Heartbeat => tagged("heartbeat", Vec::new()),
            Message::Done { computed } => tagged(
                "done",
                vec![("computed".to_string(), Json::of_usize(*computed))],
            ),
            Message::Error { message } => tagged(
                "error",
                vec![("message".to_string(), Json::Str(message.clone()))],
            ),
        }
    }

    /// Parses a message out of the shared JSON model.
    pub fn from_json(json: &Json) -> Result<Message, PersistError> {
        let tag = json.get("type")?.str()?;
        match tag {
            "hello" => Ok(Message::Hello {
                capacity: json.get("capacity")?.usize()?,
            }),
            "register" => Ok(Message::Register {
                capacity: json.get("capacity")?.usize()?,
            }),
            "run_cells" => Ok(Message::RunCells {
                fingerprint: json.get("fingerprint")?.u64()?,
                spec: matrix_spec_from_json(json.get("spec")?)?,
                keys: json
                    .get("keys")?
                    .arr()?
                    .iter()
                    .map(|key| key.str().map(str::to_string))
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "cell_done" => Ok(Message::CellDone {
                key: json.get("key")?.str()?.to_string(),
                report: Box::new(report_from_json(json.get("report")?)?),
            }),
            "heartbeat" => Ok(Message::Heartbeat),
            "done" => Ok(Message::Done {
                computed: json.get("computed")?.usize()?,
            }),
            "error" => Ok(Message::Error {
                message: json.get("message")?.str()?.to_string(),
            }),
            other => Err(PersistError::new(format!(
                "unknown protocol message type `{other}`"
            ))),
        }
    }

    /// Renders this message as one compact JSON document (a frame
    /// payload).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.to_json().render(&mut out);
        out
    }

    /// Parses one frame payload.
    pub fn parse(text: &str) -> Result<Message, PersistError> {
        Message::from_json(&parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_core::{Experiment, Technique};
    use sdiq_workloads::Benchmark;

    #[test]
    fn every_message_round_trips_through_its_frame_payload() {
        let experiment = Experiment {
            scale: 0.05,
            ..Experiment::paper()
        };
        let report = experiment.run(Benchmark::Gzip, Technique::Noop);
        let spec = MatrixSpec {
            scale: 0.05,
            sweeps: vec![
                ("iq".to_string(), vec![48.0, 32.0]),
                ("scale".to_string(), vec![0.5]),
            ],
            benchmarks: vec!["gzip".to_string(), "mcf".to_string()],
            techniques: vec!["baseline".to_string(), "noop".to_string()],
        };
        let messages = [
            Message::Hello { capacity: 4 },
            Message::Register { capacity: 16 },
            Message::RunCells {
                fingerprint: 0xdead_beef_0123_4567,
                spec,
                keys: vec!["a|b|c|00".to_string(), "d|e|f|01".to_string()],
            },
            Message::CellDone {
                key: "gzip|noop|base|0123456789abcdef".to_string(),
                report: Box::new(report),
            },
            Message::Heartbeat,
            Message::Done { computed: 6 },
            Message::Error {
                message: "matrix fingerprint mismatch".to_string(),
            },
        ];
        for message in messages {
            let text = message.render();
            assert_eq!(
                Message::parse(&text).unwrap(),
                message,
                "{text} must round-trip"
            );
        }
        assert!(
            Message::parse("{\"type\":\"warp\"}").is_err(),
            "unknown tag"
        );
        assert!(Message::parse("{\"capacity\":1}").is_err(), "untagged");
    }
}
