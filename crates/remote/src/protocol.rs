//! The message grammar of the remote cell-execution protocol.
//!
//! One coordinator connection to one worker daemon speaks, in order:
//!
//! ```text
//! (with --auth-key, first — always JSON-framed:)
//! acceptor → dialer      AuthChallenge{nonce}       prove you hold the key
//! dialer → acceptor      AuthResponse{nonce, mac}   my nonce + HMAC over both
//! acceptor → dialer      AuthOk{mac}                mutual proof, then the grammar below
//!
//! worker → coordinator   Hello{capacity, codecs}    once, on accept
//! worker → coordinator   Register{capacity, codecs} once, when the *worker* dialed
//! coordinator → worker   SetCodec{codec}            optional, switches both directions
//! coordinator → worker   RunCells{fingerprint, spec, keys}     per batch
//! worker → coordinator   Heartbeat                  keep-alive, any time
//! worker → coordinator   CellDone{key, report}      per finished cell
//! worker → coordinator   Done{computed}             batch complete
//! worker → coordinator   Error{message}             instead of Done
//! (coordinator closes the connection when the work queue is empty)
//! ```
//!
//! Messages are JSON objects tagged by a `type` field, rendered and
//! parsed through `sdiq_core::persist`'s exact-round-trip JSON model —
//! the same codec save files and checkpoints use — so a report that
//! crosses the wire is bit-identical to one computed locally, which is
//! what makes the remote suite byte-for-byte equal to a serial `--save`.
//!
//! # Codec negotiation
//!
//! The greeting's `codecs` field lists the *additional* frame codecs the
//! worker can speak beyond the implicit JSON (today: `"bin1"`, the
//! compact binary layout in [`crate::binary`]). A coordinator that wants
//! one answers with `SetCodec{codec}` as its first frame; every frame
//! after it, in both directions, uses that codec (TCP ordering makes an
//! ack unnecessary). A worker that advertised nothing — an older build,
//! or `serve --wire json` — never receives `SetCodec` and the connection
//! stays JSON end to end; old coordinators ignore the unknown `codecs`
//! field the same way. Receivers always auto-detect the codec of each
//! incoming frame (binary payloads start with a tag byte `< 0x20`, JSON
//! ones with `{`), so negotiation only ever governs what a side *sends*.
//!
//! `Heartbeat` frames may appear anywhere in the worker's stream (the
//! daemon emits one as a batch ack and periodically during long cells);
//! receivers skip them. Unknown `type` tags are an error, not a skip:
//! silently dropping a frame a newer peer considered important is how
//! split-version fleets corrupt results.

use sdiq_core::persist::{
    matrix_spec_from_json, matrix_spec_to_json, parse, report_from_json, report_to_json, Json,
    PersistError,
};
use sdiq_core::{MatrixSpec, RunReport};
use sdiq_obs::{MetricsDelta, TraceEvent};

/// Name of the binary frame codec a worker may advertise in its greeting
/// (`"bin1"` pins layout version 1 of [`crate::binary`]; a breaking
/// layout change becomes `"bin2"` and old peers simply never select it).
pub const CODEC_BIN1: &str = "bin1";

/// Capability token a worker appends to its greeting's `codecs` list when
/// it understands the observability extension: `RunCells` observe/trace
/// flags, [`Message::HeartbeatMetrics`] and [`Message::TraceEvents`].
/// Riding the `codecs` field keeps old peers safe for free — a coordinator
/// that predates it selects codecs with an equality scan and ignores
/// unknown entries, and a worker that never advertises it is never sent
/// any observability frame.
pub const CAP_OBS1: &str = "obs1";

/// [`MetricsDelta`] ↔ JSON: an object of the six cumulative counters.
fn metrics_delta_to_json(delta: &MetricsDelta) -> Json {
    Json::Obj(vec![
        ("cells_done".to_string(), Json::of_u64(delta.cells_done)),
        (
            "cells_in_flight".to_string(),
            Json::of_u64(delta.cells_in_flight),
        ),
        (
            "sim_instructions".to_string(),
            Json::of_u64(delta.sim_instructions),
        ),
        ("cache_hits".to_string(), Json::of_u64(delta.cache_hits)),
        ("cache_misses".to_string(), Json::of_u64(delta.cache_misses)),
        ("wall_nanos".to_string(), Json::of_u64(delta.wall_nanos)),
    ])
}

fn metrics_delta_from_json(json: &Json) -> Result<MetricsDelta, PersistError> {
    Ok(MetricsDelta {
        cells_done: json.get("cells_done")?.u64()?,
        cells_in_flight: json.get("cells_in_flight")?.u64()?,
        sim_instructions: json.get("sim_instructions")?.u64()?,
        cache_hits: json.get("cache_hits")?.u64()?,
        cache_misses: json.get("cache_misses")?.u64()?,
        wall_nanos: json.get("wall_nanos")?.u64()?,
    })
}

/// [`TraceEvent`] ↔ JSON. `dur_nanos` is omitted for instants and `args`
/// when empty; args travel as `[key, value]` pairs (not an object) so the
/// encoding round-trips regardless of key content or duplication.
fn trace_event_to_json(event: &TraceEvent) -> Json {
    let mut fields = vec![
        ("name".to_string(), Json::Str(event.name.clone())),
        ("cat".to_string(), Json::Str(event.cat.clone())),
        ("pid".to_string(), Json::of_u64(event.pid)),
        ("tid".to_string(), Json::of_u64(event.tid)),
        ("start_nanos".to_string(), Json::of_u64(event.start_nanos)),
    ];
    if let Some(dur) = event.dur_nanos {
        fields.push(("dur_nanos".to_string(), Json::of_u64(dur)));
    }
    if !event.args.is_empty() {
        fields.push((
            "args".to_string(),
            Json::Arr(
                event
                    .args
                    .iter()
                    .map(|(k, v)| Json::Arr(vec![Json::Str(k.clone()), Json::Str(v.clone())]))
                    .collect(),
            ),
        ));
    }
    Json::Obj(fields)
}

fn trace_event_from_json(json: &Json) -> Result<TraceEvent, PersistError> {
    let dur_nanos = match json.get("dur_nanos") {
        Err(_) => None,
        Ok(dur) => Some(dur.u64()?),
    };
    let args = match json.get("args") {
        Err(_) => Vec::new(),
        Ok(list) => list
            .arr()?
            .iter()
            .map(|pair| {
                let pair = pair.arr()?;
                match pair {
                    [k, v] => Ok((k.str()?.to_string(), v.str()?.to_string())),
                    other => Err(PersistError::new(format!(
                        "trace arg must be a [key, value] pair, got {} items",
                        other.len()
                    ))),
                }
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    Ok(TraceEvent {
        name: json.get("name")?.str()?.to_string(),
        cat: json.get("cat")?.str()?.to_string(),
        pid: json.get("pid")?.u64()?,
        tid: json.get("tid")?.u64()?,
        start_nanos: json.get("start_nanos")?.u64()?,
        dur_nanos,
        args,
    })
}

/// One protocol message (see the module docs for the grammar).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Worker → coordinator greeting: how many cells the daemon runs in
    /// parallel (its `--jobs`). The scheduler uses this to size the
    /// worker's pipelining window.
    Hello {
        /// Advertised parallel capacity (≥ 1).
        capacity: usize,
        /// Additional frame codecs this worker can speak (JSON is
        /// implicit; see the module docs on negotiation). Empty for old
        /// or `--wire json` workers — and omitted from the JSON encoding
        /// then, so such a greeting is byte-identical to a pre-codec one.
        codecs: Vec<String>,
    },
    /// Worker → coordinator greeting with the dial direction reversed:
    /// a NAT'd daemon (`repro serve --register`) dialed the coordinator's
    /// rendezvous listener and is announcing itself. After this frame the
    /// connection is indistinguishable from a dialed-and-`Hello`ed one.
    Register {
        /// Advertised parallel capacity (≥ 1), exactly as in [`Message::Hello`].
        capacity: usize,
        /// Additional frame codecs, exactly as in [`Message::Hello`].
        codecs: Vec<String>,
    },
    /// Coordinator → worker: switch every subsequent frame in both
    /// directions to `codec` (which the worker's greeting advertised).
    /// Sent at most once, before any [`Message::RunCells`].
    SetCodec {
        /// The selected codec name (e.g. [`CODEC_BIN1`]).
        codec: String,
    },
    /// Acceptor → dialer, first frame when authentication is on: prove
    /// knowledge of the shared key by HMAC'ing this nonce.
    AuthChallenge {
        /// Single-use challenge nonce (hex).
        nonce: String,
    },
    /// Dialer → acceptor: the proof, plus the dialer's own nonce so the
    /// acceptor can prove itself back (mutual authentication).
    AuthResponse {
        /// The dialer's challenge nonce for the acceptor (hex).
        nonce: String,
        /// `HMAC(key, "sdiq-dial:" + acceptor_nonce + ":" + dialer_nonce)` (hex).
        mac: String,
    },
    /// Acceptor → dialer: the acceptor's counter-proof; after it the
    /// ordinary grammar begins.
    AuthOk {
        /// `HMAC(key, "sdiq-accept:" + acceptor_nonce + ":" + dialer_nonce)` (hex).
        mac: String,
    },
    /// Coordinator → worker: compute these cells of the matrix `spec`
    /// describes. `fingerprint` is [`sdiq_core::matrix_fingerprint`] over
    /// the coordinator's whole cell-key space; the worker recomputes it
    /// from `spec` and refuses on mismatch (version skew).
    RunCells {
        /// Fingerprint of the full cell-key space.
        fingerprint: u64,
        /// Portable description of the matrix.
        spec: MatrixSpec,
        /// The cell keys to compute (a subset of the matrix's key space).
        keys: Vec<String>,
        /// Report metrics deltas on heartbeats ([`Message::HeartbeatMetrics`]).
        /// Only ever `true` toward a worker that advertised [`CAP_OBS1`];
        /// the JSON encoding omits the field when `false`, so a plain
        /// batch renders byte-identically to a pre-observability one.
        observe: bool,
        /// Record spans while computing and ship them back as
        /// [`Message::TraceEvents`] before `Done`. Same compatibility
        /// rules as `observe`.
        trace: bool,
    },
    /// Worker → coordinator: one finished cell, streamed the moment it
    /// exists (the coordinator feeds it straight into its `CellSink`).
    CellDone {
        /// The cell's cache key.
        key: String,
        /// The computed report (boxed: it dwarfs every other variant).
        report: Box<RunReport>,
    },
    /// Keep-alive; receivers skip it.
    Heartbeat,
    /// Keep-alive carrying the worker's cumulative metrics totals
    /// ([`MetricsDelta`] — cells done, in flight, instructions simulated,
    /// cache hits/misses, wall time). Sent instead of plain [`Message::Heartbeat`]
    /// by the periodic keep-alive thread when the batch asked for
    /// `observe`; receivers that track liveness treat it exactly like a
    /// heartbeat, and the coordinator additionally folds the totals into
    /// its per-worker fleet view. Never sent to a peer that did not
    /// advertise [`CAP_OBS1`].
    HeartbeatMetrics {
        /// Cumulative counters since the worker daemon started.
        metrics: MetricsDelta,
    },
    /// Worker → coordinator: the spans recorded while computing the
    /// current batch, shipped once, right before [`Message::Done`], when
    /// the batch asked for `trace`. The coordinator re-lanes the events'
    /// `pid` to the worker's fleet index and merges them into its own
    /// trace buffer for the Chrome-trace export.
    TraceEvents {
        /// The recorded events, in the worker's drain order.
        events: Vec<TraceEvent>,
    },
    /// Worker → coordinator: the current batch is fully delivered.
    Done {
        /// Number of cells the worker computed for this batch.
        computed: usize,
    },
    /// Worker → coordinator: the batch failed (bad spec, fingerprint
    /// mismatch, foreign keys). The coordinator abandons this worker.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl Message {
    /// Serialises this message into the shared JSON model.
    pub fn to_json(&self) -> Json {
        let tagged = |tag: &str, mut fields: Vec<(String, Json)>| {
            fields.insert(0, ("type".to_string(), Json::Str(tag.to_string())));
            Json::Obj(fields)
        };
        // `codecs` is omitted when empty so a codec-less greeting renders
        // byte-identically to one from a pre-negotiation build.
        let greeting = |capacity: &usize, codecs: &Vec<String>| {
            let mut fields = vec![("capacity".to_string(), Json::of_usize(*capacity))];
            if !codecs.is_empty() {
                fields.push((
                    "codecs".to_string(),
                    Json::Arr(codecs.iter().cloned().map(Json::Str).collect()),
                ));
            }
            fields
        };
        match self {
            Message::Hello { capacity, codecs } => tagged("hello", greeting(capacity, codecs)),
            Message::Register { capacity, codecs } => {
                tagged("register", greeting(capacity, codecs))
            }
            Message::SetCodec { codec } => tagged(
                "set_codec",
                vec![("codec".to_string(), Json::Str(codec.clone()))],
            ),
            Message::AuthChallenge { nonce } => tagged(
                "auth_challenge",
                vec![("nonce".to_string(), Json::Str(nonce.clone()))],
            ),
            Message::AuthResponse { nonce, mac } => tagged(
                "auth_response",
                vec![
                    ("nonce".to_string(), Json::Str(nonce.clone())),
                    ("mac".to_string(), Json::Str(mac.clone())),
                ],
            ),
            Message::AuthOk { mac } => {
                tagged("auth_ok", vec![("mac".to_string(), Json::Str(mac.clone()))])
            }
            Message::RunCells {
                fingerprint,
                spec,
                keys,
                observe,
                trace,
            } => {
                let mut fields = vec![
                    ("fingerprint".to_string(), Json::of_u64(*fingerprint)),
                    ("spec".to_string(), matrix_spec_to_json(spec)),
                    (
                        "keys".to_string(),
                        Json::Arr(keys.iter().cloned().map(Json::Str).collect()),
                    ),
                ];
                // Omitted when false: a plain batch renders byte-identically
                // to a pre-observability build's, and old workers never see
                // fields they would not understand anyway.
                if *observe {
                    fields.push(("observe".to_string(), Json::Bool(true)));
                }
                if *trace {
                    fields.push(("trace".to_string(), Json::Bool(true)));
                }
                tagged("run_cells", fields)
            }
            Message::CellDone { key, report } => tagged(
                "cell_done",
                vec![
                    ("key".to_string(), Json::Str(key.clone())),
                    ("report".to_string(), report_to_json(report)),
                ],
            ),
            Message::Heartbeat => tagged("heartbeat", Vec::new()),
            Message::HeartbeatMetrics { metrics } => tagged(
                "heartbeat_metrics",
                vec![("metrics".to_string(), metrics_delta_to_json(metrics))],
            ),
            Message::TraceEvents { events } => tagged(
                "trace_events",
                vec![(
                    "events".to_string(),
                    Json::Arr(events.iter().map(trace_event_to_json).collect()),
                )],
            ),
            Message::Done { computed } => tagged(
                "done",
                vec![("computed".to_string(), Json::of_usize(*computed))],
            ),
            Message::Error { message } => tagged(
                "error",
                vec![("message".to_string(), Json::Str(message.clone()))],
            ),
        }
    }

    /// Parses a message out of the shared JSON model.
    pub fn from_json(json: &Json) -> Result<Message, PersistError> {
        let tag = json.get("type")?.str()?;
        // Absent on greetings from pre-negotiation builds: default empty.
        let codecs = |json: &Json| -> Result<Vec<String>, PersistError> {
            match json.get("codecs") {
                Err(_) => Ok(Vec::new()),
                Ok(list) => list
                    .arr()?
                    .iter()
                    .map(|codec| codec.str().map(str::to_string))
                    .collect(),
            }
        };
        match tag {
            "hello" => Ok(Message::Hello {
                capacity: json.get("capacity")?.usize()?,
                codecs: codecs(json)?,
            }),
            "register" => Ok(Message::Register {
                capacity: json.get("capacity")?.usize()?,
                codecs: codecs(json)?,
            }),
            "set_codec" => Ok(Message::SetCodec {
                codec: json.get("codec")?.str()?.to_string(),
            }),
            "auth_challenge" => Ok(Message::AuthChallenge {
                nonce: json.get("nonce")?.str()?.to_string(),
            }),
            "auth_response" => Ok(Message::AuthResponse {
                nonce: json.get("nonce")?.str()?.to_string(),
                mac: json.get("mac")?.str()?.to_string(),
            }),
            "auth_ok" => Ok(Message::AuthOk {
                mac: json.get("mac")?.str()?.to_string(),
            }),
            "run_cells" => {
                // Absent on batches from pre-observability coordinators:
                // default off.
                let flag = |key: &str| -> Result<bool, PersistError> {
                    match json.get(key) {
                        Err(_) => Ok(false),
                        Ok(Json::Bool(b)) => Ok(*b),
                        Ok(other) => Err(PersistError::new(format!(
                            "expected bool `{key}`, got {other:?}"
                        ))),
                    }
                };
                Ok(Message::RunCells {
                    fingerprint: json.get("fingerprint")?.u64()?,
                    spec: matrix_spec_from_json(json.get("spec")?)?,
                    keys: json
                        .get("keys")?
                        .arr()?
                        .iter()
                        .map(|key| key.str().map(str::to_string))
                        .collect::<Result<Vec<_>, _>>()?,
                    observe: flag("observe")?,
                    trace: flag("trace")?,
                })
            }
            "cell_done" => Ok(Message::CellDone {
                key: json.get("key")?.str()?.to_string(),
                report: Box::new(report_from_json(json.get("report")?)?),
            }),
            "heartbeat" => Ok(Message::Heartbeat),
            "heartbeat_metrics" => Ok(Message::HeartbeatMetrics {
                metrics: metrics_delta_from_json(json.get("metrics")?)?,
            }),
            "trace_events" => Ok(Message::TraceEvents {
                events: json
                    .get("events")?
                    .arr()?
                    .iter()
                    .map(trace_event_from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "done" => Ok(Message::Done {
                computed: json.get("computed")?.usize()?,
            }),
            "error" => Ok(Message::Error {
                message: json.get("message")?.str()?.to_string(),
            }),
            other => Err(PersistError::new(format!(
                "unknown protocol message type `{other}`"
            ))),
        }
    }

    /// Renders this message as one compact JSON document (a frame
    /// payload).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.to_json().render(&mut out);
        out
    }

    /// Parses one frame payload.
    pub fn parse(text: &str) -> Result<Message, PersistError> {
        Message::from_json(&parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_core::{Experiment, Technique};
    use sdiq_workloads::Benchmark;

    #[test]
    fn every_message_round_trips_through_its_frame_payload() {
        let experiment = Experiment {
            scale: 0.05,
            ..Experiment::paper()
        };
        let report = experiment.run(Benchmark::Gzip, Technique::Noop);
        let spec = MatrixSpec {
            scale: 0.05,
            sweeps: vec![
                ("iq".to_string(), vec![48.0, 32.0]),
                ("scale".to_string(), vec![0.5]),
            ],
            benchmarks: vec!["gzip".to_string(), "mcf".to_string()],
            techniques: vec!["baseline".to_string(), "noop".to_string()],
        };
        let messages = [
            Message::Hello {
                capacity: 4,
                codecs: vec![CODEC_BIN1.to_string()],
            },
            Message::Hello {
                capacity: 4,
                codecs: Vec::new(),
            },
            Message::Register {
                capacity: 16,
                codecs: vec![CODEC_BIN1.to_string()],
            },
            Message::SetCodec {
                codec: CODEC_BIN1.to_string(),
            },
            Message::AuthChallenge {
                nonce: "00ff".to_string(),
            },
            Message::AuthResponse {
                nonce: "a1b2".to_string(),
                mac: "deadbeef".to_string(),
            },
            Message::AuthOk {
                mac: "beefdead".to_string(),
            },
            Message::RunCells {
                fingerprint: 0xdead_beef_0123_4567,
                spec: spec.clone(),
                keys: vec!["a|b|c|00".to_string(), "d|e|f|01".to_string()],
                observe: false,
                trace: false,
            },
            Message::RunCells {
                fingerprint: 7,
                spec,
                keys: vec!["a|b|c|00".to_string()],
                observe: true,
                trace: true,
            },
            Message::HeartbeatMetrics {
                metrics: sdiq_obs::MetricsDelta {
                    cells_done: 12,
                    cells_in_flight: 2,
                    sim_instructions: 123_456_789,
                    cache_hits: 30,
                    cache_misses: 6,
                    wall_nanos: 9_876_543_210,
                },
            },
            Message::TraceEvents {
                events: vec![
                    sdiq_obs::TraceEvent {
                        name: "cell".to_string(),
                        cat: "cell".to_string(),
                        pid: 0,
                        tid: 3,
                        start_nanos: 1_000,
                        dur_nanos: Some(5_000),
                        args: vec![("key".to_string(), "gzip|noop|base".to_string())],
                    },
                    sdiq_obs::TraceEvent {
                        name: "mark".to_string(),
                        cat: "sched".to_string(),
                        pid: 2,
                        tid: 1,
                        start_nanos: 42,
                        dur_nanos: None,
                        args: Vec::new(),
                    },
                ],
            },
            Message::TraceEvents { events: Vec::new() },
            Message::CellDone {
                key: "gzip|noop|base|0123456789abcdef".to_string(),
                report: Box::new(report),
            },
            Message::Heartbeat,
            Message::Done { computed: 6 },
            Message::Error {
                message: "matrix fingerprint mismatch".to_string(),
            },
        ];
        for message in messages {
            let text = message.render();
            assert_eq!(
                Message::parse(&text).unwrap(),
                message,
                "{text} must round-trip"
            );
        }
        assert!(
            Message::parse("{\"type\":\"warp\"}").is_err(),
            "unknown tag"
        );
        assert!(Message::parse("{\"capacity\":1}").is_err(), "untagged");
    }

    #[test]
    fn plain_batches_render_like_pre_observability_builds() {
        let message = Message::RunCells {
            fingerprint: 1,
            spec: MatrixSpec {
                scale: 1.0,
                sweeps: Vec::new(),
                benchmarks: vec!["gzip".to_string()],
                techniques: vec!["baseline".to_string()],
            },
            keys: vec!["k".to_string()],
            observe: false,
            trace: false,
        };
        let text = message.render();
        assert!(
            !text.contains("observe") && !text.contains("trace"),
            "flags off must leave the frame byte-identical to an old build's: {text}"
        );
        // And a frame from an old coordinator (no flag fields) parses
        // with the flags defaulted off.
        assert_eq!(Message::parse(&text).unwrap(), message);
    }

    #[test]
    fn codecless_greetings_render_like_pre_negotiation_builds() {
        // A worker with nothing to advertise must emit the exact bytes a
        // pre-negotiation build did: no `codecs` field at all.
        let hello = Message::Hello {
            capacity: 4,
            codecs: Vec::new(),
        };
        assert_eq!(hello.render(), r#"{"type":"hello","capacity":4}"#);
        // And the advertisement parses from explicit JSON (what an old
        // coordinator receives from a new worker — it reads `capacity`
        // and ignores the rest).
        let parsed = Message::parse(r#"{"type":"register","capacity":2,"codecs":["bin1"]}"#);
        assert_eq!(
            parsed.unwrap(),
            Message::Register {
                capacity: 2,
                codecs: vec![CODEC_BIN1.to_string()],
            }
        );
    }
}
