//! The fault-tolerant coordinator scheduler.
//!
//! One driver thread per worker pulls batches of cell keys from a
//! shared queue — batch size = that worker's advertised capacity,
//! so a 16-way daemon claims sixteen cells while a laptop claims one,
//! which is the capacity-weighted partition of the key space (and,
//! unlike a static split, it keeps every worker busy until the queue is
//! empty no matter how wrong the capacities are about real speed).
//! A worker is either dialed by its driver ([`WorkerSource::Dial`]) or
//! arrives pre-connected from the registration rendezvous
//! ([`WorkerSource::Ready`], a daemon that dialed *us*).
//!
//! Fault model: a worker may die at any point — refuse the dial, drop
//! mid-batch, go **silent past the heartbeat deadline** (the link
//! surfaces that as a timed-out read; see `client`), claim `Done` while
//! cells are still owed. In every case the cells that worker still owed
//! go back on the queue for the survivors, each re-queue charging that
//! cell's retry budget; a cell that exhausts the budget aborts the run
//! (it is killing workers, not unlucky), and a queue that still holds
//! cells when every driver has exited surfaces as a drained-pool
//! [`BackendError`] naming the worker failures.
//!
//! An idle driver does not exit just because the queue is momentarily
//! empty: while any *other* driver still has cells in flight, those
//! cells may yet be re-queued by a death. With speculation enabled
//! (the default), the idle driver does better than park: it
//! **speculatively re-issues** straggler cells — in-flight cells that
//! have no backup copy yet — to its own worker, MapReduce-style. The
//! first result to land wins; the loser's duplicate is discarded after
//! checking it is bit-identical (cell results are deterministic, so a
//! *divergent* duplicate means something is deeply wrong and aborts the
//! run). Only when there is nothing to speculate on does the driver
//! park on a condvar, waking when work reappears (or everything
//! resolves).
//!
//! The scheduler is deliberately transport-free: drivers speak to a
//! [`WorkerLink`], and the [`Dialer`] that produces links is a
//! parameter. [`crate::client::dial`] is the TCP implementation; tests
//! inject in-memory links to pin the failover behaviour without sockets.
//!
//! Determinism: completed reports are keyed by cell key and the final
//! sweep is assembled by the engine's own seeded run
//! ([`Matrix::run_with`]), exactly like the subprocess backend — so
//! *which* worker computed a cell (speculative twin or original), and
//! in what order, cannot influence a single byte of the result.

use crate::lock_or_recover;
use sdiq_core::{
    ArtifactCache, BackendError, CellSink, Matrix, RemoteSpec, ResultStore, RunReport, Stored,
    Sweep,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::SystemTime;

/// One scheduler liveness verdict, recorded as it happens: a worker
/// presumed hung past the heartbeat deadline, cells re-queued after a
/// death, a speculative re-issue, a speculation race resolving. The
/// coordinator prints the collected events as a summary at the end of
/// the run (the moment-of-occurrence `eprintln!`s stay — scripts grep
/// them — but they scroll away; the summary is the record).
#[derive(Debug, Clone)]
pub struct LivenessEvent {
    /// Wall-clock time of the verdict (spans machines, unlike the
    /// monotonic trace clock).
    pub wall: SystemTime,
    /// The worker address the verdict is about.
    pub worker: String,
    /// Verdict kind: `presumed-hung`, `re-queue`, `speculate`,
    /// `speculation-race`, `dial-failed`.
    pub kind: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

/// `wall` as `unix-seconds.millis` for the summary lines.
fn wall_stamp(wall: SystemTime) -> String {
    match wall.duration_since(std::time::UNIX_EPOCH) {
        Ok(since) => format!("{}.{:03}", since.as_secs(), since.subsec_millis()),
        Err(_) => "0.000".to_string(),
    }
}

/// A connected worker, as one driver thread sees it.
pub trait WorkerLink: Send {
    /// The capacity the worker advertised in its `Hello`/`Register`.
    fn capacity(&self) -> usize;

    /// Submits a batch of cell keys.
    fn submit(&mut self, keys: &[String]) -> io::Result<()>;

    /// Blocks for the next scheduling event (heartbeats are skipped
    /// inside the link — each one resets the read deadline, which is how
    /// a slow-but-alive worker stays alive). A worker silent past the
    /// heartbeat deadline surfaces as an [`io::ErrorKind::TimedOut`]
    /// error, which the scheduler treats exactly like a death.
    fn recv(&mut self) -> io::Result<WorkerEvent>;
}

/// What a worker's stream yields between `submit` calls.
#[derive(Debug)]
pub enum WorkerEvent {
    /// One finished cell (boxed: the report dwarfs the other variant).
    Cell(String, Box<RunReport>),
    /// The submitted batch is fully delivered.
    Done,
}

/// Produces a connected [`WorkerLink`] for one worker address; the spec
/// carries what the link needs (the `RunCells` matrix description, the
/// connect timeout, the heartbeat deadline).
pub type Dialer = fn(&str, &RemoteSpec, u64) -> io::Result<Box<dyn WorkerLink>>;

/// One worker as handed to a driver thread.
pub enum WorkerSource {
    /// An address the driver dials through the scheduler's [`Dialer`].
    Dial(String),
    /// A link already connected and greeted — a worker that registered
    /// itself at the rendezvous listener (`repro serve --register`).
    Ready {
        /// The peer address, for failure messages.
        addr: String,
        /// The connected link.
        link: Box<dyn WorkerLink>,
    },
}

/// The work ledger: pending keys plus, per cell key not yet completed,
/// the number of copies currently claimed by drivers (1 normally, 2 when
/// an idle driver speculated a backup) — guarded together so
/// [`State::claim`] can park on one condvar until either changes.
struct WorkState {
    /// Cell keys waiting for a worker.
    queue: VecDeque<String>,
    /// Copies in flight per not-yet-completed cell key. A key leaves
    /// this map the moment its first result is recorded; stale twin
    /// copies finish (or die) without the ledger caring.
    in_flight: HashMap<String, usize>,
    /// Mirror of the fatal flag, kept under this lock so parked
    /// claimers observe it without a second mutex.
    fatal: bool,
}

/// What [`State::record`] found when a result landed.
enum Recorded {
    /// First result for this key — it is the suite's result.
    New,
    /// A speculative twin (or a worker-side duplicate) lost the race;
    /// the report is bit-identical to the recorded one, so it is noise.
    DuplicateIdentical,
    /// A duplicate that *differs* from the recorded report: cell
    /// determinism is broken and no answer can be trusted.
    DuplicateDivergent,
}

/// Shared scheduler state. Lock discipline where locks nest:
/// `retries` → `work` → (`completed` | `failures` | `fatal`), and the
/// condvar is always signalled while holding `work` so a claimer cannot
/// miss a wakeup between its check and its wait.
struct State {
    /// Pending/in-flight ledger (see [`WorkState`]).
    work: Mutex<WorkState>,
    /// Wakes parked claimers when the ledger changes.
    work_changed: Condvar,
    /// Whether idle drivers may double-issue straggler cells.
    speculate: bool,
    /// Per-cell re-queue counts.
    retries: Mutex<HashMap<String, usize>>,
    /// Completed cells, deduplicated by content fingerprint: a losing
    /// speculation twin's byte-identical report costs an O(1) fingerprint
    /// compare and zero extra storage (see [`ResultStore`]).
    completed: Mutex<ResultStore>,
    /// First unrecoverable failure message (the flag lives in
    /// [`WorkState::fatal`]).
    fatal: Mutex<Option<String>>,
    /// Human-readable record of every worker failure (for the
    /// drained-pool error).
    failures: Mutex<Vec<String>>,
    /// Liveness verdicts in occurrence order (see [`LivenessEvent`]).
    liveness: Mutex<Vec<LivenessEvent>>,
}

impl State {
    fn new(pending: Vec<String>, speculate: bool) -> State {
        State {
            work: Mutex::new(WorkState {
                queue: pending.into(),
                in_flight: HashMap::new(),
                fatal: false,
            }),
            work_changed: Condvar::new(),
            speculate,
            retries: Mutex::new(HashMap::new()),
            completed: Mutex::new(ResultStore::new()),
            fatal: Mutex::new(None),
            failures: Mutex::new(Vec::new()),
            liveness: Mutex::new(Vec::new()),
        }
    }

    /// Records one liveness verdict, mirrored into the trace (an instant
    /// event on the coordinator's lane — a no-op unless tracing is on).
    fn note(&self, worker: &str, kind: &'static str, detail: String) {
        sdiq_obs::instant(kind, "sched", &[("worker", worker), ("detail", &detail)]);
        lock_or_recover(&self.liveness).push(LivenessEvent {
            wall: SystemTime::now(),
            worker: worker.to_string(),
            kind,
            detail,
        });
    }

    fn fatal_is_set(&self) -> bool {
        lock_or_recover(&self.work).fatal
    }

    fn set_fatal(&self, message: String) {
        lock_or_recover(&self.fatal).get_or_insert(message);
        let mut work = lock_or_recover(&self.work);
        work.fatal = true;
        // Parked claimers must wake to observe the abort; signalling
        // under the work lock closes the check-then-wait window.
        self.work_changed.notify_all();
    }

    /// Claims up to `capacity` cells. While the queue is empty but other
    /// drivers still have cells in flight, first tries to claim
    /// **speculative** copies of stragglers (in-flight keys with no
    /// backup yet — the second element is `true` for such a batch), and
    /// only **parks** when there is nothing to speculate on either (a
    /// death could hand cells back at any moment). Returns an empty
    /// batch only when the run is over for this driver: nothing pending,
    /// nothing in flight anywhere — or the run turned fatal.
    fn claim(&self, capacity: usize) -> (Vec<String>, bool) {
        let mut work = lock_or_recover(&self.work);
        loop {
            if work.fatal {
                return (Vec::new(), false);
            }
            if !work.queue.is_empty() {
                let take = capacity.max(1).min(work.queue.len());
                let batch: Vec<String> = work.queue.drain(..take).collect();
                for key in &batch {
                    *work.in_flight.entry(key.clone()).or_insert(0) += 1;
                }
                return (batch, false);
            }
            if work.in_flight.is_empty() {
                return (Vec::new(), false);
            }
            if self.speculate {
                let stragglers: Vec<String> = work
                    .in_flight
                    .iter()
                    .filter(|(_, &copies)| copies == 1)
                    .map(|(key, _)| key.clone())
                    .take(capacity.max(1))
                    .collect();
                if !stragglers.is_empty() {
                    for key in &stragglers {
                        match work.in_flight.get_mut(key) {
                            Some(copies) => *copies += 1,
                            None => unreachable!("straggler `{key}` was just listed in flight"),
                        }
                    }
                    return (stragglers, true);
                }
            }
            work = self
                .work_changed
                .wait(work)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking claim for the pipelining top-up: takes up to
    /// `capacity` queued cells if any are waiting — never speculates,
    /// never parks. Keeping the blocking/speculating path exclusively in
    /// [`State::claim`] (entered only with an empty pipeline) is what
    /// preserves the pre-pipelining park/speculate semantics.
    fn try_claim(&self, capacity: usize) -> Vec<String> {
        let mut work = lock_or_recover(&self.work);
        if work.fatal || work.queue.is_empty() {
            return Vec::new();
        }
        let take = capacity.max(1).min(work.queue.len());
        let batch: Vec<String> = work.queue.drain(..take).collect();
        for key in &batch {
            *work.in_flight.entry(key.clone()).or_insert(0) += 1;
        }
        batch
    }

    fn is_completed(&self, key: &str) -> bool {
        lock_or_recover(&self.completed).contains(key)
    }

    /// Records one result: first result wins; a losing twin is checked
    /// for bit-identity against the winner (determinism is the whole
    /// basis for speculation being benign). The check is the store's
    /// O(1) fingerprint compare, not a field-by-field report diff.
    fn record(&self, key: &str, report: &RunReport) -> Recorded {
        let mut completed = lock_or_recover(&self.completed);
        match completed.insert(key, report) {
            Stored::New => Recorded::New,
            Stored::DuplicateIdentical => Recorded::DuplicateIdentical,
            Stored::DuplicateDivergent => Recorded::DuplicateDivergent,
        }
    }

    /// Releases a completed key's in-flight entry (all copies at once —
    /// a stale twin still computing it no longer owes anything), waking
    /// parked claimers if the run just resolved.
    fn release(&self, key: &str) {
        let mut work = lock_or_recover(&self.work);
        work.in_flight.remove(key);
        if work.in_flight.is_empty() {
            // The last in-flight cell resolved: parked claimers can now
            // conclude the run is over (the queue must be empty too, or
            // they would not be parked).
            self.work_changed.notify_all();
        }
    }

    /// Returns a dead worker's owed cells to the queue (waking parked
    /// survivors), charging each actually-re-queued cell's retry budget;
    /// a cell over budget turns the failure fatal. Cells a speculative
    /// twin already completed (or still holds a live copy of) are
    /// released without a charge — the death cost nothing.
    fn requeue(&self, addr: &str, owed: Vec<String>, retry_budget: usize, why: &str) {
        lock_or_recover(&self.failures).push(format!("worker {addr}: {why}"));
        let mut retries = lock_or_recover(&self.retries);
        let mut work = lock_or_recover(&self.work);
        let mut requeued = 0usize;
        let mut covered = 0usize;
        for key in owed {
            if lock_or_recover(&self.completed).contains(&key) {
                // A twin's result already landed; the ledger entry was
                // released then. Nothing is owed.
                covered += 1;
                continue;
            }
            match work.in_flight.get_mut(&key) {
                Some(copies) if *copies > 1 => {
                    // A live backup copy is still computing this cell on
                    // another worker; no need to re-queue (yet).
                    *copies -= 1;
                    covered += 1;
                    continue;
                }
                entry => {
                    debug_assert!(entry.is_some(), "owed key `{key}` must be in flight");
                    work.in_flight.remove(&key);
                }
            }
            let count = retries.entry(key.clone()).or_insert(0);
            *count += 1;
            if *count > retry_budget {
                let count = *count;
                drop(work);
                drop(retries);
                self.set_fatal(format!(
                    "cell `{key}` was re-queued {count} times (retry budget \
                     {retry_budget}) — aborting instead of killing more workers"
                ));
                return;
            }
            work.queue.push_back(key);
            requeued += 1;
        }
        eprintln!(
            "remote: worker {addr} failed ({why}); re-queueing {requeued} in-flight cell(s)\
             {}",
            if covered > 0 {
                format!(", {covered} already covered elsewhere")
            } else {
                String::new()
            }
        );
        sdiq_obs::metrics().requeues.add(requeued as u64);
        self.note(
            addr,
            "re-queue",
            format!("{requeued} cell(s) re-queued, {covered} covered elsewhere: {why}"),
        );
        self.work_changed.notify_all();
    }
}

/// Runs `matrix`'s missing cells over the remote worker pool —
/// `spec.workers` addresses dialed through `dialer` — and assembles the
/// full sweep (see the module docs for the scheduling and fault model).
/// Production callers go through [`crate::backend`], which plugs in TCP
/// (and, when registration is configured, pre-connected links via
/// [`run_with_sources`]).
pub fn run(
    matrix: &Matrix<'_>,
    spec: &RemoteSpec,
    seed: &HashMap<String, RunReport>,
    sink: Option<&dyn CellSink>,
    dialer: Dialer,
) -> Result<Sweep, BackendError> {
    let sources = spec
        .workers
        .iter()
        .cloned()
        .map(WorkerSource::Dial)
        .collect();
    run_with_sources(matrix, spec, seed, sink, dialer, sources)
}

/// [`run`] over an explicit worker pool: dialed addresses, pre-connected
/// registered links, or a mix of both.
pub fn run_with_sources(
    matrix: &Matrix<'_>,
    spec: &RemoteSpec,
    seed: &HashMap<String, RunReport>,
    sink: Option<&dyn CellSink>,
    dialer: Dialer,
    sources: Vec<WorkerSource>,
) -> Result<Sweep, BackendError> {
    if sources.is_empty() {
        return Err(BackendError::new(
            "remote backend needs at least one worker (a --workers address or a registered daemon)",
        ));
    }
    let fingerprint = sdiq_core::matrix_fingerprint(&matrix.cell_keys());
    let expected: HashSet<String> = matrix.cell_keys().into_iter().collect();
    let pending = matrix.missing_cell_keys(seed);
    let state = State::new(pending, spec.speculate);

    std::thread::scope(|scope| {
        for source in sources {
            let state = &state;
            let expected = &expected;
            scope.spawn(move || {
                drive_worker(source, spec, fingerprint, state, expected, sink, dialer);
                // Deliver this driver's spans/instants before the scope
                // owner can observe the thread as finished — the TLS
                // teardown flush races the coordinator's drain.
                sdiq_obs::flush();
            });
        }
    });

    // The coordinator's closing summaries: liveness verdicts (printed
    // even on a failed run — that is when they matter most) and, when
    // the run observed the fleet, each worker's final reported totals.
    {
        let liveness = lock_or_recover(&state.liveness);
        if !liveness.is_empty() {
            eprintln!("remote: liveness summary ({} event(s)):", liveness.len());
            for event in liveness.iter() {
                eprintln!(
                    "remote:   [{}] {} worker {}: {}",
                    wall_stamp(event.wall),
                    event.kind,
                    event.worker,
                    event.detail
                );
            }
        }
    }
    if spec.observe.metrics {
        for (addr, delta) in crate::fleet::snapshot() {
            eprintln!(
                "remote: worker {addr}: {} cell(s) done, {} in flight, \
                 cache hit rate {:.1}%, {:.0} sim-inst/s",
                delta.cells_done,
                delta.cells_in_flight,
                delta.cache_hit_rate() * 100.0,
                delta.instructions_per_second()
            );
        }
    }

    if let Some(fatal) = state
        .fatal
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        return Err(BackendError::new(fatal));
    }
    let completed = state
        .completed
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    let mut merged = seed.clone();
    merged.extend(completed.into_cells());
    let missing = matrix.missing_cells(&merged);
    if missing > 0 {
        let failures = state
            .failures
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let detail = if failures.is_empty() {
            "no worker reported an error".to_string()
        } else {
            failures.join("; ")
        };
        return Err(BackendError::new(format!(
            "remote worker pool drained with {missing} cell(s) unfinished — {detail}"
        )));
    }
    // Assembly only: every cell is seeded, nothing is recomputed, and the
    // sweep is bit-identical to a serial run.
    Ok(matrix.run_with(&ArtifactCache::new(), &merged))
}

/// One worker's driver loop: dial (unless pre-connected), then
/// claim/submit/receive until the queue is empty, the worker dies or
/// goes silent past the heartbeat deadline, or the run turns fatal.
///
/// Batches are **pipelined**: instead of draining one batch to `Done`
/// before claiming the next (one idle round-trip per batch, per worker),
/// the driver keeps up to a *window* of cells outstanding — default
/// twice the worker's advertised capacity — topping the queue up with
/// non-blocking claims as results stream back. The daemon processes
/// queued `RunCells` frames back-to-back from its socket buffer, so with
/// a full window it never idles between batches. The *blocking* claim
/// (the one that parks, and the only one that speculates) still happens
/// exactly when this worker has nothing outstanding — which is what
/// keeps the PR 5 park/speculate/termination semantics intact.
fn drive_worker(
    source: WorkerSource,
    spec: &RemoteSpec,
    fingerprint: u64,
    state: &State,
    expected: &HashSet<String>,
    sink: Option<&dyn CellSink>,
    dialer: Dialer,
) {
    let retry_budget = spec.retry_budget;
    let (addr, mut link) = match source {
        WorkerSource::Ready { addr, link } => (addr, link),
        WorkerSource::Dial(addr) => match dialer(&addr, spec, fingerprint) {
            Ok(link) => (addr, link),
            Err(error) => {
                // Nothing was claimed yet, so nothing re-queues; the worker
                // simply never joins the pool.
                lock_or_recover(&state.failures)
                    .push(format!("worker {addr}: dial failed: {error}"));
                eprintln!("remote: worker {addr}: dial failed: {error}");
                state.note(&addr, "dial-failed", error.to_string());
                return;
            }
        },
    };
    let capacity = link.capacity().max(1);
    let window = match spec.pipeline_window {
        0 => capacity.saturating_mul(2),
        configured => configured.max(capacity),
    };
    // Batches in submit order; each holds its not-yet-delivered keys.
    // `Done` frames ack batches in the same order (the daemon serves
    // `RunCells` sequentially), so the front batch must be empty when
    // its `Done` arrives.
    let mut batches: VecDeque<HashSet<String>> = VecDeque::new();
    let mut outstanding = 0usize;
    loop {
        if state.fatal_is_set() {
            return;
        }
        if outstanding == 0 {
            // Empty pipeline: the blocking claim — park, or speculate on
            // stragglers, exactly as before pipelining existed.
            let (batch, speculative) = state.claim(capacity);
            if batch.is_empty() {
                // Nothing pending and nothing in flight anywhere (or the
                // run turned fatal): release the worker (drop closes the
                // link).
                return;
            }
            if speculative {
                eprintln!(
                    "remote: speculatively re-issuing {} straggler cell(s) to idle worker {addr}",
                    batch.len()
                );
                sdiq_obs::metrics()
                    .speculation_issued
                    .add(batch.len() as u64);
                state.note(
                    &addr,
                    "speculate",
                    format!("re-issued {} straggler cell(s)", batch.len()),
                );
            }
            let submitted = {
                let _span = sdiq_obs::span("issue-batch", "sched").map(|s| {
                    s.arg("worker", &addr)
                        .arg("cells", &batch.len().to_string())
                });
                link.submit(&batch)
            };
            if let Err(error) = submitted {
                state.requeue(
                    &addr,
                    batch,
                    retry_budget,
                    &format!("submit failed: {error}"),
                );
                return;
            }
            sdiq_obs::metrics().batches_issued.inc();
            outstanding += batch.len();
            batches.push_back(batch.into_iter().collect());
        }
        // Top the pipeline up to the window in capacity-sized chunks
        // (hysteresis: whole chunks only, so the per-frame spec encoding
        // amortises over `capacity` cells instead of re-paying per cell).
        while outstanding + capacity <= window {
            let extra = state.try_claim(capacity);
            if extra.is_empty() {
                break;
            }
            let submitted = {
                let _span = sdiq_obs::span("issue-batch", "sched").map(|s| {
                    s.arg("worker", &addr)
                        .arg("cells", &extra.len().to_string())
                });
                link.submit(&extra)
            };
            if let Err(error) = submitted {
                let mut owed: Vec<String> = batches.drain(..).flatten().collect();
                owed.extend(extra);
                state.requeue(
                    &addr,
                    owed,
                    retry_budget,
                    &format!("submit failed: {error}"),
                );
                return;
            }
            sdiq_obs::metrics().batches_issued.inc();
            outstanding += extra.len();
            batches.push_back(extra.into_iter().collect());
        }
        match link.recv() {
            Ok(WorkerEvent::Cell(key, report)) => {
                let owned = batches.iter_mut().any(|batch| batch.remove(&key));
                if owned {
                    outstanding -= 1;
                } else {
                    // A key this worker was not asked for. A duplicate of
                    // an already-completed cell is benign (verified
                    // bit-identical below) — a speculative twin, or a
                    // worker re-sending. A foreign key, or a duplicate of
                    // a cell *nobody* finished, is a protocol violation:
                    // accepting it could mask a real divergence — abort.
                    if !expected.contains(&key) {
                        state.set_fatal(format!(
                            "worker {addr} delivered a foreign cell key (`{key}`) — \
                             worker and coordinator configurations disagree"
                        ));
                        return;
                    }
                    if !state.is_completed(&key) {
                        state.set_fatal(format!(
                            "worker {addr} delivered a cell it was not asked for (`{key}`)"
                        ));
                        return;
                    }
                }
                match state.record(&key, &report) {
                    Recorded::New => {
                        if let Some(sink) = sink {
                            sink.cell_complete(&key, &report);
                        }
                        state.release(&key);
                    }
                    Recorded::DuplicateIdentical => {
                        // First result won the race; this copy is
                        // redundant by design. The key already left
                        // the in-flight ledger when the winner landed.
                        eprintln!(
                            "remote: duplicate result for `{key}` from {addr} \
                             (lost the speculation race); keeping the first"
                        );
                        sdiq_obs::metrics().speculation_duplicates.inc();
                        state.note(
                            &addr,
                            "speculation-race",
                            format!("duplicate result for `{key}` lost the race"),
                        );
                    }
                    Recorded::DuplicateDivergent => {
                        state.set_fatal(format!(
                            "worker {addr} delivered a result for `{key}` that differs \
                             from the one already recorded — cell determinism is broken, \
                             no answer can be trusted"
                        ));
                        return;
                    }
                }
            }
            Ok(WorkerEvent::Done) => match batches.front() {
                Some(front) if front.is_empty() => {
                    batches.pop_front();
                }
                Some(_) => {
                    let owed: Vec<String> = batches.drain(..).flatten().collect();
                    state.requeue(
                        &addr,
                        owed,
                        retry_budget,
                        "batch reported done with cells still owed",
                    );
                    return;
                }
                None => {
                    // More Dones than submitted batches: protocol noise we
                    // cannot account for — abandon the worker (it owes
                    // nothing, so nothing re-queues).
                    lock_or_recover(&state.failures)
                        .push(format!("worker {addr}: unsolicited Done frame"));
                    eprintln!("remote: worker {addr} sent an unsolicited Done; abandoning it");
                    return;
                }
            },
            Err(error) => {
                // A timed-out read is the heartbeat deadline tripping:
                // record the verdict before the re-queue that follows
                // from it.
                if error.kind() == io::ErrorKind::TimedOut {
                    sdiq_obs::metrics().deadline_verdicts.inc();
                    state.note(&addr, "presumed-hung", error.to_string());
                }
                let owed: Vec<String> = batches.drain(..).flatten().collect();
                state.requeue(
                    &addr,
                    owed,
                    retry_budget,
                    &format!("died mid-batch: {error}"),
                );
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdiq_core::{cell_key, MatrixSpec, RemoteSpec};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::OnceLock;
    use std::time::Duration;

    fn tiny_spec() -> MatrixSpec {
        MatrixSpec {
            scale: 0.05,
            sweeps: Vec::new(),
            benchmarks: vec!["gzip".to_string(), "mcf".to_string()],
            techniques: vec!["baseline".to_string(), "noop".to_string()],
        }
    }

    /// Precomputed reports for the tiny matrix, shared across tests so
    /// fake workers "compute" cells by lookup.
    fn oracle() -> &'static HashMap<String, RunReport> {
        static ORACLE: OnceLock<HashMap<String, RunReport>> = OnceLock::new();
        ORACLE.get_or_init(|| {
            let spec = tiny_spec();
            let experiment = spec.experiment();
            let matrix = spec.matrix(&experiment).unwrap();
            let sweep = matrix.run();
            matrix.collect_cells(&sweep).into_iter().collect()
        })
    }

    /// An in-memory worker: serves cells from the oracle, with optional
    /// scripted death or hang after a given number of delivered cells
    /// and an optional per-event delay (a deterministic straggler).
    struct FakeLink {
        capacity: usize,
        /// Cells queued by `submit`, not yet delivered.
        pending: VecDeque<String>,
        /// Delivered-cell countdown; reaching zero kills the link.
        die_after: Option<usize>,
        /// Delivered-cell countdown; reaching zero makes every further
        /// `recv` report a heartbeat-deadline timeout — the wire-visible
        /// signature of a hung worker under the liveness layer.
        hang_after: Option<usize>,
        /// `Done` frames owed after the last pending cell — one per
        /// `submit`, like the real daemon (pipelining queues several
        /// batches before the first `Done` drains).
        done_owed: usize,
        /// Delivers this key instead of the first requested one.
        alias_first_to: Option<String>,
        /// Re-delivers the first key of each batch a second time, after
        /// the batch (a worker-side duplicate).
        duplicate_first: bool,
        /// Sleep this long at every `recv` (straggler script).
        delay: Option<Duration>,
        delivered: &'static AtomicUsize,
        /// When set, records the high-water mark of queued-but-undelivered
        /// cells — the wire-visible signature of pipelining.
        high_water: Option<&'static AtomicUsize>,
    }

    impl WorkerLink for FakeLink {
        fn capacity(&self) -> usize {
            self.capacity
        }

        fn submit(&mut self, keys: &[String]) -> io::Result<()> {
            self.pending.extend(keys.iter().cloned());
            if self.duplicate_first {
                if let Some(first) = keys.first() {
                    self.pending.push_back(first.clone());
                }
            }
            self.done_owed += 1;
            if let Some(high_water) = self.high_water {
                high_water.fetch_max(self.pending.len(), Ordering::Relaxed);
            }
            Ok(())
        }

        fn recv(&mut self) -> io::Result<WorkerEvent> {
            if let Some(delay) = self.delay {
                std::thread::sleep(delay);
            }
            if let Some(0) = self.die_after {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "scripted death",
                ));
            }
            if let Some(0) = self.hang_after {
                // What `client::dial`'s link reports when the socket was
                // silent past the heartbeat deadline.
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "silent past the 200ms heartbeat deadline — presumed hung",
                ));
            }
            match self.pending.pop_front() {
                Some(key) => {
                    if let Some(budget) = &mut self.die_after {
                        *budget -= 1;
                    }
                    if let Some(budget) = &mut self.hang_after {
                        *budget -= 1;
                    }
                    let report = oracle()
                        .get(&key)
                        .expect("oracle covers the matrix")
                        .clone();
                    // An aliasing worker computes the right cell but labels
                    // it with a key the coordinator never asked it for.
                    let key = self.alias_first_to.take().unwrap_or(key);
                    self.delivered.fetch_add(1, Ordering::Relaxed);
                    Ok(WorkerEvent::Cell(key, Box::new(report)))
                }
                None if self.done_owed > 0 => {
                    self.done_owed -= 1;
                    Ok(WorkerEvent::Done)
                }
                None => Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "nothing submitted",
                )),
            }
        }
    }

    static DELIVERED: AtomicUsize = AtomicUsize::new(0);
    static HIGH_WATER: AtomicUsize = AtomicUsize::new(0);

    /// Addresses script the fake transport: `cap<N>` sets capacity,
    /// `die<N>` kills the link after N delivered cells, `hang<N>` turns
    /// every recv after N delivered cells into a heartbeat-deadline
    /// timeout, `slow<N>` sleeps N ms at every recv, `refuse` fails the
    /// dial, `alias` mis-delivers the first cell, `dup` re-delivers each
    /// batch's first cell twice.
    fn fake_dial(addr: &str, _: &RemoteSpec, _: u64) -> io::Result<Box<dyn WorkerLink>> {
        if addr.contains("refuse") {
            return Err(io::Error::new(io::ErrorKind::ConnectionRefused, "refused"));
        }
        let script = |token: &str| {
            addr.split(token).nth(1).and_then(|rest| {
                rest.split(|c: char| !c.is_ascii_digit())
                    .next()?
                    .parse::<usize>()
                    .ok()
            })
        };
        let capacity = script("cap").unwrap_or(1);
        let die_after = script("die");
        let hang_after = script("hang");
        let delay = script("slow").map(|ms| Duration::from_millis(ms as u64));
        let alias_first_to = addr.contains("alias").then(|| {
            let spec = tiny_spec();
            let experiment = spec.experiment();
            cell_key(
                &experiment,
                &sdiq_core::ConfigVariant::base(&experiment),
                sdiq_workloads::Benchmark::Gcc, // not in the tiny matrix
                sdiq_core::Technique::Baseline,
            )
        });
        Ok(Box::new(FakeLink {
            capacity,
            pending: VecDeque::new(),
            die_after,
            hang_after,
            done_owed: 0,
            alias_first_to,
            duplicate_first: addr.contains("dup"),
            delay,
            delivered: &DELIVERED,
            high_water: addr.contains("watermark").then_some(&HIGH_WATER),
        }))
    }

    fn fake_spec(workers: &[&str], retry_budget: usize, speculate: bool) -> RemoteSpec {
        RemoteSpec {
            workers: workers.iter().map(|w| w.to_string()).collect(),
            registration: None,
            spec: tiny_spec(),
            retry_budget,
            connect_timeout: Duration::from_secs(5),
            heartbeat_deadline: Duration::from_millis(200),
            speculate,
            binary_wire: true,
            pipeline_window: 0,
            auth_key: None,
            observe: sdiq_core::ObserveSpec::default(),
            launch: |_, _, _, _| unreachable!("tests call the scheduler directly"),
        }
    }

    fn run_fake_opts(
        workers: &[&str],
        retry_budget: usize,
        speculate: bool,
    ) -> Result<Sweep, BackendError> {
        let remote = fake_spec(workers, retry_budget, speculate);
        let experiment = remote.spec.experiment();
        let matrix = remote.spec.matrix(&experiment).unwrap();
        run(&matrix, &remote, &HashMap::new(), None, fake_dial)
    }

    fn run_fake(workers: &[&str], retry_budget: usize) -> Result<Sweep, BackendError> {
        run_fake_opts(workers, retry_budget, true)
    }

    fn serial() -> Sweep {
        let spec = tiny_spec();
        let experiment = spec.experiment();
        spec.matrix(&experiment).unwrap().run()
    }

    #[test]
    fn healthy_pool_produces_the_serial_sweep() {
        let sweep = run_fake(&["a-cap1", "b-cap2"], 0).unwrap();
        assert_eq!(sweep, serial(), "remote assembly is bit-identical");
    }

    #[test]
    fn batches_pipeline_up_to_the_window_and_stay_bit_identical() {
        // A capacity-1 worker with the default window (2× capacity) must
        // have a *second* cell queued behind the one it is computing —
        // the wire-visible signature of pipelining (the pre-pipelining
        // scheduler never queued more than one batch at a time, so the
        // high-water mark was exactly `capacity`).
        HIGH_WATER.store(0, Ordering::Relaxed);
        let sweep = run_fake(&["a-cap1-watermark"], 0).unwrap();
        assert_eq!(sweep, serial(), "pipelined run is bit-identical");
        assert!(
            HIGH_WATER.load(Ordering::Relaxed) >= 2,
            "pipelining keeps ≥2 cells outstanding on a capacity-1 worker \
             (high water was {})",
            HIGH_WATER.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn worker_death_requeues_its_cells_onto_survivors() {
        // Worker `a` dies after one delivered cell; worker `b` must pick
        // up everything it still owed, and the sweep is still exact.
        let sweep = run_fake(&["a-cap2-die1", "b-cap1"], 1).unwrap();
        assert_eq!(sweep, serial(), "failover keeps the result bit-identical");

        // A refused dial just shrinks the pool.
        let sweep = run_fake(&["refuse", "b-cap2"], 0).unwrap();
        assert_eq!(sweep, serial());
    }

    #[test]
    fn late_straggler_death_returns_cells_to_parked_survivors() {
        // Regression: the fast worker drains the queue and goes idle
        // while the slow worker still holds one in-flight cell; then the
        // slow worker dies. The idle survivor must be parked (or, with
        // speculation, already computing a backup) — not exited — so the
        // cell finds a worker and the run still completes bit-identically.
        // (Pre-fix, drivers exited on the first empty claim and this run
        // died with a drained pool.) Pinned with speculation off so the
        // park-and-requeue path itself stays covered.
        let sweep = run_fake_opts(&["a-cap1", "b-cap1-slow40-die0"], 1, false).unwrap();
        assert_eq!(sweep, serial(), "straggler failover is bit-identical");
    }

    #[test]
    fn a_hung_worker_trips_the_deadline_and_its_cells_requeue() {
        // The liveness bugfix at the scheduler level: worker `a` claims
        // two cells, delivers one, then goes silent — its link reports a
        // heartbeat-deadline timeout (exactly what the TCP link does).
        // Its remaining cell must re-queue onto `b` and the sweep must
        // still be exact. Pre-fix, `recv` blocked forever and this run
        // never terminated. Speculation off: this pins the pure
        // deadline → re-queue path.
        let sweep = run_fake_opts(&["a-cap2-hang1", "b-cap1"], 1, false).unwrap();
        assert_eq!(sweep, serial(), "deadline failover is bit-identical");
        let error = run_fake_opts(&["a-hang0"], 9, false)
            .unwrap_err()
            .to_string();
        assert!(
            error.contains("pool drained") && error.contains("heartbeat deadline"),
            "a lone hung worker drains the pool with the deadline named: {error}"
        );
    }

    #[test]
    fn speculation_covers_a_straggler_before_its_deadline_charges_anyone() {
        // Worker `b` hangs on its very first cell (delivers nothing, and
        // after 400 ms its link reports the deadline timeout); worker `a`
        // is merely slow (20 ms/cell), so `b` reliably claims a cell
        // before `a` drains the queue. With speculation ON and a retry
        // budget of ZERO the run must still succeed: the idle worker `a`
        // double-issues `b`'s in-flight cell the moment the queue
        // drains, the speculative result lands first, and `b`'s later
        // death finds nothing owed — so nothing re-queues and the zero
        // budget is never charged.
        let sweep = run_fake_opts(&["a-cap1-slow20", "b-cap1-hang0-slow400"], 0, true).unwrap();
        assert_eq!(sweep, serial(), "speculative result is bit-identical");

        // The differential pin: the identical pool with speculation OFF
        // must instead charge the re-queue and abort on the zero budget —
        // proving the success above came from speculation, not timing.
        let error = run_fake_opts(&["a-cap1-slow20", "b-cap1-hang0-slow400"], 0, false)
            .unwrap_err()
            .to_string();
        assert!(
            error.contains("retry budget"),
            "without speculation the zero budget aborts: {error}"
        );
    }

    #[test]
    fn duplicate_cell_done_for_a_completed_key_is_benign() {
        // A worker re-delivers its batch's first cell after completing
        // the batch. Pre-fix this was fatal ("a cell it was not asked
        // for"); now a bit-identical duplicate of a *completed* cell is
        // discarded and the run succeeds — while foreign keys (below)
        // stay fatal.
        let sweep = run_fake(&["a-cap2-dup"], 0).unwrap();
        assert_eq!(sweep, serial(), "duplicates do not perturb the suite");
    }

    #[test]
    fn a_drained_pool_is_a_clear_error_not_a_partial_suite() {
        let error = run_fake(&["a-die0"], 9).unwrap_err().to_string();
        assert!(
            error.contains("pool drained") && error.contains("died mid-batch"),
            "error names the failure: {error}"
        );
        let error = run_fake(&["refuse"], 0).unwrap_err().to_string();
        assert!(error.contains("dial failed"), "{error}");
        let error = run_fake(&[], 0).unwrap_err().to_string();
        assert!(error.contains("at least one worker"), "{error}");
    }

    #[test]
    fn the_retry_budget_stops_a_poison_cell() {
        // The lone worker dies on its first cell, over and over; dialing
        // happens once per worker, so a budget of 0 must abort on the
        // first re-queue rather than loop forever.
        let error = run_fake(&["a-die0"], 0).unwrap_err().to_string();
        assert!(
            error.contains("retry budget"),
            "budget exhaustion is fatal: {error}"
        );
    }

    #[test]
    fn foreign_cell_keys_abort_the_run() {
        let error = run_fake(&["a-alias"], 3).unwrap_err().to_string();
        assert!(
            error.contains("configurations disagree"),
            "foreign key is fatal: {error}"
        );
    }
}
